//! `whiteboard` — command-line driver for the shared-whiteboard protocols.
//!
//! ```text
//! whiteboard run   --protocol build:2 --workload kdeg:2 --n 200 [--seed S] [--adversary random:7] [--trace]
//! whiteboard check --protocol mis:1 --n 4            # exhaustive schedules on all n-node graphs
//! whiteboard explore --protocol mis:1 --workload path --n 6 [--max-states M] [--par] [--compare-naive]
//!                    [--dedup canonical|exact|off] [--reduction off|dpor|symmetry|dpor+symmetry]
//!                    [--json]
//!                                                    # schedule-space explorer report (dedup stats);
//!                                                    # --reduction applies the sound state-space
//!                                                    # reductions (sleep-set DPOR / automorphism
//!                                                    # quotient); --json emits one machine-readable
//!                                                    # object
//! whiteboard campaign --protocol mis:1 --graph-family gnp --n 100 --trials 1000000
//!                     [--model native|simasync|simsync|async|sync|fasync|fsync]
//!                     [--sampler uniform|priority|crashy] [--seed S] [--json]
//!                     [--shrink] [--shrink-out PATH]
//!                                                    # Monte Carlo schedule campaign (statistical
//!                                                    # tier, n past the exhaustive frontier);
//!                                                    # failures auto-shrink to minimal witnesses
//! whiteboard bulk --protocol build:2 --graph-family kdeg:2 --n 100000
//!                 [--model native|simasync|simsync|async|sync] [--seed S] [--batch B] [--json]
//!                                                    # bulk tier: one columnar execution at
//!                                                    # n ≥ 10⁵ (simultaneous-native protocols,
//!                                                    # under any model that includes the native
//!                                                    # one), rounds/sec + board bytes reported
//! whiteboard capacity --n 1024,4096                  # Lemma 3 table
//! whiteboard serve --socket PATH [--workers W] [--queue-cap Q]
//!                                                    # multi-tenant daemon: submit explore /
//!                                                    # campaign / bulk jobs over a local socket
//! whiteboard submit --socket PATH --kind explore|campaign|bulk [job flags] [--no-wait]
//!                                                    # client: submit one job; by default waits
//!                                                    # and prints the report (byte-identical to
//!                                                    # the corresponding `--json` command)
//! whiteboard status --socket PATH [--job N]          # client: job roster or one job's report
//! whiteboard shutdown --socket PATH                  # client: drain the daemon and exit it
//! whiteboard list                                    # protocols & workloads
//! ```
//!
//! Protocols and their correctness oracles resolve through the shared
//! [`wb_core::registry`], so `check`, `explore`, `campaign`, and `bulk` all
//! select scenarios from one table. Argument parsing is hand-rolled (no CLI
//! crate on the approved dependency list) and strict: unknown or duplicate
//! flags and stray positional arguments are usage errors naming the
//! offending token. Every run is reproducible from `--seed`, and every
//! `--json` report is deterministic — timing goes to stderr, never into the
//! JSON — which is what lets the `serve` daemon promise byte-identical
//! reports.

use shared_whiteboard::prelude::*;
use std::process::ExitCode;
use wb_math::counting::MessageRegime;
use wb_reductions::lemma3::{verdict, Family};
use wb_runtime::run_traced;
use wb_serve::jobs::{
    parse_bulk_model, parse_dedup, parse_faults, parse_model, parse_reduction, JobKind, JobSpec,
};
use wb_serve::{Client, Daemon, ServeConfig};
use wb_sim::{run_campaign_with, shrink_schedule, CampaignConfig, CampaignLabels, SamplerKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(cmd, &args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&opts),
        "check" => cmd_check(&opts),
        "explore" => cmd_explore(&opts),
        "campaign" => cmd_campaign(&opts),
        "bulk" => cmd_bulk(&opts),
        "capacity" => cmd_capacity(&opts),
        "certify" => cmd_certify(&opts),
        "verify" => cmd_verify(&opts),
        "dot" => cmd_dot(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "status" => cmd_status(&opts),
        "shutdown" => cmd_shutdown(&opts),
        "list" => {
            cmd_list();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: whiteboard <run|check|explore|campaign|bulk|capacity|certify|verify|dot|\
         serve|submit|status|shutdown|list> \
         [--protocol P] [--workload W | --graph-family W] [--n N[,N..]] [--seed S] \
         [--adversary min|max|random:S] [--trace] \
         [--max-states M] [--par] [--compare-naive] [--dedup canonical|exact|off] \
         [--reduction off|dpor|symmetry|dpor+symmetry] [--json] \
         [--trials T] [--sampler uniform|priority|crashy] [--batch B] \
         [--model native|simasync|simsync|async|sync|fasync|fsync] [--shrink] [--shrink-out PATH] \
         [--faults crash:F|lossy:F] [--certify PATH] [--out PATH] \
         [--socket PATH] [--workers W] [--queue-cap Q] [--kind explore|campaign|bulk] \
         [--job N] [--no-wait] [--deadline-ms MS] [FILE..]"
    );
}

struct Opts {
    protocol: String,
    protocol_explicit: bool,
    workload: String,
    ns: Vec<usize>,
    seed: u64,
    adversary: String,
    trace: bool,
    max_states: u64,
    par: bool,
    compare_naive: bool,
    dedup: String,
    /// Reduction policy for `explore` / `certify`
    /// (`off|dpor|symmetry|dpor+symmetry`).
    reduction: String,
    json: bool,
    trials: u64,
    sampler: String,
    model: String,
    shrink: bool,
    shrink_out: Option<String>,
    /// Fault-plan spec (`crash:f` / `lossy:f`) for explore / campaign /
    /// bulk / certify; `None` (and budget 0) = today's fault-free behavior.
    faults: Option<String>,
    /// `submit --deadline-ms MS`: per-job wall-clock deadline enforced by
    /// the daemon.
    deadline_ms: Option<u64>,
    /// Sharding grain: board shard size for `bulk`, trial batch for
    /// `campaign`. `None` = each command's default.
    batch: Option<usize>,
    /// `explore --certify PATH`: also emit a `wb-cert/v1` line to PATH.
    certify: Option<String>,
    /// `certify --out PATH`: certificate destination (default stdout).
    out: Option<String>,
    /// Daemon socket path (`serve` binds it; `submit`/`status`/`shutdown`
    /// connect to it).
    socket: Option<String>,
    /// `serve --workers W`: worker-pool size.
    workers: usize,
    /// `serve --queue-cap Q`: bounded job-queue capacity.
    queue_cap: usize,
    /// `submit --kind explore|campaign|bulk`: which execution tier.
    kind: Option<String>,
    /// `status --job N`: restrict to one job.
    job: Option<u64>,
    /// `submit --no-wait`: print the job ID instead of waiting for the report.
    no_wait: bool,
    /// Positional arguments (`verify` takes certificate files).
    files: Vec<String>,
}

impl Opts {
    fn parse(cmd: &str, args: &[String]) -> Result<Opts, String> {
        let mut o = Opts {
            protocol: "build:1".into(),
            protocol_explicit: false,
            workload: "tree".into(),
            ns: vec![100],
            seed: 1,
            adversary: "random:1".into(),
            trace: false,
            max_states: 1 << 20,
            par: false,
            compare_naive: false,
            dedup: "canonical".into(),
            reduction: "off".into(),
            json: false,
            trials: 10_000,
            sampler: "uniform".into(),
            model: "native".into(),
            shrink: false,
            shrink_out: None,
            faults: None,
            deadline_ms: None,
            batch: None,
            certify: None,
            out: None,
            socket: None,
            workers: 2,
            queue_cap: 64,
            kind: None,
            job: None,
            no_wait: false,
            files: Vec::new(),
        };
        let mut seen: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a.starts_with("--") {
                // `--workload` / `--graph-family` are spellings of one flag;
                // count them as one for duplicate detection.
                let canonical = if a == "--graph-family" {
                    "--workload".to_string()
                } else {
                    a.clone()
                };
                if seen.contains(&canonical) {
                    return Err(format!("duplicate flag '{a}'"));
                }
                seen.push(canonical);
            }
            let mut value = |name: &str| match it.next() {
                Some(v) if v.starts_with("--") => {
                    Err(format!("{name} expects a value, got flag '{v}'"))
                }
                Some(v) => Ok(v.clone()),
                None => Err(format!("{name} expects a value")),
            };
            match a.as_str() {
                "--protocol" => {
                    o.protocol = value("--protocol")?;
                    o.protocol_explicit = true;
                }
                "--workload" | "--graph-family" => o.workload = value(a)?,
                "--n" => {
                    o.ns = value("--n")?
                        .split(',')
                        .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                        .collect::<Result<_, _>>()?;
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--adversary" => o.adversary = value("--adversary")?,
                "--trace" => o.trace = true,
                "--max-states" => {
                    o.max_states = value("--max-states")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--par" => o.par = true,
                "--compare-naive" => o.compare_naive = true,
                "--dedup" => o.dedup = value("--dedup")?,
                "--reduction" => o.reduction = value("--reduction")?,
                "--json" => o.json = true,
                "--trials" => {
                    o.trials = value("--trials")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?
                }
                "--sampler" => o.sampler = value("--sampler")?,
                "--model" => o.model = value("--model")?,
                "--batch" => {
                    o.batch = Some(
                        value("--batch")?
                            .parse()
                            .map_err(|e: std::num::ParseIntError| e.to_string())?,
                    )
                }
                "--faults" => o.faults = Some(value("--faults")?),
                "--deadline-ms" => {
                    let ms: u64 = value("--deadline-ms")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                    if ms == 0 {
                        return Err("--deadline-ms must be at least 1".into());
                    }
                    o.deadline_ms = Some(ms);
                }
                "--shrink" => o.shrink = true,
                "--shrink-out" => {
                    o.shrink = true;
                    o.shrink_out = Some(value("--shrink-out")?);
                }
                "--certify" => o.certify = Some(value("--certify")?),
                "--out" => o.out = Some(value("--out")?),
                "--socket" => o.socket = Some(value("--socket")?),
                "--workers" => {
                    o.workers = value("--workers")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                    if o.workers == 0 {
                        return Err("--workers must be at least 1".into());
                    }
                }
                "--queue-cap" => {
                    o.queue_cap = value("--queue-cap")?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?;
                    if o.queue_cap == 0 {
                        return Err("--queue-cap must be at least 1".into());
                    }
                }
                "--kind" => o.kind = Some(value("--kind")?),
                "--job" => {
                    o.job = Some(
                        value("--job")?
                            .parse()
                            .map_err(|e: std::num::ParseIntError| e.to_string())?,
                    )
                }
                "--no-wait" => o.no_wait = true,
                other if !other.starts_with("--") => {
                    // Only `verify` takes positionals (certificate files);
                    // anywhere else a stray word is a typo, not input.
                    if cmd == "verify" {
                        o.files.push(other.to_string());
                    } else {
                        return Err(format!(
                            "unexpected argument '{other}' (only `verify` takes positional \
                             arguments)"
                        ));
                    }
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(o)
    }

    fn make_adversary(&self) -> Result<Box<dyn Adversary>, String> {
        let (kind, arg) = split_spec(&self.adversary);
        Ok(match kind {
            "min" => Box::new(MinIdAdversary),
            "max" => Box::new(MaxIdAdversary),
            "random" => Box::new(RandomAdversary::new(arg.unwrap_or(self.seed))),
            other => return Err(format!("unknown adversary '{other}'")),
        })
    }
}

use wb_core::registry;
use wb_core::workload::split_spec;

/// Graph-family selection is shared with the campaign engine and the
/// experiment binaries — see `wb_core::workload`.
fn make_workload(spec: &str, n: usize, seed: u64) -> Result<Graph, String> {
    wb_core::workload::graph_family(spec, n, seed)
}

/// Unwrap a terminal outcome, or explain why there is none. Protocols whose
/// referee reads the full board always terminate on the engine's schedules,
/// but a structured error beats a panic if an adversary ever deadlocks one:
/// the CLI exits nonzero with this message instead of unwinding.
fn success_outcome<T>(spec: &str, outcome: Outcome<T>) -> Result<T, String> {
    match outcome {
        Outcome::Success(v) => Ok(v),
        Outcome::Deadlock { awake } => Err(format!(
            "protocol '{spec}' produced no outcome: deadlock with {} node(s) still awake {awake:?}",
            awake.len()
        )),
    }
}

/// Run one protocol and summarize; returns a one-line verdict.
fn run_one(
    proto_spec: &str,
    g: &Graph,
    adversary: &mut dyn Adversary,
    trace: bool,
) -> Result<String, String> {
    let n = g.n();
    let (kind, arg) = split_spec(proto_spec);
    let k = arg.unwrap_or(2) as usize;
    macro_rules! drive {
        ($p:expr, $fmt:expr) => {{
            let p = $p;
            let (report, rows) = run_traced(&p, g, adversary);
            if trace {
                print_trace(&rows);
            }
            // MIS and 2-CLIQUES implement both `Protocol` and
            // `BulkProtocol` (same budgets): name the trait explicitly.
            let budget = Protocol::budget_bits(&p, n);
            let stats = format!(
                "[{} bits/msg max, budget {budget}, {} rounds]",
                report.max_message_bits(),
                report.write_order.len()
            );
            let verdict: Result<String, String> = $fmt(report);
            Ok(format!("{} {stats}", verdict?))
        }};
    }
    match kind {
        "build" => drive!(BuildDegenerate::new(k.max(1)), |r: RunReport<
            Result<Graph, BuildError>,
        >| {
            Ok(match r.outcome {
                Outcome::Success(Ok(h)) => format!("BUILD ok: rebuilt exactly = {}", &h == g),
                Outcome::Success(Err(e)) => format!("BUILD rejected: {e:?}"),
                Outcome::Deadlock { awake } => format!("deadlock: {awake:?}"),
            })
        }),
        "build-mixed" => drive!(wb_core::BuildMixed::new(k.max(1)), |r: RunReport<
            Result<Graph, BuildError>,
        >| {
            Ok(match r.outcome {
                Outcome::Success(Ok(h)) => format!("BUILD-MIXED ok: rebuilt exactly = {}", &h == g),
                Outcome::Success(Err(e)) => format!("BUILD-MIXED rejected: {e:?}"),
                Outcome::Deadlock { awake } => format!("deadlock: {awake:?}"),
            })
        }),
        "naive" => drive!(NaiveBuild, |r: RunReport<Graph>| {
            Ok(format!(
                "NAIVE BUILD: rebuilt exactly = {}",
                matches!(r.outcome, Outcome::Success(ref h) if h == g)
            ))
        }),
        "mis" => {
            let root = (arg.unwrap_or(1) as NodeId).clamp(1, n as NodeId);
            drive!(MisGreedy::new(root), |r: RunReport<Vec<NodeId>>| {
                Ok(match r.outcome {
                    Outcome::Success(set) => format!(
                        "MIS(root {root}): |S| = {}, valid = {}",
                        set.len(),
                        checks::is_rooted_mis(g, &set, root)
                    ),
                    Outcome::Deadlock { awake } => format!("deadlock: {awake:?}"),
                })
            })
        }
        "bfs" => drive!(SyncBfs, |r: RunReport<checks::BfsForest>| {
            Ok(match r.outcome {
                Outcome::Success(f) => format!(
                    "SYNC BFS: {} roots, max layer {}, matches reference = {}",
                    f.roots.len(),
                    f.layer.iter().max().copied().unwrap_or(0),
                    f == checks::bfs_forest(g)
                ),
                Outcome::Deadlock { awake } => format!("deadlock: {awake:?}"),
            })
        }),
        "eob-bfs" => drive!(EobBfs, |r: RunReport<BfsOutput>| {
            Ok(match r.outcome {
                Outcome::Success(BfsOutput::Forest(f)) => {
                    format!("EOB-BFS: forest ok = {}", f == checks::bfs_forest(g))
                }
                Outcome::Success(BfsOutput::NotEvenOddBipartite) => {
                    "EOB-BFS: input is not even-odd bipartite".into()
                }
                Outcome::Deadlock { awake } => format!("deadlock: {awake:?}"),
            })
        }),
        "spanning" => drive!(wb_core::SpanningForestSync, |r: RunReport<
            wb_core::SpanningForest,
        >| {
            Ok(match r.outcome {
                Outcome::Success(sf) => format!(
                    "SPANNING-FOREST: {} tree edges, {} roots",
                    sf.edges.len(),
                    sf.roots.len()
                ),
                Outcome::Deadlock { awake } => format!("deadlock: {awake:?}"),
            })
        }),
        "two-cliques" => drive!(TwoCliques, |r: RunReport<
            wb_core::two_cliques::TwoCliquesVerdict,
        >| {
            Ok(format!(
                "2-CLIQUES: {:?} (truth: {})",
                success_outcome(proto_spec, r.outcome)?,
                checks::is_two_cliques(g)
            ))
        }),
        "two-cliques-rand" => {
            drive!(
                TwoCliquesRandomized::new(arg.unwrap_or(7), 24),
                |r: RunReport<wb_core::two_cliques::TwoCliquesVerdict>| {
                    Ok(format!(
                        "2-CLIQUES (randomized): {:?} (truth: {})",
                        success_outcome(proto_spec, r.outcome)?,
                        checks::is_two_cliques(g)
                    ))
                }
            )
        }
        "subgraph" => drive!(SubgraphPrefix::new(k.max(1)), |r: RunReport<Graph>| {
            Ok(format!(
                "SUBGRAPH_{k}: exact = {}",
                matches!(r.outcome, Outcome::Success(ref h) if *h == g.induced_prefix(k.max(1).min(n)))
            ))
        }),
        "triangle" => drive!(TriangleFullRow, |r: RunReport<bool>| {
            Ok(format!(
                "TRIANGLE (Θ(n) bits): {:?} (truth: {})",
                success_outcome(proto_spec, r.outcome)?,
                checks::has_triangle(g)
            ))
        }),
        "square" => drive!(SquareFullRow, |r: RunReport<bool>| {
            Ok(format!(
                "SQUARE (Θ(n) bits): {:?} (truth: {})",
                success_outcome(proto_spec, r.outcome)?,
                checks::has_square(g)
            ))
        }),
        "diameter3" => drive!(DiameterAtMost3FullRow, |r: RunReport<bool>| {
            Ok(format!(
                "DIAMETER ≤ 3 (Θ(n) bits): {:?}",
                success_outcome(proto_spec, r.outcome)?
            ))
        }),
        "connectivity" => drive!(ConnectivitySync, |r: RunReport<ConnectivityReport>| {
            Ok(match r.outcome {
                Outcome::Success(rep) => format!(
                    "CONNECTIVITY: connected = {} ({} components; truth: {})",
                    rep.connected,
                    rep.components,
                    checks::is_connected(g)
                ),
                Outcome::Deadlock { awake } => format!("deadlock: {awake:?}"),
            })
        }),
        "edge-count" => drive!(EdgeCount, |r: RunReport<usize>| {
            Ok(format!(
                "EDGE-COUNT: m = {:?} (truth: {})",
                success_outcome(proto_spec, r.outcome)?,
                g.m()
            ))
        }),
        "degree-stats" => drive!(DegreeStats, |r: RunReport<DegreeSummary>| {
            let s = success_outcome(proto_spec, r.outcome)?;
            Ok(format!(
                "DEGREE-STATS: max {} isolated {} regular {:?}",
                s.max_degree, s.isolated, s.regular
            ))
        }),
        other => Err(format!("unknown protocol '{other}'")),
    }
}

fn cmd_dot(o: &Opts) -> Result<(), String> {
    let n = *o.ns.first().unwrap_or(&20);
    let g = make_workload(&o.workload, n, o.seed)?;
    if o.protocol.starts_with("bfs") {
        let forest = checks::bfs_forest(&g);
        print!(
            "{}",
            wb_graph::dot::forest_to_dot(&g, &forest, "whiteboard")
        );
    } else {
        print!("{}", wb_graph::dot::graph_to_dot(&g, "whiteboard"));
    }
    Ok(())
}

fn print_trace(rows: &[wb_runtime::TraceRow]) {
    println!("  round  active  writer  bits");
    for r in rows.iter().take(60) {
        println!(
            "  {:>5}  {:>6}  {:>6}  {:>4}",
            r.round, r.active_before, r.writer, r.message_bits
        );
    }
    if rows.len() > 60 {
        println!("  … ({} more rounds)", rows.len() - 60);
    }
}

fn cmd_run(o: &Opts) -> Result<(), String> {
    for &n in &o.ns {
        let g = make_workload(&o.workload, n, o.seed)?;
        let mut adv = o.make_adversary()?;
        let line = run_one(&o.protocol, &g, adv.as_mut(), o.trace)?;
        println!("n={n:>6} {}: {line}", o.workload);
    }
    Ok(())
}

fn cmd_check(o: &Opts) -> Result<(), String> {
    // Exhaustive model checking over all labeled graphs on n nodes: every
    // registry protocol is checkable against its oracle (the per-protocol
    // match arms this command used to carry live in `wb_core::registry`).
    let n = *o.ns.first().unwrap_or(&4);
    if n > 5 {
        return Err("check enumerates all graphs; use --n ≤ 5".into());
    }

    struct CheckAllGraphs {
        n: usize,
        spec: String,
    }

    impl registry::ProtocolVisitor for CheckAllGraphs {
        type Result = Result<(u64, u64), String>;
        fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> registry::BoundOracle<'g, P::Output> + Send + Sync,
        {
            let config = ExploreConfig::default();
            let mut graphs = 0u64;
            let mut states = 0u64;
            for g in enumerate::all_graphs(self.n) {
                graphs += 1;
                let oracle = bind(&g);
                let report = explore(&protocol, &g, &config, |out| oracle(out, &[]));
                if report.truncated {
                    return Err(format!("{}: truncated on {g:?}", self.spec));
                }
                if let Some(f) = report.failures.first() {
                    return Err(format!(
                        "{}: oracle violated on {g:?} under write order {:?}: {:?}",
                        self.spec, f.schedule, f.outcome
                    ));
                }
                states += report.distinct_states;
            }
            Ok((graphs, states))
        }
    }

    let (graphs, states) = registry::dispatch(
        &o.protocol,
        n,
        CheckAllGraphs {
            n,
            spec: o.protocol.clone(),
        },
    )??;
    println!(
        "exhaustive check passed: protocol {} on all {graphs} graphs (n = {n}), \
         {states} distinct states explored",
        o.protocol
    );
    Ok(())
}

/// Build the daemon-layer job spec equivalent to this invocation's flags —
/// `explore --json`, `bulk --json`, and `submit` all go through this, which
/// is what makes daemon reports byte-identical to CLI reports.
fn job_spec_from_opts(kind: JobKind, o: &Opts, n: usize) -> JobSpec {
    let mut spec = JobSpec::new(kind);
    if o.protocol_explicit {
        spec.protocol = o.protocol.clone();
    }
    spec.workload = o.workload.clone();
    spec.n = n;
    spec.seed = o.seed;
    spec.model = o.model.clone();
    spec.trials = o.trials;
    spec.sampler = o.sampler.clone();
    spec.batch = o.batch;
    spec.max_states = o.max_states;
    spec.dedup = o.dedup.clone();
    spec.reduction = o.reduction.clone();
    spec.par = o.par;
    spec.compare_naive = o.compare_naive;
    spec.faults = o.faults.clone();
    spec.deadline_ms = o.deadline_ms;
    spec
}

/// Schedule-space exploration of one protocol on one workload graph,
/// printing the structured report (distinct states, dedup ratio, failures)
/// or — with `--json` — one machine-readable object (deterministic: timing
/// goes to stderr, and the daemon emits the identical bytes for the same
/// job).
fn cmd_explore(o: &Opts) -> Result<(), String> {
    use wb_runtime::exhaustive::{
        explore_parallel_with, explore_with, ExplorationReport, ExploreConfig,
    };
    let n = *o.ns.first().unwrap_or(&6);
    let g = make_workload(&o.workload, n, o.seed)?;
    let faults = parse_faults(o.faults.as_deref())?;
    let dedup = parse_dedup(&o.dedup)?;
    let config = ExploreConfig::default()
        .with_max_states(o.max_states)
        .with_dedup(dedup)
        .with_faults(faults)
        .with_reduction(parse_reduction(&o.reduction, dedup)?);

    // `--certify PATH`: additionally run the certifying walk and write one
    // `wb-cert/v1` line. Emitted before the report so a FAIL verdict (which
    // makes this command exit nonzero) still leaves the certificate — the
    // failing case is exactly the one worth re-checking independently.
    if let Some(path) = &o.certify {
        let run = wb_bench::certify::certify_spec(
            &o.protocol,
            &g,
            None,
            wb_bench::certify::Provenance {
                family: Some(&o.workload),
                seed: Some(o.seed),
            },
            &config,
        )?;
        std::fs::write(path, run.certificate.to_json_line() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!(
            "certificate: {} states, {} terminals, {} failing -> {path}",
            run.distinct_states, run.terminals, run.failures
        );
    }

    // `--json` goes through the daemon's job layer: one deterministic
    // canonical object on stdout (timing on stderr), byte-identical to what
    // `whiteboard serve` returns for the same spec.
    if o.json {
        let spec = job_spec_from_opts(JobKind::Explore, o, n);
        let start = std::time::Instant::now();
        let report = wb_serve::run_job(&spec)?;
        eprintln!("explore wall: {:.3}s", start.elapsed().as_secs_f64());
        println!("{}", report.line());
        return match report.verdict.as_str() {
            "FAIL" => Err("exploration found failing terminal(s)".into()),
            _ => Ok(()),
        };
    }

    /// `(states, schedules, truncated)` of the dedup-off comparison walk.
    type NaiveStats = (u64, u64, bool);

    fn print_report<O: std::fmt::Debug>(
        o: &Opts,
        g: &Graph,
        report: &ExplorationReport<O>,
        wall_sec: f64,
        naive: Option<NaiveStats>,
    ) -> Result<(), String> {
        let verdict = if !report.failures.is_empty() {
            "FAIL"
        } else if report.truncated {
            "INCONCLUSIVE"
        } else {
            "PASS"
        };
        if let Some((states, schedules, truncated)) = naive {
            println!(
                "naive (no dedup): {} states, {} schedules{} — dedup saves {:.1}x",
                states,
                schedules,
                if truncated { " (truncated)" } else { "" },
                states as f64 / report.distinct_states.max(1) as f64
            );
        }
        println!("exploring {} on {} (n = {})", o.protocol, o.workload, g.n());
        println!("  distinct states : {}", report.distinct_states);
        println!("  terminal configs: {}", report.terminals);
        println!(
            "  merged branches : {} (dedup ratio {:.1}x)",
            report.merged,
            report.dedup_ratio()
        );
        println!("  peak frontier   : {}", report.peak_frontier);
        println!("  states/sec      : {:.0}", report.states_per_sec(wall_sec));
        println!(
            "  truncated       : {}",
            if report.truncated {
                "YES (partial result)"
            } else {
                "no"
            }
        );
        if let Some(plan) = &o.faults {
            println!("  faults          : {plan}");
        }
        if let Some(stats) = &report.reduction {
            println!(
                "  reduction       : {} (dpor {}, symmetry {}{}) — {} generated, \
                 {} sleep-skipped, {} orbit terminals, {} re-expansions",
                stats.policy,
                if stats.dpor_active { "on" } else { "off" },
                if stats.symmetry_active { "on" } else { "off" },
                if stats.symmetry_active {
                    format!(", |Aut| = {}", stats.group_order)
                } else {
                    String::new()
                },
                report.generated(),
                stats.sleep_skipped,
                stats.orbit_terminals,
                stats.reexpansions
            );
        }
        for f in report.failures.iter().take(5) {
            if f.died.is_empty() {
                println!("  FAIL under write order {:?}: {:?}", f.schedule, f.outcome);
            } else {
                println!(
                    "  FAIL under write order {:?} (died {:?}): {:?}",
                    f.schedule, f.died, f.outcome
                );
            }
        }
        match verdict {
            "PASS" => println!(
                "  verdict         : PASS (every reachable configuration satisfies the oracle)"
            ),
            "INCONCLUSIVE" => println!("  verdict         : INCONCLUSIVE (truncated)"),
            _ => {}
        }
        if report.failures.is_empty() {
            Ok(())
        } else {
            Err(format!("{} failing terminal(s)", report.failures.len()))
        }
    }

    /// Registry visitor: explore the resolved protocol against its oracle.
    struct ExploreOne<'a> {
        o: &'a Opts,
        g: &'a Graph,
        config: ExploreConfig,
        faults: Option<wb_runtime::FaultPlan>,
    }

    impl registry::ProtocolVisitor for ExploreOne<'_> {
        type Result = Result<(), String>;
        fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> registry::BoundOracle<'g, P::Output> + Send + Sync,
        {
            let (o, g) = (self.o, self.g);
            let oracle = bind(g);
            let pred = |out: &Outcome<P::Output>, died: &[NodeId]| oracle(out, died);
            let start = std::time::Instant::now();
            let report = if o.par {
                explore_parallel_with(&protocol, g, &self.config, &pred)
            } else {
                explore_with(&protocol, g, &self.config, &pred)
            };
            let wall_sec = start.elapsed().as_secs_f64();
            let naive = o.compare_naive.then(|| {
                let off = ExploreConfig::default()
                    .without_dedup()
                    .with_max_states(o.max_states)
                    .with_faults(self.faults);
                let naive = explore_with(&protocol, g, &off, &pred);
                (naive.distinct_states, naive.terminals, naive.truncated)
            });
            print_report(o, g, &report, wall_sec, naive)
        }
    }

    registry::dispatch(
        &o.protocol,
        n,
        ExploreOne {
            o,
            g: &g,
            config,
            faults,
        },
    )?
}

/// Emit machine-checkable exploration certificates: one certified
/// exhaustive walk per `--n` value, each serialized as one `wb-cert/v1`
/// JSON line to `--out PATH` (or stdout). Run summaries go to stderr so
/// stdout stays pure JSONL. See `docs/CERTIFICATES.md`.
fn cmd_certify(o: &Opts) -> Result<(), String> {
    let model = parse_model(&o.model)?;
    let dedup = parse_dedup(&o.dedup)?;
    let config = wb_runtime::ExploreConfig::default()
        .with_max_states(o.max_states)
        .with_dedup(dedup)
        .with_faults(parse_faults(o.faults.as_deref())?)
        .with_reduction(parse_reduction(&o.reduction, dedup)?);
    let mut lines = String::new();
    for &n in &o.ns {
        let g = make_workload(&o.workload, n, o.seed)?;
        let run = wb_bench::certify::certify_spec(
            &o.protocol,
            &g,
            model,
            wb_bench::certify::Provenance {
                family: Some(&o.workload),
                seed: Some(o.seed),
            },
            &config,
        )?;
        eprintln!(
            "certified {} on {} (n = {}, {}): {} states, {} terminals, {} failing",
            o.protocol,
            o.workload,
            n,
            run.certificate.model,
            run.distinct_states,
            run.terminals,
            run.failures
        );
        lines.push_str(&run.certificate.to_json_line());
        lines.push('\n');
    }
    match &o.out {
        Some(path) => {
            std::fs::write(path, lines).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} certificate(s) to {path}", o.ns.len());
        }
        None => print!("{lines}"),
    }
    Ok(())
}

/// Re-check certificate files through the independent `wb-verify` crate:
/// one verdict line per certificate (PASS with the established summary, or
/// the structured rejection), nonzero exit if any fails.
fn cmd_verify(o: &Opts) -> Result<(), String> {
    if o.files.is_empty() {
        return Err("verify expects at least one certificate file".into());
    }
    let (mut total, mut bad) = (0usize, 0usize);
    for path in &o.files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            total += 1;
            match wb_verify::verify_line(line) {
                Ok(s) => println!(
                    "{path}:{}: PASS {} {} n={} states={} terminals={} failures={}",
                    i + 1,
                    s.protocol,
                    s.model,
                    s.n,
                    s.states,
                    s.terminals,
                    s.failures
                ),
                Err(e) => {
                    bad += 1;
                    println!("{path}:{}: FAIL {e}", i + 1);
                }
            }
        }
    }
    if bad == 0 {
        eprintln!("verified {total} certificate(s)");
        Ok(())
    } else {
        Err(format!(
            "{bad} of {total} certificate(s) failed verification"
        ))
    }
}

/// Monte Carlo schedule campaign of one protocol on one graph-family
/// instance: `--trials` seeded random schedules (each independently
/// replayable from `--seed` + trial index), outcomes classified against the
/// protocol's oracle, failures kept as witnesses and — with `--shrink` —
/// delta-debugged to locally minimal schedules. `--shrink-out PATH`
/// additionally writes the minimal witness as a `tests/corpus`-format
/// fixture (native model only: corpus replay runs the native protocol).
///
/// The report (and its `--json` rendering) is deterministic for a fixed
/// seed — independent of thread count and sharding — so timing goes to
/// stderr, never into the JSON.
fn cmd_campaign(o: &Opts) -> Result<(), String> {
    let n = *o.ns.first().unwrap_or(&100);
    let g = make_workload(&o.workload, n, o.seed)?;
    let target = parse_model(&o.model)?;
    let faults = parse_faults(o.faults.as_deref())?;
    if faults.is_some() && o.shrink {
        return Err(
            "--shrink replays schedules fault-free and cannot minimize faulted witnesses; \
             drop --faults or --shrink/--shrink-out"
                .into(),
        );
    }
    // The campaign's default protocol is MIS (cheap per-trial work, genuinely
    // schedule-dependent outcomes) rather than the global BUILD default.
    let spec = if o.protocol_explicit {
        o.protocol.clone()
    } else {
        "mis:1".into()
    };

    /// Everything `drive` needs beyond the protocol and predicate.
    struct Ctx<'a> {
        o: &'a Opts,
        g: &'a Graph,
        spec: String,
        target: Option<Model>,
        faults: Option<wb_runtime::FaultPlan>,
    }

    fn drive<P, C>(ctx: &Ctx, p: P, pred: C) -> Result<(), String>
    where
        P: Protocol + Sync,
        P::Output: std::fmt::Debug,
        C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool + Sync,
    {
        match ctx.target {
            Some(m) if m != p.model() => {
                if !m.includes(p.model()) {
                    return Err(format!(
                        "cannot demote {} protocol '{}' to {m}",
                        p.model(),
                        ctx.spec
                    ));
                }
                if ctx.o.shrink_out.is_some() {
                    return Err(
                        "--shrink-out requires the protocol's native model (corpus replay \
                         runs the native protocol)"
                            .into(),
                    );
                }
                drive_native(ctx, &Promote::new(p, m), pred)
            }
            _ => drive_native(ctx, &p, pred),
        }
    }

    fn drive_native<P, C>(ctx: &Ctx, p: &P, pred: C) -> Result<(), String>
    where
        P: Protocol + Sync,
        P::Output: std::fmt::Debug,
        C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool + Sync,
    {
        use wb_sim::json::Json;
        let o = ctx.o;
        let g = ctx.g;
        let sampler = SamplerKind::parse(&o.sampler)?;
        let mut config = CampaignConfig::default()
            .with_trials(o.trials)
            .with_seed(o.seed)
            .with_sampler(sampler)
            .with_faults(ctx.faults);
        if let Some(batch) = o.batch {
            config = config.with_batch(batch);
        }
        let labels = CampaignLabels {
            protocol: ctx.spec.clone(),
            model: p.model().to_string(),
            family: o.workload.clone(),
        };
        let start = std::time::Instant::now();
        let report = run_campaign_with(p, g, &config, &labels, &pred);
        let wall_sec = start.elapsed().as_secs_f64();
        let trials_per_sec = if wall_sec > 0.0 {
            report.trials as f64 / wall_sec
        } else {
            0.0
        };

        let shrunk = match (o.shrink, report.witnesses.first()) {
            // Shrinking replays schedules fault-free (the CLI refuses the
            // combination of --shrink and a live --faults plan up front).
            (true, Some(w)) => Some(shrink_schedule(
                p,
                g,
                &w.schedule,
                |outcome| !pred(outcome, &[]),
                20_000,
            )?),
            _ => None,
        };

        if let Some(path) = &o.shrink_out {
            if let Some(s) = &shrunk {
                use shared_whiteboard::corpus::WitnessFixture;
                // Strict replay of the minimal schedule pins the outcome the
                // fixture must reproduce.
                let replayed = run(p, g, &mut ScheduleAdversary::new(s.schedule.clone()));
                let failure = ScheduleFailure {
                    schedule: s.schedule.clone(),
                    died: Vec::new(),
                    outcome: replayed.outcome,
                };
                let fixture =
                    WitnessFixture::from_failure("campaign-shrunk", &ctx.spec, g, &failure);
                fixture
                    .save(std::path::Path::new(path))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                // Self-check through the corpus replay registry before
                // telling the user the witness is durable.
                fixture.replay()?;
                eprintln!("wrote shrunk witness fixture to {path}");
            } else {
                eprintln!("no failing trials: nothing written to {path}");
            }
        }

        if o.json {
            let mut json = report.to_json();
            if let (Json::Obj(map), Some(s)) = (&mut json, &shrunk) {
                map.insert(
                    "shrunk_schedule".into(),
                    Json::Arr(s.schedule.iter().map(|&v| Json::Num(v as f64)).collect()),
                );
                map.insert("shrunk_outcome".into(), Json::Str(s.outcome.clone()));
                map.insert("shrink_replays".into(), Json::Num(s.replays as f64));
            }
            println!("{json}");
            eprintln!("campaign wall: {wall_sec:.3}s ({trials_per_sec:.0} trials/sec)");
        } else {
            println!(
                "campaign: {} @ {} on {} (n = {})",
                ctx.spec,
                labels.model,
                o.workload,
                g.n()
            );
            println!(
                "  trials          : {} (sampler {}, seed {})",
                report.trials, report.sampler, report.seed
            );
            if let Some(plan) = &report.faults {
                println!("  faults          : {plan}");
            }
            println!(
                "  passed / failed : {} / {} (deadlocks {})",
                report.passed, report.failed, report.deadlocks
            );
            println!("  distinct outcomes: {}", report.distinct_outcomes);
            println!("  wall            : {wall_sec:.3}s ({trials_per_sec:.0} trials/sec)");
            for w in report.witnesses.iter().take(3) {
                if w.died.is_empty() {
                    println!(
                        "  FAIL trial {} (seed {}): write order {:?} → {}",
                        w.trial, w.seed, w.schedule, w.outcome
                    );
                } else {
                    println!(
                        "  FAIL trial {} (seed {}): write order {:?} (died {:?}) → {}",
                        w.trial, w.seed, w.schedule, w.died, w.outcome
                    );
                }
            }
            if let Some(s) = &shrunk {
                println!(
                    "  shrunk witness  : {:?} (len {} → {}, {} replays)",
                    s.schedule,
                    s.original_len,
                    s.schedule.len(),
                    s.replays
                );
            }
            println!("  verdict         : {}", report.verdict());
        }
        Ok(())
    }

    /// Registry visitor: run the campaign with the resolved protocol and
    /// its instance-bound oracle.
    struct CampaignOne<'a> {
        ctx: Ctx<'a>,
    }

    impl registry::ProtocolVisitor for CampaignOne<'_> {
        type Result = Result<(), String>;
        fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> registry::BoundOracle<'g, P::Output> + Send + Sync,
        {
            let oracle = bind(self.ctx.g);
            let pred = move |out: &Outcome<P::Output>, died: &[NodeId]| oracle(out, died);
            drive(&self.ctx, protocol, pred)
        }
    }

    let ctx = Ctx {
        o,
        g: &g,
        spec: spec.clone(),
        target,
        faults,
    };
    registry::dispatch(&spec, n, CampaignOne { ctx })?
}

/// One columnar bulk execution (third tier): a seeded random schedule of a
/// simultaneous-native protocol at `n` up to 10⁵ and beyond — under its
/// native model or any free target that includes it (`--model sync|async`
/// drives the event-driven scheduler) — verified against the registry
/// oracle, with rounds/sec and board bytes reported. Sweeps every `--n`
/// value like `run` does.
fn cmd_bulk(o: &Opts) -> Result<(), String> {
    use wb_runtime::bulk::{bulk_model, run_bulk, run_bulk_crashed, shuffled_schedule, BulkConfig};

    struct BulkOne<'a> {
        o: &'a Opts,
        g: &'a Graph,
        target: Option<Model>,
        /// Crash-stop only; lossy plans are refused before dispatch.
        faults: Option<wb_runtime::FaultPlan>,
    }

    impl registry::BulkVisitor for BulkOne<'_> {
        type Result = Result<(), String>;
        fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
        where
            P: wb_runtime::BulkProtocol + Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> registry::BoundOracle<'g, P::Output> + Send + Sync,
        {
            let (o, g) = (self.o, self.g);
            let n = g.n();
            let model = bulk_model(protocol.model(), self.target)
                .map_err(|e| format!("protocol '{}': {e}", o.protocol))?;
            let schedule = shuffled_schedule(n, o.seed);
            let config = BulkConfig::default().with_batch(o.batch.unwrap_or(4096));
            let start = std::time::Instant::now();
            let report = match self.faults {
                Some(plan) => {
                    let victims = plan.sample_victims(n, o.seed)?;
                    run_bulk_crashed(&protocol, g, &schedule, self.target, &config, &victims)
                }
                None => run_bulk(&protocol, g, &schedule, self.target, &config),
            }
            .expect("bulk model pre-validated");
            let wall_sec = start.elapsed().as_secs_f64();
            let rounds_per_sec = if wall_sec > 0.0 {
                report.rounds as f64 / wall_sec
            } else {
                0.0
            };
            let oracle = bind(g);
            let pass = oracle(&report.outcome, &report.crashed);
            let verdict = if pass { "PASS" } else { "FAIL" };
            println!("bulk: {} @ {model} on {} (n = {n})", o.protocol, o.workload);
            if let Some(plan) = self.faults {
                println!(
                    "  faults          : {} (died {:?})",
                    plan.spec(),
                    report.crashed
                );
            }
            println!(
                "  rounds          : {} in {wall_sec:.3}s ({rounds_per_sec:.0} rounds/sec)",
                report.rounds
            );
            println!(
                "  board           : {} bytes payload + {} bytes index, {} shards",
                report.board.payload_bytes(),
                report.board.index_bytes(),
                report.board.shard_count()
            );
            println!(
                "  messages        : {} bits total, {} bits/msg max (budget {})",
                report.total_bits(),
                report.max_message_bits(),
                protocol.budget_bits(n)
            );
            println!("  verdict         : {verdict}");
            if pass {
                Ok(())
            } else {
                Err("bulk outcome violated the oracle".into())
            }
        }
    }

    let target = parse_bulk_model(&o.model)?;
    let faults = parse_faults(o.faults.as_deref())?;
    if let Some(plan) = &faults {
        if plan.kind() == wb_runtime::FaultKind::Lossy {
            return Err(format!(
                "the bulk tier executes crash-stop fault plans only, not {} (lossy \
                 suppression is an adaptive mid-run adversary; use `explore` or `campaign`)",
                plan.spec()
            ));
        }
    }
    for &n in &o.ns {
        // `--json` delegates to the daemon's job layer: deterministic
        // canonical object on stdout, timing on stderr, byte-identical to
        // what `whiteboard serve` returns for the same spec.
        if o.json {
            let spec = job_spec_from_opts(JobKind::Bulk, o, n);
            let start = std::time::Instant::now();
            let report = wb_serve::run_job(&spec)?;
            eprintln!("bulk wall: {:.3}s", start.elapsed().as_secs_f64());
            println!("{}", report.line());
            if report.verdict == "FAIL" {
                return Err("bulk outcome violated the oracle".into());
            }
            continue;
        }
        let g = make_workload(&o.workload, n, o.seed)?;
        registry::dispatch_bulk(
            &o.protocol,
            n,
            BulkOne {
                o,
                g: &g,
                target,
                faults,
            },
        )??;
    }
    Ok(())
}

/// The socket path every daemon subcommand needs.
fn require_socket(o: &Opts, cmd: &str) -> Result<std::path::PathBuf, String> {
    o.socket
        .as_deref()
        .map(std::path::PathBuf::from)
        .ok_or_else(|| format!("{cmd} requires --socket PATH"))
}

/// Connect to a running daemon, with a hint when there is none.
fn connect(o: &Opts, cmd: &str) -> Result<Client, String> {
    let path = require_socket(o, cmd)?;
    Client::connect(&path).map_err(|e| {
        format!(
            "cannot connect to daemon at {} ({e}); start one with \
             `whiteboard serve --socket {}`",
            path.display(),
            path.display()
        )
    })
}

/// Run the multi-tenant daemon in the foreground until a client sends
/// `shutdown`. Logs to stderr; the socket file is removed on exit.
fn cmd_serve(o: &Opts) -> Result<(), String> {
    let path = require_socket(o, "serve")?;
    let config = ServeConfig {
        workers: o.workers,
        queue_cap: o.queue_cap,
        ..ServeConfig::default()
    };
    let daemon =
        Daemon::bind(&path, config).map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
    daemon.run().map_err(|e| format!("daemon failed: {e}"))?;
    Ok(())
}

/// Submit one job to a running daemon. By default waits for completion and
/// prints the report line — byte-identical to the corresponding `--json`
/// command; `--no-wait` prints `{"job":N}` immediately instead.
fn cmd_submit(o: &Opts) -> Result<(), String> {
    let kind_name = o
        .kind
        .as_deref()
        .ok_or("submit requires --kind explore|campaign|bulk")?;
    let kind = JobKind::parse(kind_name)?;
    let n = *o.ns.first().unwrap_or(&100);
    let spec = job_spec_from_opts(kind, o, n);
    let mut client = connect(o, "submit")?;
    if o.no_wait {
        let id = client.submit(&spec).map_err(|e| e.to_string())?;
        println!("{{\"job\":{id}}}");
        return Ok(());
    }
    let (line, verdict) = client.run(&spec).map_err(|e| e.to_string())?;
    println!("{line}");
    if verdict == "FAIL" {
        Err("job completed with verdict FAIL".into())
    } else {
        Ok(())
    }
}

/// Print the daemon's job roster (or one job's full record) as one JSON line.
fn cmd_status(o: &Opts) -> Result<(), String> {
    let mut client = connect(o, "status")?;
    let reply = client.status(o.job).map_err(|e| e.to_string())?;
    println!("{reply}");
    Ok(())
}

/// Ask the daemon to drain running jobs, refuse new ones, and exit.
fn cmd_shutdown(o: &Opts) -> Result<(), String> {
    let mut client = connect(o, "shutdown")?;
    client.shutdown().map_err(|e| e.to_string())?;
    eprintln!("daemon is draining; it exits once queued jobs finish");
    Ok(())
}

fn cmd_capacity(o: &Opts) -> Result<(), String> {
    println!(
        "{:>28} {:>9} {:>8} {:>14} {:>14} {:>11}",
        "family", "f(n)", "n", "required", "capacity", "verdict"
    );
    for family in [
        Family::LabeledTrees,
        Family::BipartiteFixedHalves,
        Family::EvenOddBipartite,
        Family::AllGraphs,
    ] {
        for regime in [
            MessageRegime::LogN { c: 4 },
            MessageRegime::SqrtN,
            MessageRegime::Linear,
        ] {
            for &n in &o.ns {
                let v = verdict(family, n as u64, regime);
                println!(
                    "{:>28} {:>9} {:>8} {:>14} {:>14} {:>11}",
                    family.name(),
                    regime.name(),
                    n,
                    v.required_bits,
                    v.capacity_bits,
                    if v.impossible() { "IMPOSSIBLE" } else { "open" }
                );
            }
        }
    }
    Ok(())
}

fn cmd_list() {
    println!("protocols (from the shared registry; [bulk] = runnable on the bulk tier):");
    for p in registry::PROTOCOLS {
        println!(
            "  {:<22} {:<40} ({}, {}){}",
            p.spec,
            p.summary,
            p.model,
            p.paper,
            if p.bulk { " [bulk]" } else { "" }
        );
    }
    println!("workloads: tree forest ktree:K kdeg:K mixed:K gnp:DEG eob bipartite");
    println!("           two-cliques impostor clique cycle path file:PATH (edge list)");
    println!("adversaries: min max random:SEED");
    println!("campaign samplers: uniform priority crashy (see `whiteboard campaign`)");
    println!(
        "tiers: check/explore ≲ n=8 · campaign ≲ n=10² · bulk ≥ n=10⁵ \
         (simultaneous-native, any target model that includes the native one)"
    );
}
