//! Regression corpus: witness schedules as replayable fixtures.
//!
//! When an exploration ([`wb_runtime::exhaustive::explore`]) finds a failing
//! terminal configuration, the witness is just a write order — tiny,
//! deterministic, and worth keeping. This module serializes such witnesses
//! into RON-style text fixtures (`tests/corpus/*.ron`) and replays them
//! through the engine via [`ScheduleAdversary`], so every bug ever found by
//! the explorer stays a permanent, fast regression test.
//!
//! The format is a single struct literal, fields in fixed order:
//!
//! ```ron
//! (
//!     name: "mis-schedule-dependence",
//!     format: "wb-cert/v1",
//!     protocol: "mis:1",
//!     n: 4,
//!     edges: [(1, 2), (2, 3), (3, 4)],
//!     schedule: [1, 4, 2, 3],
//!     expect: Output("[1, 4]"),
//! )
//! ```
//!
//! `format` pins the certificate format family the witness belongs to
//! (see `docs/CERTIFICATES.md`): a fixture is a standalone witness in the
//! `wb-cert/v1` sense, and `tests/corpus_replay.rs` re-verifies each one
//! through the independent `wb-verify` replayer in addition to the engine
//! replay here. Unknown versions are rejected at parse time.
//!
//! `expect` records what the run ended in when the witness was captured:
//! `Deadlock(awake: [..])` or `Output("..")` (the `Debug` rendering of the
//! protocol output — exact replay must reproduce it bit for bit).

use crate::prelude::*;
use std::fmt::Debug;
use std::fs;
use std::path::Path;

/// What the recorded schedule must reproduce on replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// The run stalls with exactly these nodes still awake.
    Deadlock {
        /// Awake nodes at the stall, ascending.
        awake: Vec<NodeId>,
    },
    /// The run succeeds and the output's `Debug` rendering equals this.
    Output(String),
}

/// One replayable witness: a protocol, a graph, a write order, and the
/// outcome it must reproduce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessFixture {
    /// Human-readable fixture name.
    pub name: String,
    /// Certificate format version the witness conforms to
    /// ([`wb_runtime::certificate::FORMAT`]).
    pub format: String,
    /// CLI-style protocol spec (see [`WitnessFixture::replay`] for the
    /// supported set), e.g. `"mis:1"` or `"async-bipartite-bfs"`.
    pub protocol: String,
    /// Number of nodes.
    pub n: usize,
    /// Edge list of the witness graph.
    pub edges: Vec<(NodeId, NodeId)>,
    /// The adversary's picks, in write order.
    pub schedule: Vec<NodeId>,
    /// The outcome the replay must reproduce.
    pub expect: ExpectedOutcome,
}

impl WitnessFixture {
    /// Capture an exploration failure as a fixture.
    pub fn from_failure<O: Debug>(
        name: &str,
        protocol: &str,
        g: &Graph,
        failure: &ScheduleFailure<O>,
    ) -> Self {
        let expect = match &failure.outcome {
            Outcome::Deadlock { awake } => ExpectedOutcome::Deadlock {
                awake: awake.clone(),
            },
            Outcome::Success(out) => ExpectedOutcome::Output(format!("{out:?}")),
        };
        WitnessFixture {
            name: name.to_string(),
            format: wb_runtime::certificate::FORMAT.to_string(),
            protocol: protocol.to_string(),
            n: g.n(),
            edges: g.edges().collect(),
            schedule: failure.schedule.clone(),
            expect,
        }
    }

    /// The witness graph.
    pub fn graph(&self) -> Graph {
        Graph::from_edges(self.n, &self.edges)
    }

    /// Serialize to the RON-style text format.
    pub fn to_ron(&self) -> String {
        let edges = self
            .edges
            .iter()
            .map(|(u, v)| format!("({u}, {v})"))
            .collect::<Vec<_>>()
            .join(", ");
        let schedule = self
            .schedule
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let expect = match &self.expect {
            ExpectedOutcome::Deadlock { awake } => format!(
                "Deadlock(awake: [{}])",
                awake
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ExpectedOutcome::Output(debug) => format!("Output(\"{}\")", escape(debug)),
        };
        format!(
            "(\n    name: \"{}\",\n    format: \"{}\",\n    protocol: \"{}\",\n    n: {},\n    \
             edges: [{}],\n    schedule: [{}],\n    expect: {},\n)\n",
            escape(&self.name),
            escape(&self.format),
            escape(&self.protocol),
            self.n,
            edges,
            schedule,
            expect
        )
    }

    /// Parse the RON-style text format (fields in the order `to_ron` emits).
    ///
    /// Errors carry the failing *field* plus the line and column where the
    /// parse stopped — `field 'edges': expected '(' at line 5, column 13` —
    /// so a hand-edited or corrupted fixture points at its own defect.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser::new(text);
        p.field("fixture");
        p.expect("(")?;
        p.field("name");
        p.expect("name")?;
        p.expect(":")?;
        let name = p.string()?;
        p.expect(",")?;
        p.field("format");
        p.expect("format")?;
        p.expect(":")?;
        let format = p.string()?;
        if format != wb_runtime::certificate::FORMAT {
            return Err(p.err(&format!(
                "unsupported witness format '{format}' (this build reads '{}')",
                wb_runtime::certificate::FORMAT
            )));
        }
        p.expect(",")?;
        p.field("protocol");
        p.expect("protocol")?;
        p.expect(":")?;
        let protocol = p.string()?;
        p.expect(",")?;
        p.field("n");
        p.expect("n")?;
        p.expect(":")?;
        let n = p.number()? as usize;
        p.expect(",")?;
        p.field("edges");
        p.expect("edges")?;
        p.expect(":")?;
        let edges = p.pair_list()?;
        p.expect(",")?;
        p.field("schedule");
        p.expect("schedule")?;
        p.expect(":")?;
        let schedule = p.number_list()?;
        p.expect(",")?;
        p.field("expect");
        p.expect("expect")?;
        p.expect(":")?;
        let expect = if p.try_expect("Deadlock") {
            p.expect("(")?;
            p.expect("awake")?;
            p.expect(":")?;
            let awake = p.number_list()?;
            p.expect(")")?;
            ExpectedOutcome::Deadlock { awake }
        } else {
            p.expect("Output")?;
            p.expect("(")?;
            let debug = p.string()?;
            p.expect(")")?;
            ExpectedOutcome::Output(debug)
        };
        p.try_expect(",");
        p.field("fixture");
        p.expect(")")?;

        // Semantic bounds: every node ID must name a node of the graph. A
        // fixture that references node 0 or n+1 would otherwise surface as
        // a confusing engine panic at replay time.
        let awake_ids: &[NodeId] = match &expect {
            ExpectedOutcome::Deadlock { awake } => awake,
            ExpectedOutcome::Output(_) => &[],
        };
        for (which, id) in edges
            .iter()
            .flat_map(|&(u, v)| [("edges", u), ("edges", v)])
            .chain(schedule.iter().map(|&v| ("schedule", v)))
            .chain(awake_ids.iter().map(|&v| ("expect", v)))
        {
            if id < 1 || id as usize > n {
                return Err(format!(
                    "field '{which}': node id {id} out of bounds for n = {n} \
                     (ids are 1..={n})"
                ));
            }
        }
        Ok(WitnessFixture {
            name,
            format,
            protocol,
            n,
            edges,
            schedule,
            expect,
        })
    }

    /// Write the fixture to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_ron())
    }

    /// Read and parse a fixture from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Re-run the recorded schedule deterministically and check it
    /// reproduces the recorded outcome.
    ///
    /// The protocol spec resolves through [`wb_core::registry`] — any
    /// registered protocol (see `whiteboard list`) can be a fixture subject,
    /// and the spec syntax and argument defaults are exactly the CLI's.
    ///
    /// Panics (via [`ScheduleAdversary`]) if the recorded schedule is no
    /// longer executable — that means engine or protocol semantics drifted,
    /// which is exactly what a regression corpus must catch.
    pub fn replay(&self) -> Result<(), String> {
        use wb_core::registry::{self, BoundOracle, ProtocolVisitor};

        /// Strict-replays the fixture's schedule and renders the outcome.
        struct Replay<'a> {
            g: &'a Graph,
            schedule: Vec<NodeId>,
        }

        impl ProtocolVisitor for Replay<'_> {
            type Result = ExpectedOutcome;
            fn visit<P, B>(self, protocol: P, _bind: B) -> ExpectedOutcome
            where
                P: Protocol + Clone + Send + Sync,
                P::Node: Send + Sync,
                P::Output: Clone + PartialEq + Debug + Send + Sync,
                B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
            {
                let report = run(
                    &protocol,
                    self.g,
                    &mut ScheduleAdversary::new(self.schedule),
                );
                match report.outcome {
                    Outcome::Deadlock { awake } => ExpectedOutcome::Deadlock { awake },
                    Outcome::Success(out) => ExpectedOutcome::Output(format!("{out:?}")),
                }
            }
        }

        // The registry's `split_spec` quietly falls back to the default on
        // an unparsable argument; a corpus fixture must fail loudly instead
        // (a corrupted spec silently replaying the wrong protocol would
        // defeat the regression corpus).
        if let Some((_, arg)) = self.protocol.split_once(':') {
            arg.parse::<u64>().map_err(|_| {
                format!(
                    "fixture '{}': bad protocol argument in '{}'",
                    self.name, self.protocol
                )
            })?;
        }
        let g = self.graph();
        let observed = registry::dispatch(
            &self.protocol,
            g.n(),
            Replay {
                g: &g,
                schedule: self.schedule.clone(),
            },
        )
        .map_err(|e| format!("fixture '{}': {e}", self.name))?;
        if observed == self.expect {
            Ok(())
        } else {
            Err(format!(
                "fixture '{}' did not reproduce: expected {:?}, replay produced {:?}",
                self.name, self.expect, observed
            ))
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Minimal cursor parser for the fixture grammar, tracking the absolute
/// offset so errors report the failing field, line, and column.
struct Parser<'a> {
    text: &'a str,
    pos: usize,
    /// The fixture field currently being parsed — error context.
    field: &'static str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            pos: 0,
            field: "fixture",
        }
    }

    /// Set the field name used as context in subsequent errors.
    fn field(&mut self, name: &'static str) {
        self.field = name;
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    /// 1-based (line, column) of the cursor, by characters not bytes.
    fn line_col(&self) -> (usize, usize) {
        let consumed = &self.text[..self.pos];
        let line = consumed.matches('\n').count() + 1;
        let col = consumed
            .rsplit_once('\n')
            .map_or(consumed, |(_, tail)| tail)
            .chars()
            .count()
            + 1;
        (line, col)
    }

    /// Render `what` with the current field and position attached.
    fn err(&self, what: &str) -> String {
        let (line, col) = self.line_col();
        format!(
            "field '{}': {what} at line {line}, column {col}",
            self.field
        )
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn expect(&mut self, token: &str) -> Result<(), String> {
        if self.try_expect(token) {
            Ok(())
        } else {
            self.skip_ws();
            let found: String = self.rest().chars().take(24).collect();
            Err(self.err(&format!("expected '{token}', found '{found}…'")))
        }
    }

    fn try_expect(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, e)) => out.push(e),
                    None => return Err(self.err("dangling escape in string")),
                },
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                _ => out.push(c),
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let digits: String = self
            .rest()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if digits.is_empty() {
            let found: String = self.rest().chars().take(24).collect();
            return Err(self.err(&format!("expected a number, found '{found}…'")));
        }
        self.pos += digits.len();
        digits
            .parse()
            .map_err(|e| self.err(&format!("bad number: {e}")))
    }

    fn number_list(&mut self) -> Result<Vec<NodeId>, String> {
        self.expect("[")?;
        let mut out = Vec::new();
        loop {
            if self.try_expect("]") {
                return Ok(out);
            }
            if !out.is_empty() {
                self.expect(",")?;
                if self.try_expect("]") {
                    return Ok(out);
                }
            }
            out.push(self.number()? as NodeId);
        }
    }

    fn pair_list(&mut self) -> Result<Vec<(NodeId, NodeId)>, String> {
        self.expect("[")?;
        let mut out = Vec::new();
        loop {
            if self.try_expect("]") {
                return Ok(out);
            }
            if !out.is_empty() {
                self.expect(",")?;
                if self.try_expect("]") {
                    return Ok(out);
                }
            }
            self.expect("(")?;
            let u = self.number()? as NodeId;
            self.expect(",")?;
            let v = self.number()? as NodeId;
            self.expect(")")?;
            out.push((u, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> WitnessFixture {
        WitnessFixture {
            name: "example".into(),
            format: wb_runtime::certificate::FORMAT.into(),
            protocol: "mis:1".into(),
            n: 4,
            edges: vec![(1, 2), (2, 3), (3, 4)],
            schedule: vec![1, 4, 2, 3],
            expect: ExpectedOutcome::Output("[1, 4]".into()),
        }
    }

    #[test]
    fn ron_round_trip() {
        let f = fixture();
        let parsed = WitnessFixture::parse(&f.to_ron()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn deadlock_round_trip() {
        let mut f = fixture();
        f.protocol = "async-bipartite-bfs".into();
        f.expect = ExpectedOutcome::Deadlock { awake: vec![3] };
        let parsed = WitnessFixture::parse(&f.to_ron()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn strings_with_quotes_round_trip() {
        let mut f = fixture();
        f.expect = ExpectedOutcome::Output("weird \"quoted\" \\ output".into());
        let parsed = WitnessFixture::parse(&f.to_ron()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WitnessFixture::parse("(name: 12)").is_err());
        assert!(WitnessFixture::parse("").is_err());
    }

    #[test]
    fn parse_rejects_unknown_format_version() {
        let mut f = fixture();
        f.format = "wb-cert/v99".into();
        let err = WitnessFixture::parse(&f.to_ron()).expect_err("unknown version must be refused");
        assert!(err.contains("wb-cert/v99"), "{err}");
    }

    #[test]
    fn parse_errors_name_the_field_and_position() {
        // Corrupt the edges list: `(1, 2]` — the error must say which field
        // broke and where, so a hand-edited fixture points at its defect.
        let text = fixture().to_ron().replace("(1, 2)", "(1, 2]");
        let err = WitnessFixture::parse(&text).expect_err("corrupt edges must fail");
        assert!(err.contains("field 'edges'"), "{err}");
        assert!(err.contains("expected ')'"), "{err}");
        // `edges:` sits on line 6 of `to_ron` output; the `]` follows it.
        assert!(err.contains("at line 6, column"), "{err}");

        // A truncated string in `name` reports that field on line 2.
        let truncated = "(\n    name: \"unterminated";
        let err = WitnessFixture::parse(truncated).expect_err("truncated name must fail");
        assert!(err.contains("field 'name'"), "{err}");
        assert!(err.contains("unterminated string"), "{err}");
        assert!(err.contains("at line 2"), "{err}");
    }

    #[test]
    fn parse_rejects_out_of_bounds_node_ids() {
        // Schedule references node 9 of a 4-node graph.
        let text = fixture().to_ron().replace("[1, 4, 2, 3]", "[1, 9, 2, 3]");
        let err = WitnessFixture::parse(&text).expect_err("id 9 of 4 must fail");
        assert!(err.contains("field 'schedule'"), "{err}");
        assert!(err.contains("node id 9 out of bounds for n = 4"), "{err}");

        // An edge endpoint of 0 (ids are 1-based) is equally invalid.
        let text = fixture().to_ron().replace("(1, 2)", "(0, 2)");
        let err = WitnessFixture::parse(&text).expect_err("id 0 must fail");
        assert!(err.contains("field 'edges'"), "{err}");
        assert!(err.contains("node id 0 out of bounds"), "{err}");

        // Deadlock `awake` ids are checked too.
        let mut f = fixture();
        f.expect = ExpectedOutcome::Deadlock { awake: vec![7] };
        let err = WitnessFixture::parse(&f.to_ron()).expect_err("awake id 7 of 4 must fail");
        assert!(err.contains("field 'expect'"), "{err}");
        assert!(err.contains("node id 7 out of bounds"), "{err}");
    }

    #[test]
    fn parse_rejects_versionless_legacy_fixtures() {
        // The pre-versioned spelling (no `format` field) must not parse
        // silently as something else.
        let legacy = "(\n    name: \"x\",\n    protocol: \"mis:1\",\n    n: 2,\n    \
                      edges: [(1, 2)],\n    schedule: [1, 2],\n    expect: Output(\"[1]\"),\n)\n";
        assert!(WitnessFixture::parse(legacy).is_err());
    }
}
