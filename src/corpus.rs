//! Regression corpus: witness schedules as replayable fixtures.
//!
//! When an exploration ([`wb_runtime::exhaustive::explore`]) finds a failing
//! terminal configuration, the witness is just a write order — tiny,
//! deterministic, and worth keeping. This module serializes such witnesses
//! into RON-style text fixtures (`tests/corpus/*.ron`) and replays them
//! through the engine via [`ScheduleAdversary`], so every bug ever found by
//! the explorer stays a permanent, fast regression test.
//!
//! The format is a single struct literal, fields in fixed order:
//!
//! ```ron
//! (
//!     name: "mis-schedule-dependence",
//!     format: "wb-cert/v1",
//!     protocol: "mis:1",
//!     n: 4,
//!     edges: [(1, 2), (2, 3), (3, 4)],
//!     schedule: [1, 4, 2, 3],
//!     expect: Output("[1, 4]"),
//! )
//! ```
//!
//! `format` pins the certificate format family the witness belongs to
//! (see `docs/CERTIFICATES.md`): a fixture is a standalone witness in the
//! `wb-cert/v1` sense, and `tests/corpus_replay.rs` re-verifies each one
//! through the independent `wb-verify` replayer in addition to the engine
//! replay here. Unknown versions are rejected at parse time.
//!
//! `expect` records what the run ended in when the witness was captured:
//! `Deadlock(awake: [..])` or `Output("..")` (the `Debug` rendering of the
//! protocol output — exact replay must reproduce it bit for bit).

use crate::prelude::*;
use std::fmt::Debug;
use std::fs;
use std::path::Path;

/// What the recorded schedule must reproduce on replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExpectedOutcome {
    /// The run stalls with exactly these nodes still awake.
    Deadlock {
        /// Awake nodes at the stall, ascending.
        awake: Vec<NodeId>,
    },
    /// The run succeeds and the output's `Debug` rendering equals this.
    Output(String),
}

/// One replayable witness: a protocol, a graph, a write order, and the
/// outcome it must reproduce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessFixture {
    /// Human-readable fixture name.
    pub name: String,
    /// Certificate format version the witness conforms to
    /// ([`wb_runtime::certificate::FORMAT`]).
    pub format: String,
    /// CLI-style protocol spec (see [`WitnessFixture::replay`] for the
    /// supported set), e.g. `"mis:1"` or `"async-bipartite-bfs"`.
    pub protocol: String,
    /// Number of nodes.
    pub n: usize,
    /// Edge list of the witness graph.
    pub edges: Vec<(NodeId, NodeId)>,
    /// The adversary's picks, in write order.
    pub schedule: Vec<NodeId>,
    /// The outcome the replay must reproduce.
    pub expect: ExpectedOutcome,
}

impl WitnessFixture {
    /// Capture an exploration failure as a fixture.
    pub fn from_failure<O: Debug>(
        name: &str,
        protocol: &str,
        g: &Graph,
        failure: &ScheduleFailure<O>,
    ) -> Self {
        let expect = match &failure.outcome {
            Outcome::Deadlock { awake } => ExpectedOutcome::Deadlock {
                awake: awake.clone(),
            },
            Outcome::Success(out) => ExpectedOutcome::Output(format!("{out:?}")),
        };
        WitnessFixture {
            name: name.to_string(),
            format: wb_runtime::certificate::FORMAT.to_string(),
            protocol: protocol.to_string(),
            n: g.n(),
            edges: g.edges().collect(),
            schedule: failure.schedule.clone(),
            expect,
        }
    }

    /// The witness graph.
    pub fn graph(&self) -> Graph {
        Graph::from_edges(self.n, &self.edges)
    }

    /// Serialize to the RON-style text format.
    pub fn to_ron(&self) -> String {
        let edges = self
            .edges
            .iter()
            .map(|(u, v)| format!("({u}, {v})"))
            .collect::<Vec<_>>()
            .join(", ");
        let schedule = self
            .schedule
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let expect = match &self.expect {
            ExpectedOutcome::Deadlock { awake } => format!(
                "Deadlock(awake: [{}])",
                awake
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ExpectedOutcome::Output(debug) => format!("Output(\"{}\")", escape(debug)),
        };
        format!(
            "(\n    name: \"{}\",\n    format: \"{}\",\n    protocol: \"{}\",\n    n: {},\n    \
             edges: [{}],\n    schedule: [{}],\n    expect: {},\n)\n",
            escape(&self.name),
            escape(&self.format),
            escape(&self.protocol),
            self.n,
            edges,
            schedule,
            expect
        )
    }

    /// Parse the RON-style text format (fields in the order `to_ron` emits).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser::new(text);
        p.expect("(")?;
        p.expect("name")?;
        p.expect(":")?;
        let name = p.string()?;
        p.expect(",")?;
        p.expect("format")?;
        p.expect(":")?;
        let format = p.string()?;
        if format != wb_runtime::certificate::FORMAT {
            return Err(format!(
                "unsupported witness format '{format}' (this build reads '{}')",
                wb_runtime::certificate::FORMAT
            ));
        }
        p.expect(",")?;
        p.expect("protocol")?;
        p.expect(":")?;
        let protocol = p.string()?;
        p.expect(",")?;
        p.expect("n")?;
        p.expect(":")?;
        let n = p.number()? as usize;
        p.expect(",")?;
        p.expect("edges")?;
        p.expect(":")?;
        let edges = p.pair_list()?;
        p.expect(",")?;
        p.expect("schedule")?;
        p.expect(":")?;
        let schedule = p.number_list()?;
        p.expect(",")?;
        p.expect("expect")?;
        p.expect(":")?;
        let expect = if p.try_expect("Deadlock") {
            p.expect("(")?;
            p.expect("awake")?;
            p.expect(":")?;
            let awake = p.number_list()?;
            p.expect(")")?;
            ExpectedOutcome::Deadlock { awake }
        } else {
            p.expect("Output")?;
            p.expect("(")?;
            let debug = p.string()?;
            p.expect(")")?;
            ExpectedOutcome::Output(debug)
        };
        p.try_expect(",");
        p.expect(")")?;
        Ok(WitnessFixture {
            name,
            format,
            protocol,
            n,
            edges,
            schedule,
            expect,
        })
    }

    /// Write the fixture to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_ron())
    }

    /// Read and parse a fixture from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Re-run the recorded schedule deterministically and check it
    /// reproduces the recorded outcome.
    ///
    /// The protocol spec resolves through [`wb_core::registry`] — any
    /// registered protocol (see `whiteboard list`) can be a fixture subject,
    /// and the spec syntax and argument defaults are exactly the CLI's.
    ///
    /// Panics (via [`ScheduleAdversary`]) if the recorded schedule is no
    /// longer executable — that means engine or protocol semantics drifted,
    /// which is exactly what a regression corpus must catch.
    pub fn replay(&self) -> Result<(), String> {
        use wb_core::registry::{self, BoundOracle, ProtocolVisitor};

        /// Strict-replays the fixture's schedule and renders the outcome.
        struct Replay<'a> {
            g: &'a Graph,
            schedule: Vec<NodeId>,
        }

        impl ProtocolVisitor for Replay<'_> {
            type Result = ExpectedOutcome;
            fn visit<P, B>(self, protocol: P, _bind: B) -> ExpectedOutcome
            where
                P: Protocol + Clone + Send + Sync,
                P::Node: Send + Sync,
                P::Output: Clone + PartialEq + Debug + Send + Sync,
                B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
            {
                let report = run(
                    &protocol,
                    self.g,
                    &mut ScheduleAdversary::new(self.schedule),
                );
                match report.outcome {
                    Outcome::Deadlock { awake } => ExpectedOutcome::Deadlock { awake },
                    Outcome::Success(out) => ExpectedOutcome::Output(format!("{out:?}")),
                }
            }
        }

        // The registry's `split_spec` quietly falls back to the default on
        // an unparsable argument; a corpus fixture must fail loudly instead
        // (a corrupted spec silently replaying the wrong protocol would
        // defeat the regression corpus).
        if let Some((_, arg)) = self.protocol.split_once(':') {
            arg.parse::<u64>().map_err(|_| {
                format!(
                    "fixture '{}': bad protocol argument in '{}'",
                    self.name, self.protocol
                )
            })?;
        }
        let g = self.graph();
        let observed = registry::dispatch(
            &self.protocol,
            g.n(),
            Replay {
                g: &g,
                schedule: self.schedule.clone(),
            },
        )
        .map_err(|e| format!("fixture '{}': {e}", self.name))?;
        if observed == self.expect {
            Ok(())
        } else {
            Err(format!(
                "fixture '{}' did not reproduce: expected {:?}, replay produced {:?}",
                self.name, self.expect, observed
            ))
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Minimal cursor parser for the fixture grammar.
struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn expect(&mut self, token: &str) -> Result<(), String> {
        if self.try_expect(token) {
            Ok(())
        } else {
            Err(format!(
                "expected '{token}' at '{}…'",
                self.rest.chars().take(24).collect::<String>()
            ))
        }
    }

    fn try_expect(&mut self, token: &str) -> bool {
        self.skip_ws();
        match self.rest.strip_prefix(token) {
            Some(rest) => {
                self.rest = rest;
                true
            }
            None => false,
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, e)) => out.push(e),
                    None => return Err("dangling escape in string".into()),
                },
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                _ => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let digits: String = self
            .rest
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if digits.is_empty() {
            return Err(format!(
                "expected a number at '{}…'",
                self.rest.chars().take(24).collect::<String>()
            ));
        }
        self.rest = &self.rest[digits.len()..];
        digits.parse().map_err(|e| format!("bad number: {e}"))
    }

    fn number_list(&mut self) -> Result<Vec<NodeId>, String> {
        self.expect("[")?;
        let mut out = Vec::new();
        loop {
            if self.try_expect("]") {
                return Ok(out);
            }
            if !out.is_empty() {
                self.expect(",")?;
                if self.try_expect("]") {
                    return Ok(out);
                }
            }
            out.push(self.number()? as NodeId);
        }
    }

    fn pair_list(&mut self) -> Result<Vec<(NodeId, NodeId)>, String> {
        self.expect("[")?;
        let mut out = Vec::new();
        loop {
            if self.try_expect("]") {
                return Ok(out);
            }
            if !out.is_empty() {
                self.expect(",")?;
                if self.try_expect("]") {
                    return Ok(out);
                }
            }
            self.expect("(")?;
            let u = self.number()? as NodeId;
            self.expect(",")?;
            let v = self.number()? as NodeId;
            self.expect(")")?;
            out.push((u, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> WitnessFixture {
        WitnessFixture {
            name: "example".into(),
            format: wb_runtime::certificate::FORMAT.into(),
            protocol: "mis:1".into(),
            n: 4,
            edges: vec![(1, 2), (2, 3), (3, 4)],
            schedule: vec![1, 4, 2, 3],
            expect: ExpectedOutcome::Output("[1, 4]".into()),
        }
    }

    #[test]
    fn ron_round_trip() {
        let f = fixture();
        let parsed = WitnessFixture::parse(&f.to_ron()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn deadlock_round_trip() {
        let mut f = fixture();
        f.protocol = "async-bipartite-bfs".into();
        f.expect = ExpectedOutcome::Deadlock { awake: vec![5] };
        let parsed = WitnessFixture::parse(&f.to_ron()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn strings_with_quotes_round_trip() {
        let mut f = fixture();
        f.expect = ExpectedOutcome::Output("weird \"quoted\" \\ output".into());
        let parsed = WitnessFixture::parse(&f.to_ron()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WitnessFixture::parse("(name: 12)").is_err());
        assert!(WitnessFixture::parse("").is_err());
    }

    #[test]
    fn parse_rejects_unknown_format_version() {
        let mut f = fixture();
        f.format = "wb-cert/v99".into();
        let err = WitnessFixture::parse(&f.to_ron()).expect_err("unknown version must be refused");
        assert!(err.contains("wb-cert/v99"), "{err}");
    }

    #[test]
    fn parse_rejects_versionless_legacy_fixtures() {
        // The pre-versioned spelling (no `format` field) must not parse
        // silently as something else.
        let legacy = "(\n    name: \"x\",\n    protocol: \"mis:1\",\n    n: 2,\n    \
                      edges: [(1, 2)],\n    schedule: [1, 2],\n    expect: Output(\"[1]\"),\n)\n";
        assert!(WitnessFixture::parse(legacy).is_err());
    }
}
