//! # shared-whiteboard
//!
//! A full implementation of the *shared whiteboard* models of distributed
//! computing introduced by Becker, Kosowski, Matamala, Nisse, Rapaport,
//! Suchan and Todinca (SPAA 2012 / Distributed Computing 2015): each node of
//! a labeled graph writes **exactly one** small message on a shared
//! whiteboard under an adversarial scheduler, and the answer must be read off
//! the final board.
//!
//! The workspace provides, and this crate re-exports:
//!
//! - [`runtime`] — the four models (`SIMASYNC`, `SIMSYNC`, `ASYNC`, `SYNC`),
//!   the execution engine, adversaries, exhaustive model checking, and the
//!   Lemma 4 model-promotion adapters;
//! - [`core`] — the paper's protocols: BUILD for bounded-degeneracy graphs,
//!   rooted MIS, 2-CLIQUES (deterministic and randomized), EOB-BFS, general
//!   BFS, SUBGRAPH_f, TRIANGLE brackets, and the naive baseline;
//! - [`reductions`] — Theorems 3/6/8/9 as executable protocol
//!   transformations plus the Lemma 3 counting machinery;
//! - [`graph`] — labeled graphs, generators, reference oracles, enumeration;
//! - [`math`] — exact bignum arithmetic, power-sum codes, bit-level messages;
//! - [`par`] — the small data-parallel toolkit used by the benchmark harness,
//!   the schedule-space explorer, and the campaign runner;
//! - [`sim`] — the statistical tier: Monte Carlo schedule campaigns (seeded
//!   samplers, sharded trial execution, deterministic reports) and
//!   delta-debugging witness shrinking for `n` past the exhaustive frontier;
//! - [`corpus`] — replayable witness-schedule fixtures captured from
//!   exploration and campaign failures (`tests/corpus/*.ron`);
//! - [`serve`] — the job layer shared by the CLI's `--json` paths and the
//!   `whiteboard serve` daemon: job specs spanning all three execution
//!   tiers, deterministic reports, the line-delimited wire protocol, and
//!   the multi-tenant Unix-socket daemon itself.
//!
//! ## Quickstart
//!
//! ```
//! use shared_whiteboard::prelude::*;
//!
//! // A random forest: every node writes (ID, degree, Σ neighbor IDs) —
//! // O(log n) bits — with *no* communication, and the referee rebuilds the
//! // entire graph from the final whiteboard (paper §3.1).
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
//! let forest = wb_graph::generators::random_forest(64, 0.7, &mut rng);
//! let protocol = BuildDegenerate::forests();
//! let report = run(&protocol, &forest, &mut RandomAdversary::new(7));
//! assert!(report.max_message_bits() <= 4 * 7); // the paper's "< 4 log n bits"
//! match report.outcome {
//!     Outcome::Success(Ok(rebuilt)) => assert_eq!(rebuilt, forest),
//!     other => panic!("{other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;

pub use wb_core as core;
pub use wb_graph as graph;
pub use wb_math as math;
pub use wb_par as par;
pub use wb_reductions as reductions;
pub use wb_runtime as runtime;
pub use wb_serve as serve;
pub use wb_sim as sim;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use wb_core::{
        AsyncBipartiteBfs, BfsOutput, BuildDegenerate, BuildError, BuildMixed, ConnectivityReport,
        ConnectivitySync, DegreeStats, DegreeSummary, DiameterAtMost3FullRow, EdgeCount, EobBfs,
        MisGreedy, NaiveBuild, SpanningForest, SpanningForestSync, SquareFullRow, SquareViaBuild,
        SubgraphPrefix, SyncBfs, TriangleFullRow, TriangleViaBuild, TwoCliques,
        TwoCliquesRandomized,
    };
    pub use wb_graph::{checks, enumerate, generators, AdjMatrix, Graph, NodeId};
    pub use wb_math::{bits_for, id_bits, BigInt, BitReader, BitVec, BitWriter};
    pub use wb_runtime::adapt::Promote;
    pub use wb_runtime::bulk::{
        bulk_model, identity_schedule, run_bulk, run_bulk_crashed, shuffled_schedule, BulkBoard,
        BulkConfig, BulkProtocol, BulkReport, Oblivious, UnsupportedBulkModel,
    };
    pub use wb_runtime::exhaustive::{
        assert_all_schedules, assert_explored, explore, explore_parallel, find_failing_schedule,
        for_each_schedule, DedupPolicy, ExplorationReport, ExploreConfig, NaiveReport,
        ReductionPolicy, ReductionStats, ScheduleFailure,
    };
    pub use wb_runtime::{
        run, Adversary, CanonicalState, Engine, LenientScheduleAdversary, LocalView,
        MaxIdAdversary, MinIdAdversary, Model, Node, Outcome, PriorityAdversary, Protocol,
        RandomAdversary, RunReport, ScheduleAdversary, Whiteboard,
    };
    pub use wb_sim::{
        run_bulk_campaign, run_campaign, shrink_schedule, trial_seed, CampaignConfig,
        CampaignLabels, CampaignReport, SamplerKind, ShrinkReport,
    };
}
