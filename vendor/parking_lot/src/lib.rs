//! Offline stand-in for the subset of `parking_lot` this workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no poison `Result`).
//!
//! Implemented over `std::sync::Mutex`; a poisoned lock is recovered rather
//! than propagated, which matches `parking_lot`'s no-poisoning semantics
//! closely enough for the scoped fork/join use in `wb-par`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex as StdMutex;

/// Re-export of the standard guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, this never returns a poison error: if a previous holder
    /// panicked, the lock is recovered and handed out anyway.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_counting() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
