//! Offline stand-in for the subset of the `criterion` benchmarking API used
//! by this workspace: `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size`/`measurement_time`/`warm_up_time`),
//! [`BenchmarkId`], [`Bencher::iter`], and [`black_box`].
//!
//! It performs a real (if statistically unsophisticated) measurement: each
//! benchmark is warmed up for the configured warm-up time, then timed in
//! batches until the measurement time elapses, and the mean/min per-iteration
//! wall time is printed. There is no outlier analysis, no HTML report, and no
//! baseline comparison — swap in the real crate for those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the benchmark.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Filled in by [`Bencher::iter`]: (mean, min) per-iteration nanos.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `routine`, storing mean and minimum per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size so one sample is neither trivially short nor
        // longer than the whole measurement budget.
        let per_iter = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / per_iter).round() as u64).clamp(1, 1 << 20);

        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let sample = t0.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += sample * batch as f64;
            total_iters += batch;
            min_ns = min_ns.min(sample);
            if measure_start.elapsed() > self.measurement.saturating_mul(4) {
                break; // hard cap: never overshoot the budget by more than 4x
            }
        }
        self.result = Some((total_ns / total_iters as f64, min_ns));
    }
}

/// Human-readable nanosecond count (`ns`/`µs`/`ms`/`s`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Top-level benchmark driver (one per `criterion_group!` run).
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Default number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Default measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Default warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.text,
            self.sample_size,
            self.measurement,
            self.warm_up,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement: self.measurement,
            warm_up: self.warm_up,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warm-up budget per benchmark in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.text);
        run_one(&label, self.sample_size, self.measurement, self.warm_up, f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.text);
        run_one(
            &label,
            self.sample_size,
            self.measurement,
            self.warm_up,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (report separation only in the real crate).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        warm_up,
        measurement,
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            println!(
                "{label:<60} mean {:>12}   min {:>12}",
                fmt_ns(mean),
                fmt_ns(min)
            );
        }
        None => println!("{label:<60} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group function named `$name` running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 200), &200u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
