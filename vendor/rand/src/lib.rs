//! Offline stand-in for the subset of the [`rand` 0.8] API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal implementation instead. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality and fast, though *not* the same stream as
//! the real `StdRng` (ChaCha12), so seeds produce different (but equally
//! deterministic and reproducible) instances. Nothing here is
//! cryptographically secure; the workspace only needs reproducible instance
//! generation and adversary schedules.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        uniform01(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a raw word to a uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn uniform01(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Test-only generators.
    pub mod mock {
        use crate::RngCore;

        /// A deterministic arithmetic-progression "generator" for tests.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Stream `initial, initial + increment, initial + 2·increment, …`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform range sampling (the `gen_range` plumbing).
pub mod distributions {
    /// Uniform-over-range machinery.
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Draws a uniform value in `0..span` (`span > 0`) from two words.
        #[inline]
        fn below<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
            debug_assert!(span > 0);
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            // Modulo reduction: bias is < 2^-64 for every span used in this
            // workspace, far below observable for test-instance generation.
            wide % span
        }

        macro_rules! impl_int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for ::core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = self.end.wrapping_sub(self.start) as u128;
                        self.start.wrapping_add(below(span, rng) as $t)
                    }
                }
                impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = self.into_inner();
                        assert!(start <= end, "gen_range: empty range");
                        let span = end.wrapping_sub(start) as u128;
                        if span == u128::MAX {
                            // Full-domain 128-bit range: every pattern is valid.
                            let wide =
                                ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                            return start.wrapping_add(wide as $t);
                        }
                        start.wrapping_add(below(span + 1, rng) as $t)
                    }
                }
            )*};
        }

        impl_int_ranges!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

        macro_rules! impl_float_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for ::core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let u = crate::uniform01(rng.next_u64()) as $t;
                        self.start + (self.end - self.start) * u
                    }
                }
            )*};
        }

        impl_float_ranges!(f32, f64);
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i128..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
