//! Offline stand-in for the subset of `proptest` used by this workspace: the
//! [`proptest!`] macro (including the `#![proptest_config(..)]` header form),
//! range/`any`/tuple/collection strategies, `prop_assert*` macros, and
//! [`test_runner::TestCaseError`].
//!
//! Semantic differences from the real crate, by design:
//!
//! - **Minimal shrinking.** On failure the runner walks each argument
//!   toward its strategy's minimum (range start, zero, `false`) while the
//!   case keeps failing — a greedy per-argument loop over
//!   [`strategy::Strategy::shrink_candidates`], not the real crate's value
//!   trees. Range/`any` strategies shrink; tuples and collections do not.
//!   Shrinking requires argument types to be `Clone` (every type used in
//!   this workspace is).
//! - **Deterministic generation.** Case `i` of every test derives its inputs
//!   from a fixed function of `i`, so failures reproduce exactly across runs
//!   with no persistence files.
//!
//! Both are acceptable for CI-style regression testing, which is all this
//! workspace needs while crates.io is unreachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A target size (range) for a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_inclusive - self.min + 1) as u128) as usize
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing a `HashSet` of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` strategy with a target size drawn from `size`.
    ///
    /// If the element domain is too small to reach the target size, the set
    /// is returned smaller after a bounded number of attempts (mirroring the
    /// real crate's bounded rejection).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 16 * target + 64 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` running `body` over sampled inputs.
///
/// Supports the optional `#![proptest_config(expr)]` header used to set the
/// number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // The body as a re-runnable closure over the argument
                    // tuple: the original case runs through it once, and the
                    // shrink loop replays it with substituted arguments.
                    let run_case = $crate::test_runner::constrain_case(
                        &($(::core::clone::Clone::clone(&$arg),)+),
                        |($($arg,)+)|
                            -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        },
                    );
                    let rendered_inputs = [
                        $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                    ]
                    .join(", ");
                    let outcome = run_case(($(::core::clone::Clone::clone(&$arg),)+));
                    if let ::core::result::Result::Err(err) = outcome {
                        // Greedy per-argument shrink: keep substituting
                        // simpler candidates while the case still fails.
                        $(let mut $arg = $arg;)+
                        let mut rounds = 0usize;
                        loop {
                            let mut improved = false;
                            $crate::__shrink_args!(run_case, improved; (); $($arg { $strat }),+);
                            rounds += 1;
                            // 256 rounds: enough for geometric (×¾) descent
                            // across a full u64 range plus the linear tail.
                            if !improved || rounds >= 256 {
                                break;
                            }
                        }
                        let minimal_inputs = [
                            $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                        ]
                        .join(", ");
                        let minimal_err =
                            match run_case(($(::core::clone::Clone::clone(&$arg),)+)) {
                                ::core::result::Result::Err(e) => e,
                                ::core::result::Result::Ok(()) => err,
                            };
                        panic!(
                            "proptest case {case} of {} failed:\n{minimal_err}\nminimal inputs: {}\noriginal inputs: {}",
                            stringify!($name),
                            minimal_inputs,
                            rendered_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: one greedy shrink pass. Peels the
/// argument list left to right; for the head argument it tries each shrink
/// candidate with every other argument held fixed, adopting the first
/// candidate that still fails, then recurses into the tail.
#[doc(hidden)]
#[macro_export]
macro_rules! __shrink_args {
    ($run:ident, $improved:ident; ($($done:ident),* $(,)?); ) => {};
    ($run:ident, $improved:ident; ($($done:ident),* $(,)?);
     $cur:ident { $curstrat:expr } $(, $rest:ident { $reststrat:expr })*) => {
        for cand in $crate::strategy::Strategy::shrink_candidates(&($curstrat), &$cur) {
            let still_fails = $run((
                $(::core::clone::Clone::clone(&$done),)*
                ::core::clone::Clone::clone(&cand),
                $(::core::clone::Clone::clone(&$rest),)*
            ))
            .is_err();
            if still_fails {
                $cur = cand;
                $improved = true;
                break;
            }
        }
        $crate::__shrink_args!($run, $improved; ($($done,)* $cur); $($rest { $reststrat }),*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in -4i128..=4, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-4..=4).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u64>(), 2..5),
            s in crate::collection::hash_set(0u32..1000, 1..4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..4).contains(&s.len()));
        }

        #[test]
        fn tuples_sample(pair in (any::<u64>(), 1u32..=64)) {
            prop_assert!((1..=64).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 5);
        let mut b = crate::test_runner::TestRng::for_case("t", 5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case() {
        proptest! {
            fn always_fails(n in 0usize..4) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }

    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(f).expect_err("test must fail");
        match err.downcast::<String>() {
            Ok(s) => *s,
            Err(err) => err.downcast::<&str>().map(|s| s.to_string()).unwrap(),
        }
    }

    #[test]
    fn shrinking_reaches_the_minimal_range_failure() {
        // Fails iff n ≥ 17: whatever case fails first, the greedy shrink
        // loop must walk it down to exactly 17.
        proptest! {
            fn fails_from_17(n in 0usize..1000) {
                prop_assert!(n < 17, "n = {} is too big", n);
            }
        }
        let msg = panic_message(fails_from_17);
        assert!(msg.contains("minimal inputs: n = 17"), "{msg}");
        assert!(msg.contains("original inputs: n = "), "{msg}");
    }

    #[test]
    fn shrinking_handles_multiple_arguments_independently() {
        // Fails iff a ≥ 5 (b is irrelevant): a shrinks to 5, b to its
        // range minimum.
        proptest! {
            fn fails_on_a(a in 0u32..100, b in 3u64..50) {
                prop_assert!(a < 5, "a = {}, b = {}", a, b);
            }
        }
        let msg = panic_message(fails_on_a);
        assert!(msg.contains("minimal inputs: a = 5, b = 3"), "{msg}");
    }

    #[test]
    fn shrinking_respects_conjoined_failures() {
        // Fails iff both are large: neither argument may shrink below the
        // other's constraint.
        proptest! {
            fn fails_when_both_large(a in 0i64..200, b in 0i64..200) {
                prop_assert!(a < 10 || b < 7, "a = {}, b = {}", a, b);
            }
        }
        let msg = panic_message(fails_when_both_large);
        assert!(msg.contains("minimal inputs: a = 10, b = 7"), "{msg}");
    }

    #[test]
    fn range_shrink_candidates_move_toward_start() {
        let r = 3usize..100;
        assert_eq!(r.shrink_candidates(&3), Vec::<usize>::new());
        assert_eq!(r.shrink_candidates(&4), vec![3]);
        // Minimum, midpoint, three-quarter point, predecessor.
        assert_eq!(r.shrink_candidates(&50), vec![3, 26, 37, 49]);
        let ri = -5i32..=5;
        assert_eq!(ri.shrink_candidates(&-5), Vec::<i32>::new());
        assert_eq!(ri.shrink_candidates(&5), vec![-5, 0, 2, 4]);
        let anyu = any::<u64>();
        assert_eq!(anyu.shrink_candidates(&9), vec![0, 4]);
        assert_eq!(any::<bool>().shrink_candidates(&true), vec![false]);
    }

    use crate::strategy::Strategy;
}
