//! Offline stand-in for the subset of `proptest` used by this workspace: the
//! [`proptest!`] macro (including the `#![proptest_config(..)]` header form),
//! range/`any`/tuple/collection strategies, `prop_assert*` macros, and
//! [`test_runner::TestCaseError`].
//!
//! Semantic differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its case index and panics; it
//!   does not search for a minimal counterexample.
//! - **Deterministic generation.** Case `i` of every test derives its inputs
//!   from a fixed function of `i`, so failures reproduce exactly across runs
//!   with no persistence files.
//!
//! Both are acceptable for CI-style regression testing, which is all this
//! workspace needs while crates.io is unreachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A target size (range) for a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_inclusive - self.min + 1) as u128) as usize
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing a `HashSet` of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `HashSet` strategy with a target size drawn from `size`.
    ///
    /// If the element domain is too small to reach the target size, the set
    /// is returned smaller after a bounded number of attempts (mirroring the
    /// real crate's bounded rejection).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 16 * target + 64 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` running `body` over sampled inputs.
///
/// Supports the optional `#![proptest_config(expr)]` header used to set the
/// number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // Render inputs up front: the body may consume them.
                    let rendered_inputs = [
                        $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                    ]
                    .join(", ");
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {case} of {} failed:\n{err}\ninputs: {}",
                            stringify!($name),
                            rendered_inputs,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in -4i128..=4, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-4..=4).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u64>(), 2..5),
            s in crate::collection::hash_set(0u32..1000, 1..4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..4).contains(&s.len()));
        }

        #[test]
        fn tuples_sample(pair in (any::<u64>(), 1u32..=64)) {
            prop_assert!((1..=64).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 5);
        let mut b = crate::test_runner::TestRng::for_case("t", 5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case() {
        proptest! {
            fn always_fails(n in 0usize..4) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
