//! Value-generation strategies: ranges, `any::<T>()`, and tuples.

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Something that can produce values of a type from a [`TestRng`].
///
/// Unlike the real crate there is no value tree: a strategy is a
/// deterministic sampler plus an optional *shrink step*. On failure the
/// runner repeatedly substitutes [`Strategy::shrink_candidates`] values
/// that keep the test failing, walking each argument toward its minimum
/// (range start, zero, `false`) before reporting.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simpler values for a failing `value`, most aggressive
    /// first (e.g. the range minimum, then the midpoint, then the
    /// predecessor). An empty list means the value cannot shrink further.
    /// The default — used by strategies without a meaningful order, like
    /// tuples and collections — is to not shrink at all.
    fn shrink_candidates(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }

    fn shrink_candidates(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink_candidates(value)
    }
}

/// Candidates between `start` (the strategy minimum) and a failing `v`:
/// the minimum itself, the midpoint, and the predecessor. `$u` is the
/// same-width unsigned type, so the offset arithmetic cannot overflow.
macro_rules! int_shrink_toward {
    ($t:ty, $u:ty, $start:expr, $v:expr) => {{
        let (start, v) = ($start, $v);
        let mut out: Vec<$t> = Vec::new();
        if v != start {
            out.push(start);
            let diff = v.wrapping_sub(start) as $u;
            // Halving, a three-quarter point (so a failure boundary above
            // the midpoint still converges geometrically), then the
            // predecessor for the final off-by-ones.
            for frac in [diff / 2, diff / 2 + diff / 4, diff - 1] {
                let cand = start.wrapping_add(frac as $t);
                if cand != start && cand != v && !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        out
    }};
}

macro_rules! impl_int_range_strategies {
    ($(($t:ty, $u:ty)),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }

            fn shrink_candidates(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!($t, $u, self.start, *value)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u128;
                if span == u128::MAX {
                    return start.wrapping_add(rng.wide() as $t);
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }

            fn shrink_candidates(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!($t, $u, *self.start(), *value)
            }
        }
    )*};
}

impl_int_range_strategies!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (u128, u128),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (i128, u128),
    (isize, usize)
);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }

            fn shrink_candidates(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if self.start < *value {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2.0;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

impl_float_range_strategies!(f32, f64);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Simpler candidates for a failing value (toward zero / `false`).
    fn shrink(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.wide() as $t
            }

            fn shrink(value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value != 0 {
                    out.push(0);
                    let half = *value / 2; // truncates toward zero for signed
                    if half != 0 {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.wide() & 1 == 1
    }

    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }

    fn shrink(value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != 0.0 {
            out.push(0.0);
            let half = *value / 2.0;
            if half != 0.0 {
                out.push(half);
            }
        }
        out
    }
}

/// Strategy over the whole domain of `T` (returned by [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink_candidates(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
