//! Value-generation strategies: ranges, `any::<T>()`, and tuples.

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Something that can produce values of a type from a [`TestRng`].
///
/// Unlike the real crate there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u128;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u128;
                if span == u128::MAX {
                    return start.wrapping_add(rng.wide() as $t);
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategies!(f32, f64);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.wide() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.wide() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy over the whole domain of `T` (returned by [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
