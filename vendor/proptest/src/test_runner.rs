//! Test configuration, the per-case deterministic RNG, and case failure.

use std::fmt;

/// Property-test configuration (only the fields this workspace sets).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the exhaustive
        // whiteboard-protocol properties fast in CI while still sweeping a
        // meaningful instance space.
        Config { cases: 64 }
    }
}

/// A failed property case (carried by `prop_assert*` and explicit `fail`s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias used by the real crate for explicit rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Implementation detail of `proptest!`: pins the argument-tuple type of
/// the generated case closure to the sampled values' type, so the closure
/// body typechecks against concrete types (closure parameter inference
/// cannot resolve field projections on its own).
#[doc(hidden)]
pub fn constrain_case<T, F>(_anchor: &T, f: F) -> F
where
    F: Fn(T) -> Result<(), TestCaseError>,
{
    f
}

/// Deterministic per-case generator (SplitMix64 over a hashed stream id).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test identified by `id`.
    ///
    /// The stream depends on both, so different tests (and different cases)
    /// see unrelated inputs, and rerunning a binary reproduces failures
    /// exactly.
    pub fn for_case(id: &str, case: u64) -> Self {
        // FNV-1a over the id, then mix in the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in id.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x1_0000_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128-bit word (two stream words).
    pub fn wide(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `0..span` (`span > 0`).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        self.wide() % span
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
