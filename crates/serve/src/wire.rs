//! The `wb-serve/v1` wire protocol: line-delimited JSON over a local socket.
//!
//! Every request is one JSON object on one line; every reply is one or more
//! JSON lines. Replies to plain requests carry `"ok": true|false`; the
//! streaming `wait` op emits `"event"` lines (state transitions as they
//! happen) and terminates with a `done` / `failed` / `cancelled` event.
//! Malformed input of any shape — bad JSON, wrong types, unknown ops or
//! fields, oversized lines — yields a structured error object with a stable
//! [`code`](ErrorCode); the daemon **never** disconnects or dies over a bad
//! request.
//!
//! Requests:
//!
//! ```text
//! {"op":"hello"}
//! {"op":"submit","kind":"campaign","protocol":"mis:1","workload":"gnp","n":50,"trials":2000,"seed":5}
//! {"op":"status"}                     // all jobs
//! {"op":"status","job":3}             // one job
//! {"op":"wait","job":3}               // stream events until terminal
//! {"op":"cancel","job":3}
//! {"op":"shutdown"}                   // drain and exit
//! ```

use std::collections::BTreeMap;

use crate::jobs::{JobKind, JobSpec};
use wb_bench::json::Json;

/// Wire protocol identifier, sent back by `hello`.
pub const PROTOCOL: &str = "wb-serve/v1";

/// Stable machine-readable error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    BadJson,
    /// Valid JSON, but not a valid request (unknown op, missing or
    /// ill-typed field, unknown field).
    BadRequest,
    /// The request line exceeded the daemon's line-length cap.
    Oversized,
    /// The job queue is at capacity; resubmit later (backpressure).
    QueueFull,
    /// The daemon is draining and accepts no new jobs.
    ShuttingDown,
    /// No job with the given ID exists.
    UnknownJob,
    /// The job ran and failed to produce a report (e.g. unknown protocol).
    JobFailed,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Oversized => "oversized",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::JobFailed => "job_failed",
        }
    }
}

/// A structured request rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Build an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Render as the one-line `{"ok":false,...}` reply.
    pub fn to_line(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("ok".to_string(), Json::Bool(false));
        obj.insert("code".to_string(), Json::Str(self.code.as_str().into()));
        obj.insert("error".to_string(), Json::Str(self.message.clone()));
        Json::Obj(obj).to_string()
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Protocol handshake / liveness probe.
    Hello,
    /// Enqueue a job.
    Submit(Box<JobSpec>),
    /// Report job states (all jobs, or one).
    Status {
        /// Restrict to this job ID.
        job: Option<u64>,
    },
    /// Stream state events for one job until it is terminal.
    Wait {
        /// The job to watch.
        job: u64,
    },
    /// Cancel a queued (or best-effort running) job.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Refuse new jobs, drain the queue, then exit.
    Shutdown,
}

fn bad(message: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::BadRequest, message)
}

/// Read an integral `u64` from a JSON number or decimal string (large seeds
/// do not survive the trip through `f64`, so strings are accepted too).
fn get_u64(obj: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Str(s)) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|_| bad(format!("field '{key}' is not an unsigned integer"))),
        Some(Json::Num(x)) => {
            if x.fract() != 0.0 || *x < 0.0 || *x > 9e15 {
                return Err(bad(format!("field '{key}' is not an unsigned integer")));
            }
            Ok(Some(*x as u64))
        }
        Some(_) => Err(bad(format!("field '{key}' is not an unsigned integer"))),
    }
}

fn get_str(obj: &Json, key: &str) -> Result<Option<String>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(bad(format!("field '{key}' is not a string"))),
    }
}

fn get_bool(obj: &Json, key: &str) -> Result<Option<bool>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(bad(format!("field '{key}' is not a boolean"))),
    }
}

/// Fields a `submit` request may carry besides `op` and `kind`.
const SUBMIT_FIELDS: &[&str] = &[
    "protocol",
    "workload",
    "family",
    "n",
    "seed",
    "model",
    "trials",
    "sampler",
    "batch",
    "max_states",
    "dedup",
    "reduction",
    "par",
    "compare_naive",
    "faults",
    "deadline_ms",
];

/// Parse one request line. The line-length cap is enforced by the caller
/// (the daemon's reader), which maps overruns to [`ErrorCode::Oversized`].
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let doc = Json::parse(line.trim())
        .map_err(|e| WireError::new(ErrorCode::BadJson, format!("invalid JSON: {e}")))?;
    let Json::Obj(map) = &doc else {
        return Err(bad("request must be a JSON object"));
    };
    let op = get_str(&doc, "op")?.ok_or_else(|| bad("missing required field 'op'"))?;
    match op.as_str() {
        "hello" | "ping" => {
            reject_unknown(map, &[])?;
            Ok(Request::Hello)
        }
        "submit" => {
            let kind_name =
                get_str(&doc, "kind")?.ok_or_else(|| bad("submit requires field 'kind'"))?;
            let kind = JobKind::parse(&kind_name).map_err(|e| bad(e))?;
            reject_unknown(map, SUBMIT_FIELDS)?;
            let mut spec = JobSpec::new(kind);
            if let Some(v) = get_str(&doc, "protocol")? {
                spec.protocol = v;
            }
            if map.contains_key("workload") && map.contains_key("family") {
                return Err(bad("'workload' and 'family' are aliases; send only one"));
            }
            if let Some(v) = get_str(&doc, "workload")? {
                spec.workload = v;
            }
            if let Some(v) = get_str(&doc, "family")? {
                spec.workload = v;
            }
            if let Some(v) = get_u64(&doc, "n")? {
                spec.n = v as usize;
            }
            if let Some(v) = get_u64(&doc, "seed")? {
                spec.seed = v;
            }
            if let Some(v) = get_str(&doc, "model")? {
                spec.model = v;
            }
            if let Some(v) = get_u64(&doc, "trials")? {
                spec.trials = v;
            }
            if let Some(v) = get_str(&doc, "sampler")? {
                spec.sampler = v;
            }
            if let Some(v) = get_u64(&doc, "batch")? {
                if v == 0 {
                    return Err(bad("field 'batch' must be at least 1"));
                }
                spec.batch = Some(v as usize);
            }
            if let Some(v) = get_u64(&doc, "max_states")? {
                spec.max_states = v;
            }
            if let Some(v) = get_str(&doc, "dedup")? {
                spec.dedup = v;
            }
            if let Some(v) = get_str(&doc, "reduction")? {
                spec.reduction = v;
            }
            if let Some(v) = get_bool(&doc, "par")? {
                spec.par = v;
            }
            if let Some(v) = get_bool(&doc, "compare_naive")? {
                spec.compare_naive = v;
            }
            if let Some(v) = get_str(&doc, "faults")? {
                spec.faults = Some(v);
            }
            if let Some(v) = get_u64(&doc, "deadline_ms")? {
                if v == 0 {
                    return Err(bad("field 'deadline_ms' must be at least 1"));
                }
                spec.deadline_ms = Some(v);
            }
            Ok(Request::Submit(Box::new(spec)))
        }
        "status" => {
            reject_unknown(map, &["job"])?;
            Ok(Request::Status {
                job: get_u64(&doc, "job")?,
            })
        }
        "wait" => {
            reject_unknown(map, &["job"])?;
            let job = get_u64(&doc, "job")?.ok_or_else(|| bad("wait requires field 'job'"))?;
            Ok(Request::Wait { job })
        }
        "cancel" => {
            reject_unknown(map, &["job"])?;
            let job = get_u64(&doc, "job")?.ok_or_else(|| bad("cancel requires field 'job'"))?;
            Ok(Request::Cancel { job })
        }
        "shutdown" => {
            reject_unknown(map, &[])?;
            Ok(Request::Shutdown)
        }
        other => Err(bad(format!(
            "unknown op '{other}' (expected hello|submit|status|wait|cancel|shutdown)"
        ))),
    }
}

/// Strict field validation: a typo'd field is a `bad_request`, not a silent
/// no-op (a daemon that ignores `"trails": 10000000` would burn an hour of
/// worker time on the default instead of telling the client).
fn reject_unknown(map: &BTreeMap<String, Json>, allowed: &[&str]) -> Result<(), WireError> {
    for key in map.keys() {
        if key != "op" && key != "kind" && !allowed.contains(&key.as_str()) {
            return Err(bad(format!("unknown field '{key}'")));
        }
    }
    Ok(())
}

/// Serialize a [`JobSpec`] as the `submit` request line (the client side).
pub fn submit_line(spec: &JobSpec) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("op".to_string(), Json::Str("submit".into()));
    obj.insert("kind".to_string(), Json::Str(spec.kind.name().into()));
    obj.insert("protocol".to_string(), Json::Str(spec.protocol.clone()));
    obj.insert("workload".to_string(), Json::Str(spec.workload.clone()));
    obj.insert("n".to_string(), Json::Num(spec.n as f64));
    obj.insert("seed".to_string(), Json::Str(spec.seed.to_string()));
    obj.insert("model".to_string(), Json::Str(spec.model.clone()));
    obj.insert("trials".to_string(), Json::Str(spec.trials.to_string()));
    obj.insert("sampler".to_string(), Json::Str(spec.sampler.clone()));
    if let Some(batch) = spec.batch {
        obj.insert("batch".to_string(), Json::Num(batch as f64));
    }
    obj.insert(
        "max_states".to_string(),
        Json::Str(spec.max_states.to_string()),
    );
    obj.insert("dedup".to_string(), Json::Str(spec.dedup.clone()));
    if spec.reduction != "off" {
        obj.insert("reduction".to_string(), Json::Str(spec.reduction.clone()));
    }
    obj.insert("par".to_string(), Json::Bool(spec.par));
    obj.insert("compare_naive".to_string(), Json::Bool(spec.compare_naive));
    if let Some(faults) = &spec.faults {
        obj.insert("faults".to_string(), Json::Str(faults.clone()));
    }
    if let Some(deadline_ms) = spec.deadline_ms {
        obj.insert(
            "deadline_ms".to_string(),
            Json::Str(deadline_ms.to_string()),
        );
    }
    Json::Obj(obj).to_string()
}

/// Build an `{"ok":true,...}` reply line from `(key, value)` pairs.
pub fn ok_line(fields: Vec<(&str, Json)>) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("ok".to_string(), Json::Bool(true));
    for (k, v) in fields {
        obj.insert(k.to_string(), v);
    }
    Json::Obj(obj).to_string()
}

/// Build an `{"event":...}` stream line from `(key, value)` pairs.
pub fn event_line(event: &str, fields: Vec<(&str, Json)>) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("event".to_string(), Json::Str(event.into()));
    for (k, v) in fields {
        obj.insert(k.to_string(), v);
    }
    Json::Obj(obj).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_parse() {
        let mut spec = JobSpec::new(JobKind::Campaign);
        spec.protocol = "mis:1".into();
        spec.workload = "gnp".into();
        spec.n = 50;
        spec.trials = 2000;
        spec.seed = u64::MAX; // must survive: seeds travel as strings
        spec.batch = Some(64);
        spec.reduction = "dpor+symmetry".into();
        spec.faults = Some("crash:2".into());
        spec.deadline_ms = Some(1500);
        let line = submit_line(&spec);
        match parse_request(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(*parsed, spec),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn family_is_an_accepted_alias_for_workload() {
        let req = parse_request(r#"{"op":"submit","kind":"bulk","family":"kdeg-lin:2","n":100}"#)
            .unwrap();
        match req {
            Request::Submit(spec) => assert_eq!(spec.workload, "kdeg-lin:2"),
            other => panic!("{other:?}"),
        }
        let err =
            parse_request(r#"{"op":"submit","kind":"bulk","family":"tree","workload":"path"}"#)
                .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn malformed_requests_map_to_structured_codes() {
        assert_eq!(
            parse_request("{not json").unwrap_err().code,
            ErrorCode::BadJson
        );
        assert_eq!(
            parse_request("[1,2]").unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"op":"frobnicate"}"#).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"op":"submit"}"#).unwrap_err().code,
            ErrorCode::BadRequest,
        );
        assert_eq!(
            parse_request(r#"{"op":"submit","kind":"teleport"}"#)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        // Typo'd fields are rejected, not silently ignored.
        let err = parse_request(r#"{"op":"submit","kind":"campaign","trails":9}"#).unwrap_err();
        assert!(err.message.contains("'trails'"), "{err:?}");
        // Ill-typed fields name the field.
        let err = parse_request(r#"{"op":"submit","kind":"campaign","n":"forty"}"#).unwrap_err();
        assert!(err.message.contains("'n'"), "{err:?}");
        let err = parse_request(r#"{"op":"wait"}"#).unwrap_err();
        assert!(err.message.contains("'job'"), "{err:?}");
        // Fractional job ids are not ids.
        let err = parse_request(r#"{"op":"wait","job":1.5}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // A zero deadline is already expired — reject it at the wire.
        let err = parse_request(r#"{"op":"submit","kind":"bulk","deadline_ms":0}"#).unwrap_err();
        assert!(err.message.contains("'deadline_ms'"), "{err:?}");
        let err = parse_request(r#"{"op":"submit","kind":"bulk","faults":7}"#).unwrap_err();
        assert!(err.message.contains("'faults'"), "{err:?}");
    }

    #[test]
    fn error_lines_carry_stable_codes() {
        let line = WireError::new(ErrorCode::QueueFull, "queue at capacity (2)").to_line();
        assert_eq!(
            line,
            r#"{"code":"queue_full","error":"queue at capacity (2)","ok":false}"#
        );
    }

    #[test]
    fn ok_and_event_lines_are_canonical_json() {
        let line = ok_line(vec![
            ("job", Json::Num(3.0)),
            ("state", Json::Str("queued".into())),
        ]);
        assert_eq!(line, r#"{"job":3,"ok":true,"state":"queued"}"#);
        let line = event_line("done", vec![("job", Json::Num(3.0))]);
        assert_eq!(line, r#"{"event":"done","job":3}"#);
    }
}
