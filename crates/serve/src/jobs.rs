//! The deterministic job layer: one spec type and one entry point for every
//! execution tier.
//!
//! A job is an `explore`, `campaign`, or `bulk` run of any registry protocol
//! on any graph-family instance, and [`run_job`] renders its result as a
//! **deterministic** JSON report: no timestamps, no wall-clock rates, seeds
//! as strings, sorted keys. Both the `whiteboard` CLI (`--json` paths) and
//! the [`crate::daemon`] call this same function, which is what makes the
//! daemon's reports *byte-identical* to the CLI equivalents — the invariant
//! the serve test-suite pins.
//!
//! Timing is a property of one run on one machine, not of the result, so it
//! never appears here; callers that want throughput numbers measure around
//! [`run_job`] and print to stderr (as the CLI does).

use std::collections::BTreeMap;

use wb_bench::json::Json;
use wb_core::registry::{self, BoundOracle, BulkVisitor, ProtocolVisitor};
use wb_graph::Graph;
use wb_runtime::adapt::Promote;
use wb_runtime::bulk::{
    bulk_model, run_bulk, run_bulk_crashed, shuffled_schedule, BulkConfig, BulkProtocol,
};
use wb_runtime::exhaustive::{explore_parallel_with, explore_with, ExploreConfig, ReductionPolicy};
use wb_runtime::{DedupPolicy, FaultPlan, Model, Outcome, Protocol};
use wb_sim::{run_campaign_with, CampaignConfig, CampaignLabels, SamplerKind};

/// Which execution tier a job runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Exhaustive schedule-space exploration (`whiteboard explore`).
    Explore,
    /// Monte Carlo schedule campaign (`whiteboard campaign`).
    Campaign,
    /// One columnar bulk execution (`whiteboard bulk`).
    Bulk,
}

impl JobKind {
    /// Parse a wire/CLI kind name.
    pub fn parse(s: &str) -> Result<JobKind, String> {
        match s {
            "explore" => Ok(JobKind::Explore),
            "campaign" => Ok(JobKind::Campaign),
            "bulk" => Ok(JobKind::Bulk),
            other => Err(format!(
                "unknown job kind '{other}' (expected explore|campaign|bulk)"
            )),
        }
    }

    /// The wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Explore => "explore",
            JobKind::Campaign => "campaign",
            JobKind::Bulk => "bulk",
        }
    }
}

/// Everything needed to run one job. Field defaults mirror the CLI's.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Execution tier.
    pub kind: JobKind,
    /// Registry protocol spec, e.g. `"mis:1"`.
    pub protocol: String,
    /// Graph-family spec (the CLI's `--workload` / `--graph-family`).
    pub workload: String,
    /// Instance size.
    pub n: usize,
    /// Seed for the workload instance, bulk schedule, and campaign trials.
    pub seed: u64,
    /// Model override (`"native"` = the protocol's own model).
    pub model: String,
    /// Campaign trial count.
    pub trials: u64,
    /// Campaign sampler name.
    pub sampler: String,
    /// Sharding grain (campaign trial batch / bulk board shard size).
    pub batch: Option<usize>,
    /// Exploration state cap.
    pub max_states: u64,
    /// Exploration dedup policy name.
    pub dedup: String,
    /// Exploration reduction policy name (`off|dpor|symmetry|dpor+symmetry`).
    /// `"off"` keeps every report byte-identical to the unreduced schema.
    pub reduction: String,
    /// Explore across the thread pool.
    pub par: bool,
    /// Explore: also run the dedup-off walk and report the savings.
    pub compare_naive: bool,
    /// Fault-plan spec (`crash:f` / `lossy:f`; the CLI's `--faults`).
    /// `None` — and a plan with budget 0 — keep every report byte-identical
    /// to the fault-free schema.
    pub faults: Option<String>,
    /// Wall-clock deadline, in milliseconds from submission. A job still
    /// queued (or whose run outlasts the deadline) is cancelled with the
    /// structured `deadline_exceeded` error. `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A spec with the CLI's defaults for `kind` (the campaign tier
    /// defaults to MIS, the others to BUILD, exactly like the CLI).
    pub fn new(kind: JobKind) -> JobSpec {
        JobSpec {
            kind,
            protocol: match kind {
                JobKind::Campaign => "mis:1".into(),
                _ => "build:1".into(),
            },
            workload: "tree".into(),
            n: match kind {
                JobKind::Explore => 6,
                _ => 100,
            },
            seed: 1,
            model: "native".into(),
            trials: 10_000,
            sampler: "uniform".into(),
            batch: None,
            max_states: 1 << 20,
            dedup: "canonical".into(),
            reduction: "off".into(),
            par: false,
            compare_naive: false,
            faults: None,
            deadline_ms: None,
        }
    }
}

/// The rendered result of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobReport {
    /// Deterministic report object (sorted keys, no timing).
    pub json: Json,
    /// `"PASS"`, `"FAIL"`, or `"INCONCLUSIVE"` — the report's own verdict
    /// (a job whose protocol violates its oracle still *completes*; the
    /// verdict carries the violation).
    pub verdict: String,
}

impl JobReport {
    /// The canonical one-line rendering (what the CLI prints on stdout).
    pub fn line(&self) -> String {
        self.json.to_string()
    }
}

/// Parse a `--model` spec: `None` means "the protocol's native model"; the
/// free models also answer to their paper-style `f`-prefixed names.
pub fn parse_model(spec: &str) -> Result<Option<Model>, String> {
    Ok(match spec {
        "native" => None,
        "simasync" | "sasync" => Some(Model::SimAsync),
        "simsync" | "ssync" => Some(Model::SimSync),
        "async" | "fasync" => Some(Model::Async),
        "sync" | "fsync" => Some(Model::Sync),
        other => {
            return Err(format!(
                "unknown model '{other}' (expected native|simasync|simsync|async|sync|fasync|fsync)"
            ))
        }
    })
}

/// Parse a bulk-tier `--model` spec. All four models parse — the free
/// targets `sync`/`async` run simultaneous-native protocols through the
/// event-driven bulk scheduler — and the per-protocol feasibility check
/// (no demotions; the target must include the native model) happens after
/// registry resolution, via [`wb_runtime::bulk::bulk_model`].
pub fn parse_bulk_model(spec: &str) -> Result<Option<Model>, String> {
    parse_model(spec)
}

/// Parse a `--faults` spec into a plan that actually drops writes: `None`
/// in, or an inert plan (`crash:0` / `lossy:0`), comes out as `None`, so
/// every downstream report stays byte-identical to the fault-free path.
pub fn parse_faults(spec: Option<&str>) -> Result<Option<FaultPlan>, String> {
    match spec {
        None => Ok(None),
        Some(s) => {
            let plan: FaultPlan = s.parse()?;
            Ok(Some(plan).filter(|p| !p.is_inert()))
        }
    }
}

/// Parse a `--dedup` policy name.
pub fn parse_dedup(spec: &str) -> Result<DedupPolicy, String> {
    Ok(match spec {
        "canonical" | "fingerprint" | "fp" => DedupPolicy::Canonical,
        "exact" => DedupPolicy::Exact,
        "off" | "none" => DedupPolicy::Off,
        other => return Err(format!("unknown dedup policy '{other}'")),
    })
}

/// Parse a `--reduction` policy name and check it against the dedup policy:
/// both reductions are defined relative to the deduplicating explorer (DPOR
/// prunes transitions *because* they would merge; the symmetry quotient
/// canonicalizes the dedup key), so combining them with `--dedup off` is a
/// spec error, not a silent no-op.
pub fn parse_reduction(spec: &str, dedup: DedupPolicy) -> Result<ReductionPolicy, String> {
    let policy: ReductionPolicy = spec.parse()?;
    if policy != ReductionPolicy::Off && dedup == DedupPolicy::Off {
        return Err(format!(
            "--reduction {policy} requires state deduplication; drop --dedup off \
             (the reductions prune relative to the deduplicated state graph)"
        ));
    }
    Ok(policy)
}

/// Round to `digits` decimal places so derived ratios print as short,
/// stable literals (e.g. `19.57`, not sixteen digits of float noise).
fn round_to(x: f64, digits: u32) -> f64 {
    let scale = 10f64.powi(digits as i32);
    (x * scale).round() / scale
}

/// Run one job to completion and render its deterministic report.
///
/// `Err` means the job could not run at all (unknown protocol, bad model,
/// unbuildable workload); a run whose protocol violates its oracle is an
/// `Ok` report with verdict `"FAIL"`.
pub fn run_job(spec: &JobSpec) -> Result<JobReport, String> {
    match spec.kind {
        JobKind::Explore => run_explore(spec),
        JobKind::Campaign => run_campaign_job(spec),
        JobKind::Bulk => run_bulk_job(spec),
    }
}

fn make_workload(spec: &JobSpec) -> Result<Graph, String> {
    wb_core::workload::graph_family(&spec.workload, spec.n, spec.seed)
}

fn run_explore(spec: &JobSpec) -> Result<JobReport, String> {
    let g = make_workload(spec)?;
    let faults = parse_faults(spec.faults.as_deref())?;
    let dedup = parse_dedup(&spec.dedup)?;
    let config = ExploreConfig::default()
        .with_max_states(spec.max_states)
        .with_dedup(dedup)
        .with_faults(faults)
        .with_reduction(parse_reduction(&spec.reduction, dedup)?);

    struct ExploreJob<'a> {
        spec: &'a JobSpec,
        g: &'a Graph,
        config: ExploreConfig,
        faults: Option<FaultPlan>,
    }

    impl ProtocolVisitor for ExploreJob<'_> {
        type Result = JobReport;
        fn visit<P, B>(self, protocol: P, bind: B) -> JobReport
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let (spec, g) = (self.spec, self.g);
            let oracle = bind(g);
            let pred = |out: &Outcome<P::Output>, died: &[wb_graph::NodeId]| oracle(out, died);
            let report = if spec.par {
                explore_parallel_with(&protocol, g, &self.config, &pred)
            } else {
                explore_with(&protocol, g, &self.config, &pred)
            };
            let verdict = if !report.failures.is_empty() {
                "FAIL"
            } else if report.truncated {
                "INCONCLUSIVE"
            } else {
                "PASS"
            };
            let mut obj = BTreeMap::new();
            obj.insert("schema".into(), Json::Str("wb-serve/explore/v1".into()));
            obj.insert("protocol".into(), Json::Str(spec.protocol.clone()));
            obj.insert("workload".into(), Json::Str(spec.workload.clone()));
            obj.insert("n".into(), Json::Num(g.n() as f64));
            obj.insert("dedup".into(), Json::Str(spec.dedup.clone()));
            obj.insert("par".into(), Json::Bool(spec.par));
            obj.insert(
                "distinct_states".into(),
                Json::Num(report.distinct_states as f64),
            );
            obj.insert("terminals".into(), Json::Num(report.terminals as f64));
            obj.insert("merged".into(), Json::Num(report.merged as f64));
            obj.insert(
                "dedup_ratio".into(),
                Json::Num(round_to(report.dedup_ratio(), 3)),
            );
            obj.insert(
                "peak_frontier".into(),
                Json::Num(report.peak_frontier as f64),
            );
            obj.insert("truncated".into(), Json::Bool(report.truncated));
            obj.insert("failures".into(), Json::Num(report.failures.len() as f64));
            if let Some(plan) = &self.faults {
                obj.insert("faults".into(), Json::Str(plan.spec()));
            }
            // Present only for reduced explorations, mirroring "faults": the
            // default report stays byte-identical to the unreduced schema.
            if let Some(stats) = &report.reduction {
                obj.insert("reduction".into(), Json::Str(stats.policy.to_string()));
                let mut r = BTreeMap::new();
                r.insert("dpor_active".into(), Json::Bool(stats.dpor_active));
                r.insert("symmetry_active".into(), Json::Bool(stats.symmetry_active));
                r.insert("group_order".into(), Json::Num(stats.group_order as f64));
                r.insert(
                    "sleep_skipped".into(),
                    Json::Num(stats.sleep_skipped as f64),
                );
                r.insert(
                    "orbit_terminals".into(),
                    Json::Num(stats.orbit_terminals as f64),
                );
                r.insert("reexpansions".into(), Json::Num(stats.reexpansions as f64));
                r.insert("generated".into(), Json::Num(report.generated() as f64));
                obj.insert("reduction_stats".into(), Json::Obj(r));
            }
            if spec.compare_naive {
                let off = ExploreConfig::default()
                    .without_dedup()
                    .with_max_states(spec.max_states)
                    .with_faults(self.faults);
                let naive = explore_with(&protocol, g, &off, &pred);
                obj.insert(
                    "naive_states".into(),
                    Json::Num(naive.distinct_states as f64),
                );
                obj.insert("naive_schedules".into(), Json::Num(naive.terminals as f64));
                obj.insert("naive_truncated".into(), Json::Bool(naive.truncated));
                obj.insert(
                    "dedup_savings".into(),
                    Json::Num(round_to(
                        naive.distinct_states as f64 / report.distinct_states.max(1) as f64,
                        2,
                    )),
                );
            }
            obj.insert("verdict".into(), Json::Str(verdict.into()));
            JobReport {
                json: Json::Obj(obj),
                verdict: verdict.into(),
            }
        }
    }

    registry::dispatch(
        &spec.protocol,
        spec.n,
        ExploreJob {
            spec,
            g: &g,
            config,
            faults,
        },
    )
}

fn run_campaign_job(spec: &JobSpec) -> Result<JobReport, String> {
    let g = make_workload(spec)?;
    let target = parse_model(&spec.model)?;

    struct CampaignJob<'a> {
        spec: &'a JobSpec,
        g: &'a Graph,
        target: Option<Model>,
    }

    fn drive_native<P, C>(spec: &JobSpec, g: &Graph, p: &P, pred: C) -> Result<JobReport, String>
    where
        P: Protocol + Sync,
        P::Output: std::fmt::Debug,
        C: Fn(&Outcome<P::Output>, &[wb_graph::NodeId]) -> bool + Sync,
    {
        let sampler = SamplerKind::parse(&spec.sampler)?;
        let mut config = CampaignConfig::default()
            .with_trials(spec.trials)
            .with_seed(spec.seed)
            .with_sampler(sampler)
            .with_faults(parse_faults(spec.faults.as_deref())?);
        if let Some(batch) = spec.batch {
            config = config.with_batch(batch);
        }
        let labels = CampaignLabels {
            protocol: spec.protocol.clone(),
            model: p.model().to_string(),
            family: spec.workload.clone(),
        };
        let report = run_campaign_with(p, g, &config, &labels, &pred);
        Ok(JobReport {
            verdict: report.verdict().into(),
            json: report.to_json(),
        })
    }

    impl ProtocolVisitor for CampaignJob<'_> {
        type Result = Result<JobReport, String>;
        fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let (spec, g) = (self.spec, self.g);
            let oracle = bind(g);
            let pred = |out: &Outcome<P::Output>, died: &[wb_graph::NodeId]| oracle(out, died);
            match self.target {
                Some(m) if m != protocol.model() => {
                    if !m.includes(protocol.model()) {
                        return Err(format!(
                            "cannot demote {} protocol '{}' to {m}",
                            protocol.model(),
                            spec.protocol
                        ));
                    }
                    drive_native(spec, g, &Promote::new(protocol, m), pred)
                }
                _ => drive_native(spec, g, &protocol, pred),
            }
        }
    }

    registry::dispatch(
        &spec.protocol,
        spec.n,
        CampaignJob {
            spec,
            g: &g,
            target,
        },
    )?
}

fn run_bulk_job(spec: &JobSpec) -> Result<JobReport, String> {
    let g = make_workload(spec)?;
    let target = parse_bulk_model(&spec.model)?;
    let faults = parse_faults(spec.faults.as_deref())?;
    if let Some(plan) = &faults {
        if plan.kind() == wb_runtime::FaultKind::Lossy {
            return Err(format!(
                "the bulk tier executes crash-stop fault plans only, not {} (lossy \
                 suppression is an adaptive mid-run adversary; use `explore` or `campaign`)",
                plan.spec()
            ));
        }
    }

    struct BulkJob<'a> {
        spec: &'a JobSpec,
        g: &'a Graph,
        target: Option<Model>,
        faults: Option<FaultPlan>,
    }

    impl BulkVisitor for BulkJob<'_> {
        type Result = Result<JobReport, String>;
        fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
        where
            P: BulkProtocol + Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let (spec, g) = (self.spec, self.g);
            let n = g.n();
            let model = bulk_model(protocol.model(), self.target)
                .map_err(|e| format!("protocol '{}': {e}", spec.protocol))?;
            let schedule = shuffled_schedule(n, spec.seed);
            let config = BulkConfig::default().with_batch(spec.batch.unwrap_or(4096));
            let report = match &self.faults {
                Some(plan) => {
                    let victims = plan.sample_victims(n, spec.seed)?;
                    run_bulk_crashed(&protocol, g, &schedule, self.target, &config, &victims)
                }
                None => run_bulk(&protocol, g, &schedule, self.target, &config),
            }
            .expect("bulk model pre-validated");
            let oracle = bind(g);
            let verdict = if oracle(&report.outcome, &report.crashed) {
                "PASS"
            } else {
                "FAIL"
            };
            let mut obj = BTreeMap::new();
            obj.insert("schema".into(), Json::Str("wb-serve/bulk/v1".into()));
            obj.insert("protocol".into(), Json::Str(spec.protocol.clone()));
            obj.insert("model".into(), Json::Str(model.to_string()));
            obj.insert("family".into(), Json::Str(spec.workload.clone()));
            obj.insert("n".into(), Json::Num(n as f64));
            obj.insert("rounds".into(), Json::Num(report.rounds as f64));
            obj.insert(
                "shards".into(),
                Json::Num(report.board.shard_count() as f64),
            );
            obj.insert(
                "board_payload_bytes".into(),
                Json::Num(report.board.payload_bytes() as f64),
            );
            obj.insert(
                "board_index_bytes".into(),
                Json::Num(report.board.index_bytes() as f64),
            );
            obj.insert("total_bits".into(), Json::Num(report.total_bits() as f64));
            obj.insert(
                "max_message_bits".into(),
                Json::Num(report.max_message_bits() as f64),
            );
            if let Some(plan) = &self.faults {
                obj.insert("faults".into(), Json::Str(plan.spec()));
                obj.insert(
                    "died".into(),
                    Json::Arr(
                        report
                            .crashed
                            .iter()
                            .map(|&v| Json::Num(v as f64))
                            .collect(),
                    ),
                );
            }
            obj.insert("verdict".into(), Json::Str(verdict.into()));
            Ok(JobReport {
                json: Json::Obj(obj),
                verdict: verdict.into(),
            })
        }
    }

    registry::dispatch_bulk(
        &spec.protocol,
        spec.n,
        BulkJob {
            spec,
            g: &g,
            target,
            faults,
        },
    )?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_job_is_deterministic_and_passes() {
        let mut spec = JobSpec::new(JobKind::Explore);
        spec.protocol = "mis:1".into();
        spec.workload = "path".into();
        spec.n = 6;
        spec.compare_naive = true;
        let a = run_job(&spec).unwrap();
        let b = run_job(&spec).unwrap();
        assert_eq!(a, b, "explore reports are deterministic");
        assert_eq!(a.verdict, "PASS");
        let line = a.line();
        assert!(line.contains("\"distinct_states\":100"), "{line}");
        assert!(line.contains("\"naive_states\":1957"), "{line}");
        assert!(line.contains("\"dedup_savings\":19.57"), "{line}");
        assert!(!line.contains("wall"), "no timing in reports: {line}");
    }

    #[test]
    fn campaign_job_matches_direct_run_campaign_bytes() {
        let mut spec = JobSpec::new(JobKind::Campaign);
        spec.protocol = "mis:1".into();
        spec.workload = "path".into();
        spec.n = 6;
        spec.trials = 500;
        spec.seed = 7;
        let report = run_job(&spec).unwrap();
        assert_eq!(report.verdict, "PASS");
        assert!(report.line().contains("\"schema\":\"wb-sim/campaign/v1\""));
        assert_eq!(report.line(), run_job(&spec).unwrap().line());
    }

    #[test]
    fn bulk_job_reports_board_bytes() {
        let mut spec = JobSpec::new(JobKind::Bulk);
        spec.protocol = "build:2".into();
        spec.workload = "kdeg-lin:2".into();
        spec.n = 500;
        let report = run_job(&spec).unwrap();
        assert_eq!(report.verdict, "PASS");
        assert!(
            report.line().contains("\"rounds\":500"),
            "{}",
            report.line()
        );
        assert!(report.line().contains("\"board_payload_bytes\":"));
    }

    #[test]
    fn bulk_job_runs_free_targets_and_refuses_demotions() {
        let mut spec = JobSpec::new(JobKind::Bulk);
        spec.protocol = "mis:1".into();
        spec.workload = "gnp-lin:4".into();
        spec.n = 300;
        spec.model = "sync".into();
        let sync = run_job(&spec).unwrap();
        assert_eq!(sync.verdict, "PASS");
        assert!(
            sync.line().contains("\"model\":\"SYNC\""),
            "{}",
            sync.line()
        );
        spec.model = "async".into();
        let r#async = run_job(&spec).unwrap();
        assert_eq!(r#async.verdict, "PASS");
        assert!(
            r#async.line().contains("\"model\":\"ASYNC\""),
            "{}",
            r#async.line()
        );
        spec.model = "simasync".into();
        let err = run_job(&spec).unwrap_err();
        assert!(err.contains("cannot demote SIMSYNC"), "{err}");
        assert!(err.contains("mis:1"), "{err}");
    }

    #[test]
    fn jobs_reject_bad_specs_without_panicking() {
        let mut spec = JobSpec::new(JobKind::Explore);
        spec.protocol = "frobnicate".into();
        assert!(run_job(&spec).is_err());
        let mut spec = JobSpec::new(JobKind::Bulk);
        spec.protocol = "bfs".into();
        assert!(run_job(&spec).unwrap_err().contains("simultaneous"));
        let mut spec = JobSpec::new(JobKind::Campaign);
        spec.protocol = "mis:1".into();
        spec.model = "simasync".into();
        assert!(run_job(&spec).unwrap_err().contains("cannot demote"));
        let mut spec = JobSpec::new(JobKind::Campaign);
        spec.sampler = "bogus".into();
        spec.trials = 1;
        assert!(run_job(&spec).unwrap_err().contains("unknown sampler"));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [JobKind::Explore, JobKind::Campaign, JobKind::Bulk] {
            assert_eq!(JobKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(JobKind::parse("verify").is_err());
    }
}
