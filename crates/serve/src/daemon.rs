//! The `whiteboard serve` daemon: a bounded job queue and fixed worker pool
//! behind a Unix-domain socket speaking the [`wire`] protocol.
//!
//! Design invariants:
//!
//! - **Bounded admission.** The queue has a fixed capacity; when it is full a
//!   `submit` gets a structured `queue_full` error immediately — the daemon
//!   never blocks a client on admission.
//! - **No panics across the wire.** Every malformed, oversized, or otherwise
//!   hostile request maps to an `{"ok":false,"code":...}` line; the
//!   connection and the daemon both survive.
//! - **Deterministic reports.** Workers run [`run_job`], the same
//!   timing-free job layer the CLI's `--json` paths use, so a daemon report
//!   is byte-identical to the CLI equivalent.
//! - **Graceful shutdown.** `shutdown` flips the daemon into draining mode:
//!   new submits are refused with `shutting_down`, queued and running jobs
//!   complete, then the listener closes. No job ID is lost or reused.

use std::collections::BTreeMap;
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::jobs::{run_job, JobReport, JobSpec};
use crate::wire::{self, ErrorCode, Request, WireError};
use wb_bench::json::Json;
use wb_par::ClosableQueue;

/// Tuning knobs for a daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing jobs (>= 1).
    pub workers: usize,
    /// Queue capacity; `submit` beyond this returns `queue_full` (>= 1).
    pub queue_cap: usize,
    /// Longest accepted request line in bytes; longer lines return
    /// `oversized` without being buffered in full.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            max_line_bytes: 1 << 20,
        }
    }
}

/// Lifecycle of one job.
#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running,
    Done(JobReport),
    Failed(String),
    Cancelled,
    /// The job's wall-clock deadline passed before it produced a report;
    /// carries the structured `deadline_exceeded` error message.
    DeadlineExceeded(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
            JobState::DeadlineExceeded(_) => "deadline_exceeded",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_)
                | JobState::Failed(_)
                | JobState::Cancelled
                | JobState::DeadlineExceeded(_)
        )
    }
}

struct JobRecord {
    spec: JobSpec,
    state: JobState,
    /// Set by `cancel` while the job runs; the worker discards the result.
    cancel_requested: bool,
    /// Absolute expiry derived from the spec's `deadline_ms` at submission.
    deadline: Option<Instant>,
}

/// The structured error message for a blown deadline. `phase` locates where
/// in the job's lifecycle the wall clock ran out.
fn deadline_error(spec: &JobSpec, phase: &str) -> String {
    format!(
        "deadline of {}ms exceeded {phase}",
        spec.deadline_ms.unwrap_or(0)
    )
}

/// All mutable daemon state, guarded by one mutex + condvar pair. The
/// condvar broadcasts every state transition so `wait` streams can follow
/// along without polling the workers.
struct Registry {
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    /// `shutdown` received: refuse new submits, drain, exit.
    draining: bool,
}

struct Shared {
    registry: Mutex<Registry>,
    changed: Condvar,
    queue: ClosableQueue<u64>,
    /// Flips once the drain completes; connection handlers exit their read
    /// loops and the accept loop closes the listener.
    stop: AtomicBool,
    config: ServeConfig,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set_state(&self, id: u64, state: JobState) {
        let mut reg = self.lock();
        if let Some(rec) = reg.jobs.get_mut(&id) {
            rec.state = state;
        }
        drop(reg);
        self.changed.notify_all();
    }

    /// True once every accepted job reached a terminal state.
    fn drained(&self) -> bool {
        let reg = self.lock();
        reg.draining && reg.jobs.values().all(|r| r.state.is_terminal())
    }

    /// Expire every *queued* job whose deadline has passed. Running jobs are
    /// the workers' responsibility (checked before and after the run); this
    /// sweep keeps `wait` streams honest while all workers are busy.
    fn expire_due(&self) {
        let mut expired = false;
        {
            let mut reg = self.lock();
            let now = Instant::now();
            for rec in reg.jobs.values_mut() {
                if matches!(rec.state, JobState::Queued) && rec.deadline.is_some_and(|d| now >= d) {
                    rec.state =
                        JobState::DeadlineExceeded(deadline_error(&rec.spec, "while queued"));
                    expired = true;
                }
            }
        }
        if expired {
            self.changed.notify_all();
        }
    }
}

/// A bound daemon, ready to [`run`](Daemon::run).
pub struct Daemon {
    listener: UnixListener,
    path: PathBuf,
    config: ServeConfig,
}

impl Daemon {
    /// Bind the socket. Fails if the path is in use by a live daemon; a
    /// stale socket file (no listener behind it) is replaced.
    pub fn bind(path: &Path, config: ServeConfig) -> std::io::Result<Daemon> {
        assert!(config.workers >= 1, "workers must be >= 1");
        assert!(config.queue_cap >= 1, "queue_cap must be >= 1");
        match UnixListener::bind(path) {
            Ok(listener) => Ok(Daemon {
                listener,
                path: path.to_path_buf(),
                config,
            }),
            Err(e) if e.kind() == ErrorKind::AddrInUse => {
                if UnixStream::connect(path).is_ok() {
                    return Err(std::io::Error::new(
                        ErrorKind::AddrInUse,
                        format!("a daemon is already listening on {}", path.display()),
                    ));
                }
                std::fs::remove_file(path)?;
                let listener = UnixListener::bind(path)?;
                Ok(Daemon {
                    listener,
                    path: path.to_path_buf(),
                    config,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// The socket path this daemon is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serve until a `shutdown` request drains the queue. Returns the number
    /// of jobs accepted over the daemon's lifetime.
    pub fn run(self) -> std::io::Result<u64> {
        self.listener.set_nonblocking(true)?;
        let shared = Shared {
            registry: Mutex::new(Registry {
                jobs: BTreeMap::new(),
                next_id: 1,
                draining: false,
            }),
            changed: Condvar::new(),
            queue: ClosableQueue::bounded(self.config.queue_cap),
            stop: AtomicBool::new(false),
            config: self.config.clone(),
        };
        let shared = &shared;
        eprintln!(
            "[serve] listening on {} ({} workers, queue capacity {})",
            self.path.display(),
            self.config.workers,
            self.config.queue_cap
        );
        std::thread::scope(|scope| {
            for worker in 0..self.config.workers {
                scope.spawn(move || worker_loop(worker, shared));
            }
            // Accept loop. Nonblocking + short sleep so draining is noticed
            // promptly; each connection gets its own scoped handler thread.
            loop {
                match self.listener.accept() {
                    Ok((stream, _addr)) => {
                        scope.spawn(move || {
                            if let Err(e) = handle_connection(stream, shared) {
                                eprintln!("[serve] connection error: {e}");
                            }
                        });
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    }
                    Err(e) => eprintln!("[serve] accept error: {e}"),
                }
                shared.expire_due();
                if shared.drained() {
                    // Everything accepted has finished; tell handlers and
                    // workers to exit, then stop accepting.
                    shared.stop.store(true, Ordering::SeqCst);
                    shared.changed.notify_all();
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let _ = std::fs::remove_file(&self.path);
        let accepted = {
            let reg = shared.lock();
            reg.next_id - 1
        };
        eprintln!("[serve] drained; {accepted} job(s) served");
        Ok(accepted)
    }
}

fn worker_loop(worker: usize, shared: &Shared) {
    // `pop` blocks until an ID arrives and returns `None` only once the
    // queue is closed *and* empty — exactly the drain contract.
    while let Some(id) = shared.queue.pop() {
        let spec = {
            let mut reg = shared.lock();
            match reg.jobs.get_mut(&id) {
                // Cancelled (or already expired) while queued: skip.
                Some(rec) if rec.state.is_terminal() => continue,
                // The deadline ran out while the job sat in the queue.
                Some(rec) if rec.deadline.is_some_and(|d| Instant::now() >= d) => {
                    rec.state =
                        JobState::DeadlineExceeded(deadline_error(&rec.spec, "while queued"));
                    drop(reg);
                    shared.changed.notify_all();
                    continue;
                }
                Some(rec) => {
                    rec.state = JobState::Running;
                    rec.spec.clone()
                }
                None => continue,
            }
        };
        shared.changed.notify_all();
        eprintln!(
            "[serve] worker {worker}: job {id} running ({} {} on {} n={})",
            spec.kind.name(),
            spec.protocol,
            spec.workload,
            spec.n
        );
        let result = run_job(&spec);
        let (cancelled, expired) = {
            let reg = shared.lock();
            match reg.jobs.get(&id) {
                Some(r) => (
                    r.cancel_requested,
                    r.deadline.is_some_and(|d| Instant::now() >= d),
                ),
                None => (false, false),
            }
        };
        let state = if cancelled {
            // Best-effort running cancellation: the work already happened,
            // but the result is discarded and the job records as cancelled.
            JobState::Cancelled
        } else if expired {
            // The run outlasted the deadline; the report is discarded, the
            // job records the structured deadline error.
            JobState::DeadlineExceeded(deadline_error(&spec, "while running; result discarded"))
        } else {
            match result {
                Ok(report) => JobState::Done(report),
                Err(e) => JobState::Failed(e),
            }
        };
        eprintln!("[serve] worker {worker}: job {id} {}", state.name());
        shared.set_state(id, state);
    }
}

/// One client connection: read request lines, write reply lines, never die
/// over bad input. Returns when the client hangs up or the daemon stops.
fn handle_connection(stream: UnixStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = LineReader::new(shared.config.max_line_bytes);
    let mut read_half = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let line = match reader.next_line(&mut read_half) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()), // clean EOF
            Err(ReadError::Oversized(limit)) => {
                let err = WireError::new(
                    ErrorCode::Oversized,
                    format!("request line exceeds {limit} bytes"),
                );
                writeln!(writer, "{}", err.to_line())?;
                writer.flush()?;
                continue;
            }
            Err(ReadError::Timeout) => continue,
            Err(ReadError::Io(e)) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        // The connection stays open even across `shutdown`: the client may
        // still probe `status` (and gets `shutting_down` on new submits).
        // The handler exits via the stop flag once the drain completes.
        match wire::parse_request(&line) {
            Err(err) => {
                writeln!(writer, "{}", err.to_line())?;
                writer.flush()?;
            }
            Ok(req) => {
                handle_request(req, shared, &mut writer)?;
                writer.flush()?;
            }
        }
    }
}

fn handle_request(req: Request, shared: &Shared, writer: &mut impl Write) -> std::io::Result<()> {
    match req {
        Request::Hello => {
            let line = wire::ok_line(vec![
                ("protocol", Json::Str(wire::PROTOCOL.into())),
                ("workers", Json::Num(shared.config.workers as f64)),
                ("queue_cap", Json::Num(shared.config.queue_cap as f64)),
            ]);
            writeln!(writer, "{line}")
        }
        Request::Submit(spec) => {
            let reply = submit(shared, *spec);
            writeln!(writer, "{reply}")
        }
        Request::Status { job } => {
            let reply = status(shared, job);
            writeln!(writer, "{reply}")
        }
        Request::Wait { job } => wait(shared, job, writer),
        Request::Cancel { job } => {
            let reply = cancel(shared, job);
            writeln!(writer, "{reply}")
        }
        Request::Shutdown => {
            {
                let mut reg = shared.lock();
                reg.draining = true;
            }
            // Close the queue: workers finish what is queued, then exit.
            shared.queue.close();
            shared.changed.notify_all();
            eprintln!("[serve] shutdown requested; draining");
            let line = wire::ok_line(vec![("draining", Json::Bool(true))]);
            writeln!(writer, "{line}")
        }
    }
}

fn submit(shared: &Shared, spec: JobSpec) -> String {
    let mut reg = shared.lock();
    if reg.draining {
        return WireError::new(
            ErrorCode::ShuttingDown,
            "daemon is draining and accepts no new jobs",
        )
        .to_line();
    }
    // Reserve the ID only after the queue accepts: a rejected submit must
    // not burn an ID, or the "no lost job IDs" drain invariant breaks.
    let id = reg.next_id;
    match shared.queue.push(id) {
        Ok(()) => {
            reg.next_id += 1;
            let deadline = spec
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            reg.jobs.insert(
                id,
                JobRecord {
                    spec,
                    state: JobState::Queued,
                    cancel_requested: false,
                    deadline,
                },
            );
            drop(reg);
            shared.changed.notify_all();
            wire::ok_line(vec![
                ("job", Json::Num(id as f64)),
                ("state", Json::Str("queued".into())),
            ])
        }
        Err(wb_par::PushError::Full(_)) => WireError::new(
            ErrorCode::QueueFull,
            format!(
                "job queue at capacity ({}); retry after a job completes",
                shared.config.queue_cap
            ),
        )
        .to_line(),
        Err(wb_par::PushError::Closed(_)) => WireError::new(
            ErrorCode::ShuttingDown,
            "daemon is draining and accepts no new jobs",
        )
        .to_line(),
    }
}

fn job_fields(id: u64, rec: &JobRecord) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("job", Json::Num(id as f64)),
        ("state", Json::Str(rec.state.name().into())),
        ("kind", Json::Str(rec.spec.kind.name().into())),
        ("protocol", Json::Str(rec.spec.protocol.clone())),
    ];
    match &rec.state {
        JobState::Done(report) => {
            fields.push(("verdict", Json::Str(report.verdict.clone())));
            fields.push(("report", report.json.clone()));
        }
        JobState::Failed(e) => fields.push(("error", Json::Str(e.clone()))),
        JobState::DeadlineExceeded(e) => {
            fields.push(("code", Json::Str("deadline_exceeded".into())));
            fields.push(("error", Json::Str(e.clone())));
        }
        _ => {}
    }
    fields
}

fn status(shared: &Shared, job: Option<u64>) -> String {
    let reg = shared.lock();
    match job {
        Some(id) => match reg.jobs.get(&id) {
            Some(rec) => wire::ok_line(job_fields(id, rec)),
            None => WireError::new(ErrorCode::UnknownJob, format!("no job {id}")).to_line(),
        },
        None => {
            let jobs: Vec<Json> = reg
                .jobs
                .iter()
                .map(|(id, rec)| {
                    Json::Obj(
                        job_fields(*id, rec)
                            .into_iter()
                            // Full reports stay out of the roster; fetch one
                            // job by ID (or `wait`) to retrieve its report.
                            .filter(|(k, _)| *k != "report")
                            .map(|(k, v)| (k.to_string(), v))
                            .collect(),
                    )
                })
                .collect();
            wire::ok_line(vec![
                ("draining", Json::Bool(reg.draining)),
                ("queued", Json::Num(shared.queue.len() as f64)),
                ("jobs", Json::Arr(jobs)),
            ])
        }
    }
}

/// Stream `{"event":...}` lines for each state transition of `job` until it
/// is terminal; the final event carries the report (or error).
fn wait(shared: &Shared, job: u64, writer: &mut impl Write) -> std::io::Result<()> {
    let mut last_reported: Option<&'static str> = None;
    loop {
        // Inspect under the lock, producing an owned step; the guard is
        // moved into `wait_timeout` only when nothing changed.
        let step: Option<Option<(String, bool)>> = {
            let reg = shared.lock();
            let snapshot = match reg.jobs.get(&job) {
                None => None,
                Some(rec) => {
                    let name = rec.state.name();
                    if last_reported == Some(name) {
                        Some(None)
                    } else {
                        let terminal = rec.state.is_terminal();
                        let mut all = vec![("job", Json::Num(job as f64))];
                        if terminal {
                            let mut fields = job_fields(job, rec);
                            fields.retain(|(k, _)| *k != "state" && *k != "job");
                            all.extend(fields);
                        }
                        last_reported = Some(name);
                        Some(Some((wire::event_line(name, all), terminal)))
                    }
                }
            };
            match snapshot {
                Some(None) => {
                    if shared.stop.load(Ordering::SeqCst) {
                        // Drain finished but this job never terminated —
                        // impossible by construction, bail defensively.
                        None
                    } else {
                        // Block until any state changes (with a timeout so
                        // the stop flag is rechecked).
                        let _ = shared
                            .changed
                            .wait_timeout(reg, Duration::from_millis(200))
                            .unwrap_or_else(|e| e.into_inner());
                        Some(None)
                    }
                }
                other => other,
            }
        };
        match step {
            None => {
                let line = WireError::new(ErrorCode::UnknownJob, format!("no job {job}")).to_line();
                writeln!(writer, "{line}")?;
                return writer.flush();
            }
            Some(None) => continue,
            Some(Some((line, terminal))) => {
                writeln!(writer, "{line}")?;
                writer.flush()?;
                if terminal {
                    return Ok(());
                }
            }
        }
    }
}

fn cancel(shared: &Shared, job: u64) -> String {
    let mut reg = shared.lock();
    let Some(rec) = reg.jobs.get_mut(&job) else {
        return WireError::new(ErrorCode::UnknownJob, format!("no job {job}")).to_line();
    };
    let cancelled = match rec.state {
        JobState::Queued => {
            rec.state = JobState::Cancelled;
            true
        }
        JobState::Running => {
            // Best effort: the engines run to completion, but the result is
            // discarded and the job records as cancelled.
            rec.cancel_requested = true;
            true
        }
        _ => false,
    };
    let state = rec.state.name();
    drop(reg);
    shared.changed.notify_all();
    wire::ok_line(vec![
        ("job", Json::Num(job as f64)),
        ("cancelled", Json::Bool(cancelled)),
        ("state", Json::Str(state.into())),
    ])
}

enum ReadError {
    /// Line exceeded the cap; the rest (through the newline) was discarded.
    Oversized(usize),
    /// Read timed out with no complete line; caller rechecks the stop flag.
    Timeout,
    Io(std::io::Error),
}

/// Incremental line reader with a hard length cap. Unlike `BufRead::read_line`
/// it refuses to buffer an unbounded line: once `max` bytes arrive with no
/// newline it reports [`ReadError::Oversized`] and skips to the next line.
struct LineReader {
    buf: Vec<u8>,
    max: usize,
    /// Discarding the tail of an oversized line.
    skipping: bool,
}

impl LineReader {
    fn new(max: usize) -> Self {
        LineReader {
            buf: Vec::new(),
            max,
            skipping: false,
        }
    }

    fn next_line(&mut self, stream: &mut impl Read) -> Result<Option<String>, ReadError> {
        loop {
            // A complete line may already be buffered from a previous read.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                if self.skipping {
                    self.skipping = false;
                    continue;
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > self.max {
                self.buf.clear();
                self.skipping = true;
                return Err(ReadError::Oversized(self.max));
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() || self.skipping {
                        Ok(None)
                    } else {
                        // Final unterminated line.
                        let line = String::from_utf8_lossy(&self.buf).into_owned();
                        self.buf.clear();
                        Ok(Some(line))
                    };
                }
                Ok(n) => {
                    if self.skipping {
                        // Only keep bytes at and after a newline, if any.
                        match chunk[..n].iter().position(|&b| b == b'\n') {
                            Some(pos) => {
                                self.skipping = false;
                                self.buf.extend_from_slice(&chunk[pos + 1..n]);
                            }
                            None => {}
                        }
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ReadError::Timeout);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }
}
