//! # wb-serve — the multi-tenant simulation daemon
//!
//! `whiteboard serve` turns the shared-whiteboard machine into a daemon:
//! clients submit explore / campaign / bulk jobs for any registry protocol
//! over a line-delimited JSON protocol on a Unix-domain socket, receive job
//! IDs immediately, stream progress events, and fetch final reports that are
//! **byte-identical** to what the CLI's `--json` paths print.
//!
//! The crate is three layers:
//!
//! - [`jobs`] — the deterministic job layer: a [`jobs::JobSpec`] names a
//!   tier × protocol × model × graph family, [`jobs::run_job`] executes it
//!   and returns a timing-free canonical JSON report. The CLI `--json`
//!   paths call this directly, which is what makes daemon/CLI byte-identity
//!   a structural property instead of a test assertion.
//! - [`wire`] — the `wb-serve/v1` protocol: strict request parsing with
//!   stable structured error codes (`bad_json`, `bad_request`, `oversized`,
//!   `queue_full`, `shutting_down`, `unknown_job`, `job_failed`).
//! - [`daemon`] / [`client`] — the server (bounded queue, fixed worker pool
//!   on [`wb_par::ClosableQueue`], per-job cancellation, graceful drain) and
//!   a small synchronous client used by `whiteboard submit` and the tests.

pub mod client;
pub mod daemon;
pub mod jobs;
pub mod wire;

pub use client::{Client, ClientError};
pub use daemon::{Daemon, ServeConfig};
pub use jobs::{run_job, JobKind, JobReport, JobSpec};
pub use wire::{ErrorCode, WireError};
