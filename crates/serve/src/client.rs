//! A small synchronous client for the `wb-serve/v1` protocol, used by the
//! `whiteboard submit` / `status` / `shutdown` subcommands and the
//! integration tests.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::jobs::JobSpec;
use crate::wire;
use wb_bench::json::Json;

/// A connected client. One request/reply exchange at a time.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// A reply that was delivered but carries `"ok": false`.
#[derive(Clone, Debug)]
pub struct ServerError {
    /// The stable wire code (`queue_full`, `bad_request`, ...).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Anything that can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (daemon gone, connection refused, ...).
    Io(std::io::Error),
    /// The daemon replied, but with an error object.
    Server(ServerError),
    /// The daemon replied with something unparseable (protocol bug).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Server(e) => write!(f, "daemon refused request ({e})"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn parse_reply(line: &str) -> Result<Json, ClientError> {
    let doc = Json::parse(line.trim())
        .map_err(|e| ClientError::Protocol(format!("bad reply line: {e}")))?;
    match doc.get("ok") {
        Some(Json::Bool(true)) => Ok(doc),
        Some(Json::Bool(false)) => {
            let code = doc
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            Err(ClientError::Server(ServerError { code, message }))
        }
        _ => {
            if doc.get("event").is_some() {
                Ok(doc)
            } else {
                Err(ClientError::Protocol(format!("reply missing 'ok': {line}")))
            }
        }
    }
}

impl Client {
    /// Connect to a daemon socket.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn round_trip(&mut self, line: &str) -> Result<Json, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        parse_reply(&reply)
    }

    /// Handshake; returns the daemon's protocol string.
    pub fn hello(&mut self) -> Result<String, ClientError> {
        let reply = self.round_trip(r#"{"op":"hello"}"#)?;
        reply
            .get("protocol")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("hello reply missing 'protocol'".into()))
    }

    /// Submit a job; returns its ID.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        let reply = self.round_trip(&wire::submit_line(spec))?;
        reply
            .get("job")
            .and_then(Json::as_f64)
            .map(|x| x as u64)
            .ok_or_else(|| ClientError::Protocol("submit reply missing 'job'".into()))
    }

    /// Fetch the status object for one job, or the whole roster.
    pub fn status(&mut self, job: Option<u64>) -> Result<Json, ClientError> {
        let line = match job {
            Some(id) => format!(r#"{{"op":"status","job":{id}}}"#),
            None => r#"{"op":"status"}"#.to_string(),
        };
        self.round_trip(&line)
    }

    /// Block until `job` is terminal, returning the final event object
    /// (carrying `report` and `verdict` on success, `error` on failure).
    pub fn wait(&mut self, job: u64) -> Result<Json, ClientError> {
        writeln!(
            self.writer,
            "{}",
            format_args!(r#"{{"op":"wait","job":{job}}}"#)
        )?;
        self.writer.flush()?;
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol(
                    "daemon closed the connection mid-wait".into(),
                ));
            }
            let doc = parse_reply(&line)?;
            let Some(event) = doc.get("event").and_then(Json::as_str) else {
                return Err(ClientError::Protocol(format!(
                    "expected event line: {line}"
                )));
            };
            match event {
                "done" | "failed" | "cancelled" | "deadline_exceeded" => return Ok(doc),
                _ => continue,
            }
        }
    }

    /// Submit and wait in one call; returns the report JSON line and the
    /// verdict, exactly as the CLI `--json` path would print them.
    pub fn run(&mut self, spec: &JobSpec) -> Result<(String, String), ClientError> {
        let id = self.submit(spec)?;
        let event = self.wait(id)?;
        match event.get("event").and_then(Json::as_str) {
            Some("done") => {
                let report = event
                    .get("report")
                    .ok_or_else(|| ClientError::Protocol("done event missing 'report'".into()))?;
                let verdict = event
                    .get("verdict")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                Ok((report.to_string(), verdict))
            }
            Some("cancelled") => Err(ClientError::Server(ServerError {
                code: "job_failed".into(),
                message: format!("job {id} was cancelled"),
            })),
            Some("deadline_exceeded") => Err(ClientError::Server(ServerError {
                code: "deadline_exceeded".into(),
                message: event
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("deadline exceeded")
                    .to_string(),
            })),
            _ => Err(ClientError::Server(ServerError {
                code: "job_failed".into(),
                message: event
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("job failed")
                    .to_string(),
            })),
        }
    }

    /// Request cancellation; returns whether the daemon could cancel it.
    pub fn cancel(&mut self, job: u64) -> Result<bool, ClientError> {
        let reply = self.round_trip(&format!(r#"{{"op":"cancel","job":{job}}}"#))?;
        match reply.get("cancelled") {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(ClientError::Protocol(
                "cancel reply missing 'cancelled'".into(),
            )),
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(r#"{"op":"shutdown"}"#)?;
        Ok(())
    }

    /// Send a raw request line and return the raw reply line — for tests
    /// exercising the daemon's handling of malformed input.
    pub fn raw(&mut self, line: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        Ok(reply.trim_end().to_string())
    }
}
