//! Integration tests of the `whiteboard serve` daemon: concurrency,
//! byte-identity with the direct job layer, backpressure, hostile input,
//! cancellation, and graceful shutdown.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use wb_bench::json::Json;
use wb_serve::jobs::{run_job, JobKind, JobSpec};
use wb_serve::{Client, ClientError, Daemon, ServeConfig};

static NEXT_SOCKET: AtomicU64 = AtomicU64::new(0);

fn socket_path() -> PathBuf {
    let id = NEXT_SOCKET.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("wb-serve-test-{}-{id}.sock", std::process::id()))
}

/// Start a daemon on a fresh socket and run `body` against it; shuts the
/// daemon down (if the body didn't) and joins it before returning.
fn with_daemon<R>(config: ServeConfig, body: impl FnOnce(&PathBuf) -> R) -> R {
    let path = socket_path();
    let daemon = Daemon::bind(&path, config).expect("bind");
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    // The socket exists as soon as bind returns, so clients can connect
    // immediately; the accept loop picks them up.
    let result = body(&path);
    if let Ok(mut c) = Client::connect(&path) {
        let _ = c.shutdown();
    }
    handle.join().expect("daemon thread");
    let _ = std::fs::remove_file(&path);
    result
}

fn spec(kind: JobKind, protocol: &str, workload: &str, n: usize, seed: u64) -> JobSpec {
    let mut s = JobSpec::new(kind);
    s.protocol = protocol.into();
    s.workload = workload.into();
    s.n = n;
    s.seed = seed;
    if kind == JobKind::Campaign {
        s.trials = 200;
    }
    s
}

#[test]
fn hello_reports_protocol_and_limits() {
    with_daemon(ServeConfig::default(), |path| {
        let mut c = Client::connect(path).expect("connect");
        assert_eq!(c.hello().expect("hello"), "wb-serve/v1");
    });
}

/// The tentpole acceptance bar: >= 100 concurrent jobs, mixed kinds, across
/// more than three registry protocols, every report byte-identical to the
/// direct job layer (which the CLI `--json` paths also use).
#[test]
fn hundred_concurrent_mixed_jobs_match_the_cli_byte_for_byte() {
    // 9 protocol/kind pairs x 12 seeds => 108 jobs.
    let mut specs: Vec<JobSpec> = Vec::new();
    for seed in 1..=12u64 {
        for proto in ["mis:1", "build:1", "two-cliques", "edge-count"] {
            specs.push(spec(JobKind::Explore, proto, "path", 5, seed));
        }
        for proto in ["mis:1", "bfs", "connectivity"] {
            specs.push(spec(JobKind::Campaign, proto, "gnp", 20, seed));
        }
        for proto in ["mis:1", "build:2"] {
            specs.push(spec(JobKind::Bulk, proto, "kdeg-lin:2", 500, seed));
        }
    }
    assert!(specs.len() >= 100, "need >= 100 jobs, have {}", specs.len());

    // Expected bytes from the direct job layer, computed serially.
    let expected: Vec<String> = specs
        .iter()
        .map(|s| run_job(s).expect("direct job runs").line())
        .collect();

    let config = ServeConfig {
        workers: 4,
        queue_cap: 256,
        ..ServeConfig::default()
    };
    with_daemon(config, |path| {
        // 8 client threads submit-and-wait concurrently over the job mix.
        let got: Vec<(usize, String)> = std::thread::scope(|scope| {
            let specs = &specs;
            let mut handles = Vec::new();
            for chunk in 0..8usize {
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut c = Client::connect(path).expect("connect");
                    for (i, s) in specs.iter().enumerate() {
                        if i % 8 != chunk {
                            continue;
                        }
                        let (line, _verdict) = c.run(s).expect("job runs");
                        out.push((i, line));
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        assert_eq!(got.len(), specs.len());
        for (i, line) in got {
            assert_eq!(
                line, expected[i],
                "job {i} ({:?} {}) differs from the direct run",
                specs[i].kind, specs[i].protocol
            );
        }
    });
}

#[test]
fn full_queue_returns_queue_full_not_blocking() {
    // One worker, capacity 2: stuff the queue with slow-ish jobs, then keep
    // submitting until the structured backpressure error comes back.
    let config = ServeConfig {
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    };
    with_daemon(config, |path| {
        let mut c = Client::connect(path).expect("connect");
        let slow = spec(JobKind::Campaign, "mis:1", "gnp", 40, 1);
        let mut saw_queue_full = false;
        let mut accepted = Vec::new();
        for _ in 0..50 {
            match c.submit(&slow) {
                Ok(id) => accepted.push(id),
                Err(ClientError::Server(e)) => {
                    assert_eq!(e.code, "queue_full", "{e}");
                    saw_queue_full = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(saw_queue_full, "never hit backpressure");
        // Rejected submits cost nothing: every accepted ID still completes.
        for id in accepted {
            let event = c.wait(id).expect("accepted job completes");
            let ev = event.get("event").and_then(Json::as_str);
            assert_eq!(ev, Some("done"), "{event}");
        }
    });
}

/// Malformed, hostile, and oversized requests each get a structured error
/// and the daemon keeps serving — the "panic-proof front door" guarantee.
#[test]
fn malformed_requests_get_structured_errors_and_the_daemon_survives() {
    let config = ServeConfig {
        workers: 1,
        queue_cap: 8,
        max_line_bytes: 4096,
        ..ServeConfig::default()
    };
    with_daemon(config, |path| {
        let mut c = Client::connect(path).expect("connect");
        let battery: &[(&str, &str)] = &[
            ("{not json at all", "bad_json"),
            ("[1,2,3]", "bad_request"),
            ("\"just a string\"", "bad_request"),
            (r#"{"op":"frobnicate"}"#, "bad_request"),
            (r#"{"no_op_field":true}"#, "bad_request"),
            (r#"{"op":"submit"}"#, "bad_request"),
            (r#"{"op":"submit","kind":"teleport"}"#, "bad_request"),
            (
                r#"{"op":"submit","kind":"explore","n":"six"}"#,
                "bad_request",
            ),
            (
                r#"{"op":"submit","kind":"explore","trails":5}"#,
                "bad_request",
            ),
            (r#"{"op":"submit","kind":"explore","n":-4}"#, "bad_request"),
            (r#"{"op":"wait"}"#, "bad_request"),
            (r#"{"op":"wait","job":2.5}"#, "bad_request"),
            (r#"{"op":"status","job":999}"#, "unknown_job"),
            (r#"{"op":"cancel","job":999}"#, "unknown_job"),
        ];
        for (line, want_code) in battery {
            let reply = c.raw(line).expect("daemon still replies");
            assert!(
                reply.contains(&format!("\"code\":\"{want_code}\"")),
                "request {line:?}: expected {want_code}, got {reply}"
            );
            assert!(reply.contains("\"ok\":false"), "{reply}");
        }
        // An oversized line: rejected with `oversized`, rest discarded.
        let huge = format!(
            r#"{{"op":"submit","kind":"explore","protocol":"{}"}}"#,
            "x".repeat(8192)
        );
        let reply = c.raw(&huge).expect("daemon still replies");
        assert!(reply.contains("\"code\":\"oversized\""), "{reply}");
        // A submit whose *execution* fails (unknown protocol) is accepted,
        // then reported as failed — without hurting the daemon.
        let bad = spec(JobKind::Explore, "no-such-protocol", "path", 4, 1);
        let id = c.submit(&bad).expect("submit accepted");
        let event = c.wait(id).expect("job terminates");
        let ev = event.get("event").and_then(Json::as_str);
        assert_eq!(ev, Some("failed"), "{event}");
        // The daemon is still fully alive: a good job runs to completion.
        let good = spec(JobKind::Explore, "mis:1", "path", 4, 1);
        let (line, verdict) = c.run(&good).expect("daemon survived the battery");
        assert_eq!(verdict, "PASS");
        assert_eq!(line, run_job(&good).unwrap().line());
    });
}

#[test]
fn cancel_skips_queued_jobs_and_discards_running_results() {
    let config = ServeConfig {
        workers: 1,
        queue_cap: 16,
        ..ServeConfig::default()
    };
    with_daemon(config, |path| {
        let mut c = Client::connect(path).expect("connect");
        // Fill the single worker, then cancel a still-queued job.
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                c.submit(&spec(JobKind::Campaign, "mis:1", "gnp", 30, i + 1))
                    .expect("submit")
            })
            .collect();
        let last = *ids.last().unwrap();
        let cancelled = c.cancel(last).expect("cancel round-trips");
        if cancelled {
            let event = c.wait(last).expect("job terminates");
            let ev = event.get("event").and_then(Json::as_str);
            assert_eq!(ev, Some("cancelled"), "{event}");
        }
        // Cancelling an unknown job is a structured error, not a panic.
        match c.cancel(99_999) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, "unknown_job"),
            other => panic!("expected unknown_job, got {other:?}"),
        }
    });
}

/// Per-job wall-clock deadlines: a job still queued when its deadline
/// passes is cancelled with the structured `deadline_exceeded` error, while
/// a generous deadline changes nothing.
#[test]
fn deadlines_expire_queued_jobs_with_structured_errors() {
    // One worker: a slow job blocks the queue so the deadlined job behind
    // it deterministically expires before a worker ever picks it up.
    let config = ServeConfig {
        workers: 1,
        queue_cap: 16,
        ..ServeConfig::default()
    };
    with_daemon(config, |path| {
        let mut c = Client::connect(path).expect("connect");
        let mut slow = spec(JobKind::Campaign, "mis:1", "gnp", 60, 1);
        slow.trials = 10_000;
        let _slow_id = c.submit(&slow).expect("submit slow");

        let mut doomed = spec(JobKind::Explore, "mis:1", "path", 5, 2);
        doomed.deadline_ms = Some(50);
        let doomed_id = c.submit(&doomed).expect("submit doomed");

        let mut relaxed = spec(JobKind::Explore, "mis:1", "path", 5, 3);
        relaxed.deadline_ms = Some(60_000);
        let relaxed_id = c.submit(&relaxed).expect("submit relaxed");

        // The doomed job terminates with the structured deadline error.
        let event = c.wait(doomed_id).expect("doomed job terminates");
        assert_eq!(
            event.get("event").and_then(Json::as_str),
            Some("deadline_exceeded"),
            "{event}"
        );
        assert_eq!(
            event.get("code").and_then(Json::as_str),
            Some("deadline_exceeded"),
            "{event}"
        );
        let error = event.get("error").and_then(Json::as_str).unwrap_or("");
        assert!(
            error.contains("deadline of 50ms exceeded while queued"),
            "{event}"
        );
        // Terminal means terminal: an expired job cannot be cancelled.
        assert!(!c.cancel(doomed_id).expect("cancel round-trips"));
        // `Client::run` surfaces the expiry as a structured server error.
        match c.run(&doomed) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, "deadline_exceeded", "{e}"),
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
        // A deadline with slack is inert: same report as the direct layer.
        let event = c.wait(relaxed_id).expect("relaxed job completes");
        assert_eq!(
            event.get("event").and_then(Json::as_str),
            Some("done"),
            "{event}"
        );
        let mut no_deadline = relaxed.clone();
        no_deadline.deadline_ms = None;
        assert_eq!(
            event.get("report").expect("report").to_string(),
            run_job(&no_deadline).expect("direct job").line(),
            "a met deadline must not perturb the report"
        );
    });
}

/// A running job that outlasts its deadline has its result discarded and
/// records the structured `deadline_exceeded` error.
#[test]
fn deadlines_discard_results_of_overrunning_jobs() {
    let config = ServeConfig {
        workers: 1,
        queue_cap: 4,
        ..ServeConfig::default()
    };
    with_daemon(config, |path| {
        let mut c = Client::connect(path).expect("connect");
        let mut overrun = spec(JobKind::Campaign, "mis:1", "gnp", 60, 1);
        overrun.trials = 10_000;
        overrun.deadline_ms = Some(20);
        let id = c.submit(&overrun).expect("submit");
        let event = c.wait(id).expect("job terminates");
        assert_eq!(
            event.get("event").and_then(Json::as_str),
            Some("deadline_exceeded"),
            "{event}"
        );
        let error = event.get("error").and_then(Json::as_str).unwrap_or("");
        assert!(error.contains("deadline of 20ms exceeded"), "{event}");
        assert!(event.get("report").is_none(), "result must be discarded");
    });
}

/// Graceful shutdown: accepted jobs all complete (none lost), job IDs stay
/// unique and dense, and post-shutdown submits get `shutting_down`.
#[test]
fn graceful_shutdown_drains_without_losing_or_duplicating_jobs() {
    let config = ServeConfig {
        workers: 2,
        queue_cap: 64,
        ..ServeConfig::default()
    };
    let path = socket_path();
    let daemon = Daemon::bind(&path, config).expect("bind");
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));

    let mut c = Client::connect(&path).expect("connect");
    let mut ids = Vec::new();
    for i in 0..12u64 {
        ids.push(
            c.submit(&spec(JobKind::Explore, "mis:1", "path", 5, i + 1))
                .expect("submit"),
        );
    }
    // IDs are unique and dense from 1.
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate job IDs: {ids:?}");
    assert_eq!(sorted, (1..=12).collect::<Vec<_>>(), "{ids:?}");

    // Shutdown while work is still queued; the daemon must drain it all.
    let mut c2 = Client::connect(&path).expect("second client");
    c2.shutdown().expect("shutdown accepted");
    // New submits are refused with the structured draining error.
    match c2.submit(&spec(JobKind::Explore, "mis:1", "path", 4, 1)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "shutting_down", "{e}"),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    let accepted = handle.join().expect("daemon thread");
    assert_eq!(accepted, 12, "daemon lost track of accepted jobs");

    // Every job reached `done` before the daemon exited: re-binding a fresh
    // daemon proves the socket was released, and the drain loop in `run`
    // only exits once all jobs are terminal (asserted by construction, but
    // the wait above would have hung otherwise).
    assert!(!path.exists(), "socket file not removed after drain");
}
