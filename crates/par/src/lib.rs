//! Minimal data-parallel toolkit for the experiment harness.
//!
//! The benchmark binaries sweep grids of `(graph family × size × adversary
//! seed)` — embarrassingly parallel work. Rather than pull in a full
//! work-stealing runtime, this crate offers the few primitives the harness
//! needs, built on `std::thread::scope` (structured concurrency: no
//! `'static` bounds, joins on scope exit) and `parking_lot` locks, following
//! the project's HPC guides:
//!
//! - [`par_map`] — parallel map over a slice with deterministic output order;
//! - [`par_for_each`] — parallel consumption of an index range with a shared
//!   atomic cursor (dynamic load balancing for skewed work);
//! - [`par_reduce`] — map + associative fold;
//! - [`WorkQueue`] — a bounded queue with overflow reported to the producer
//!   instead of blocking or allocating without bound (backs the schedule
//!   explorer's next-frontier buffer in `wb_runtime::exhaustive`);
//! - [`par_drain`] — parallel consumption of a `WorkQueue` whose consumers
//!   may push follow-up work (for worklists whose size is not known up
//!   front, unlike [`par_for_each`]);
//! - [`num_threads`] — the pool width (respects `WB_THREADS`).
//!
//! All functions fall back to sequential execution for tiny inputs, so tests
//! and benches can call them unconditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads: `WB_THREADS` if set, else available parallelism,
/// else 4.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("WB_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Parallel map with output order matching input order.
///
/// `f` runs on borrowed items across `num_threads()` scoped workers pulling
/// indices from a shared cursor; results land in a pre-sized buffer guarded by
/// a single mutex (contention is negligible because `f` dominates).
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("slot filled"))
        .collect()
}

/// Run `f(i)` for every `i in 0..count` across the pool (no result order —
/// use for side-effecting sweeps that accumulate into their own sinks).
pub fn par_for_each(count: usize, f: impl Fn(usize) + Sync) {
    let threads = num_threads().min(count.max(1));
    if threads <= 1 || count <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Parallel map-reduce with an associative, commutative `fold`.
pub fn par_reduce<T: Sync, R: Send>(
    items: &[T],
    map: impl Fn(&T) -> R + Sync,
    identity: impl Fn() -> R + Sync,
    fold: impl Fn(R, R) -> R + Sync,
) -> R {
    let partials = Mutex::new(Vec::with_capacity(num_threads()));
    let cursor = AtomicUsize::new(0);
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(map).fold(identity(), &fold);
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut acc = identity();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    acc = fold(acc, map(&items[i]));
                }
                partials.lock().push(acc);
            });
        }
    });
    partials.into_inner().into_iter().fold(identity(), fold)
}

/// A bounded FIFO work queue shared between producers and consumers.
///
/// The capacity bound turns "the worklist exploded" from an OOM into a
/// recoverable signal: [`WorkQueue::push`] hands the item back instead of
/// growing past the bound, and the caller decides what truncation means
/// (the schedule explorer marks its report `truncated`).
#[derive(Debug)]
pub struct WorkQueue<T> {
    items: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// An empty queue holding at most `capacity` items (`capacity ≥ 1`).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a work queue needs capacity for work");
        WorkQueue {
            items: Mutex::new(VecDeque::new()),
            capacity,
        }
    }

    /// Enqueue `item`, or hand it back if the queue is at capacity.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut q = self.items.lock();
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        Ok(())
    }

    /// Dequeue the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        self.items.lock().pop_front()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }

    /// The capacity bound given at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drain the queue into a `Vec` (consumes the queue).
    pub fn into_vec(self) -> Vec<T> {
        self.items.into_inner().into()
    }
}

/// Consume `queue` across the pool until it is empty *and* every worker is
/// idle. `f` may push follow-up work back onto the queue (subject to the
/// capacity bound), which is what distinguishes this from [`par_for_each`]:
/// the item count need not be known up front.
///
/// Termination detection: a shared busy counter is incremented before `f`
/// runs and decremented after, so a momentarily empty queue does not stop
/// workers while a peer might still produce more work.
pub fn par_drain<T: Send>(queue: &WorkQueue<T>, f: impl Fn(T, &WorkQueue<T>) + Sync) {
    let threads = num_threads();
    if threads <= 1 {
        while let Some(item) = queue.pop() {
            f(item, queue);
        }
        return;
    }
    let busy = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Raise the busy flag *before* popping: a peer that sees an
                // empty queue while we hold an unprocessed item must keep
                // spinning, since our item may spawn follow-up work.
                busy.fetch_add(1, Ordering::SeqCst);
                match queue.pop() {
                    Some(item) => {
                        f(item, queue);
                        busy.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        busy.fetch_sub(1, Ordering::SeqCst);
                        if busy.load(Ordering::SeqCst) == 0 && queue.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map(&input, |&x| x * x);
        let expected: Vec<u64> = input.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_for_each_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        par_for_each(500, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_reduce_matches_sequential() {
        let input: Vec<u64> = (1..=2000).collect();
        let total = par_reduce(&input, |&x| x, || 0u64, |a, b| a + b);
        assert_eq!(total, 2000 * 2001 / 2);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Skewed workload: ensure completion (dynamic cursor prevents one
        // thread from owning all the heavy tail items).
        let input: Vec<u64> = (0..64).collect();
        let out = par_map(&input, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn work_queue_is_fifo_and_bounded() {
        let q: WorkQueue<u32> = WorkQueue::bounded(3);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.push(4), Err(4), "overflow hands the item back");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(5), Ok(()), "pop frees capacity");
        assert_eq!(q.into_vec(), vec![2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn work_queue_rejects_zero_capacity() {
        let _ = WorkQueue::<u8>::bounded(0);
    }

    #[test]
    fn par_drain_processes_follow_up_work() {
        // Each item n < 100 pushes n+1; starting from 0 every value in
        // 0..=100 must be processed exactly once per seed chain.
        let q = WorkQueue::bounded(1024);
        for seed in 0..8u64 {
            q.push(seed * 1000).unwrap();
        }
        let hits = Mutex::new(Vec::new());
        par_drain(&q, |item, queue| {
            hits.lock().push(item);
            if item % 1000 < 100 {
                queue.push(item + 1).unwrap();
            }
        });
        let mut seen = hits.into_inner();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..8u64)
            .flat_map(|s| (0..=100u64).map(move |i| s * 1000 + i))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn par_drain_terminates_under_overflow() {
        // Follow-up work that would grow forever if pushes never failed: the
        // capacity bound sheds the excess and the drain still terminates.
        let q = WorkQueue::bounded(4);
        q.push(0u64).unwrap();
        let processed = AtomicU64::new(0);
        par_drain(&q, |item, queue| {
            processed.fetch_add(1, Ordering::Relaxed);
            if item < 10_000 {
                // Two children per item: unbounded this is 2^14 items, but
                // at most 4 can ever be queued, so shedding is guaranteed.
                let _ = queue.push(item + 1);
                let _ = queue.push(item + 2);
            }
        });
        assert!(q.is_empty());
        assert!(processed.load(Ordering::Relaxed) >= 1);
    }
}
