//! Minimal data-parallel toolkit for the experiment harness.
//!
//! The benchmark binaries sweep grids of `(graph family × size × adversary
//! seed)` — embarrassingly parallel work. Rather than pull in a full
//! work-stealing runtime, this crate offers the few primitives the harness
//! needs, built on `std::thread::scope` (structured concurrency: no
//! `'static` bounds, joins on scope exit) and `parking_lot` locks, following
//! the project's HPC guides:
//!
//! - [`par_map`] — parallel map over a slice with deterministic output order;
//! - [`par_for_each`] — parallel consumption of an index range with a shared
//!   atomic cursor (dynamic load balancing for skewed work);
//! - [`par_reduce`] — map + associative fold;
//! - [`num_threads`] — the pool width (respects `WB_THREADS`).
//!
//! All functions fall back to sequential execution for tiny inputs, so tests
//! and benches can call them unconditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads: `WB_THREADS` if set, else available parallelism,
/// else 4.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("WB_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Parallel map with output order matching input order.
///
/// `f` runs on borrowed items across `num_threads()` scoped workers pulling
/// indices from a shared cursor; results land in a pre-sized buffer guarded by
/// a single mutex (contention is negligible because `f` dominates).
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("slot filled"))
        .collect()
}

/// Run `f(i)` for every `i in 0..count` across the pool (no result order —
/// use for side-effecting sweeps that accumulate into their own sinks).
pub fn par_for_each(count: usize, f: impl Fn(usize) + Sync) {
    let threads = num_threads().min(count.max(1));
    if threads <= 1 || count <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Parallel map-reduce with an associative, commutative `fold`.
pub fn par_reduce<T: Sync, R: Send>(
    items: &[T],
    map: impl Fn(&T) -> R + Sync,
    identity: impl Fn() -> R + Sync,
    fold: impl Fn(R, R) -> R + Sync,
) -> R {
    let partials = Mutex::new(Vec::with_capacity(num_threads()));
    let cursor = AtomicUsize::new(0);
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(map).fold(identity(), &fold);
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut acc = identity();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    acc = fold(acc, map(&items[i]));
                }
                partials.lock().push(acc);
            });
        }
    });
    partials.into_inner().into_iter().fold(identity(), fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map(&input, |&x| x * x);
        let expected: Vec<u64> = input.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_for_each_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        par_for_each(500, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_reduce_matches_sequential() {
        let input: Vec<u64> = (1..=2000).collect();
        let total = par_reduce(&input, |&x| x, || 0u64, |a, b| a + b);
        assert_eq!(total, 2000 * 2001 / 2);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Skewed workload: ensure completion (dynamic cursor prevents one
        // thread from owning all the heavy tail items).
        let input: Vec<u64> = (0..64).collect();
        let out = par_map(&input, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
