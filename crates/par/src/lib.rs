//! Minimal data-parallel toolkit for the experiment harness.
//!
//! The benchmark binaries sweep grids of `(graph family × size × adversary
//! seed)` — embarrassingly parallel work. Rather than pull in a full
//! work-stealing runtime, this crate offers the few primitives the harness
//! needs, built on `std::thread::scope` (structured concurrency: no
//! `'static` bounds, joins on scope exit) and `parking_lot` locks, following
//! the project's HPC guides:
//!
//! - [`par_map`] — parallel map over a slice with deterministic output order;
//! - [`par_map_vec`] — the owning variant: items move into the workers (for
//!   consuming maps like the schedule explorer's frontier expansion);
//! - [`par_for_each`] — parallel consumption of an index range with a shared
//!   atomic cursor (dynamic load balancing for skewed work);
//! - [`par_reduce`] — map + associative fold;
//! - [`par_batch_reduce`] — index-range reduction in contiguous batches with
//!   a commutative-monoid merge (the Monte Carlo campaign runner's
//!   aggregation primitive);
//! - [`par_stripes`] — striped writers: fill independent output shards in
//!   parallel and reassemble them in stripe order (the bulk tier's sharded
//!   whiteboard appends through this);
//! - [`WorkQueue`] — a bounded queue with overflow reported to the producer
//!   instead of blocking or allocating without bound;
//! - [`ClosableQueue`] — the long-lived sibling of [`WorkQueue`]: consumers
//!   *block* until work arrives, producers still get overflow handed back,
//!   and [`ClosableQueue::close`] drains gracefully (no new work accepted,
//!   queued work still consumed) — the dispatch spine of the `whiteboard
//!   serve` worker pool;
//! - [`par_drain`] — parallel consumption of a `WorkQueue` whose consumers
//!   may push follow-up work (for worklists whose size is not known up
//!   front, unlike [`par_for_each`]);
//! - [`StripedSet`] — a sharded concurrent hash set striped by a
//!   caller-supplied key, so many workers can insert without funneling
//!   through one lock (backs the schedule explorer's seen-set, striped by
//!   fingerprint prefix);
//! - [`StripedMap`] — the mask-valued sibling of [`StripedSet`]: each key
//!   carries a `u64` bitmask that arrivals intersect, reporting what they
//!   shrank (the sleep-set DPOR layer's seen-structure, where the mask is
//!   the sleep set a state was reached with);
//! - [`num_threads`] — the pool width (respects `WB_THREADS`).
//!
//! All functions fall back to sequential execution for tiny inputs, so tests
//! and benches can call them unconditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads: `WB_THREADS` if set, else available parallelism,
/// else 4.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("WB_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Parallel map with output order matching input order.
///
/// `f` runs on borrowed items across `num_threads()` scoped workers pulling
/// indices from a shared cursor; results land in a pre-sized buffer guarded by
/// a single mutex (contention is negligible because `f` dominates).
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("slot filled"))
        .collect()
}

/// Parallel map that moves each item into `f` (output order matches input
/// order). The owning sibling of [`par_map`], for pipelines whose stages
/// consume their input — e.g. the schedule explorer expands each frontier
/// engine destructively (step → undo branching) and moves survivors into
/// the next frontier without a copy.
///
/// Work distribution is dynamic (shared atomic cursor); sources and results
/// live in per-slot locks, so two workers never contend — the cursor hands
/// each index to exactly one worker, and each slot lock is touched twice
/// (take, store) without ever funneling through a shared structure. No
/// `Clone` bound and no `unsafe` needed.
pub fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let source: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = source[i].lock().take().expect("each slot taken once");
                let r = f(item);
                *slots[i].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot filled"))
        .collect()
}

/// Fill `stripes` independent output stripes in parallel, returning them in
/// stripe order: stripe `s` is produced by `fill(s)`, exactly once.
///
/// This is the **striped writer** primitive behind the bulk tier's sharded
/// whiteboard: each stripe is an append-only shard owned by exactly one
/// worker at a time, so writers never contend on a shared lock, and
/// reassembling the stripes in index order recovers a deterministic global
/// append order regardless of which worker produced which stripe when.
/// Work distribution is dynamic (shared atomic cursor), so skewed stripes
/// (one shard of huge messages) do not serialize the sweep.
///
/// Falls back to a sequential loop for a single stripe or a width-1 pool.
pub fn par_stripes<T: Send>(stripes: usize, fill: impl Fn(usize) -> T + Sync) -> Vec<T> {
    par_stripes_with(num_threads(), stripes, fill)
}

/// [`par_stripes`] with an explicit pool width instead of [`num_threads`].
///
/// The result is identical for every `threads ≥ 1` — stripe `s` is always
/// `fill(s)`, returned in stripe order — so callers that must *prove*
/// thread-count insensitivity (the bulk tier's determinism tests) can sweep
/// the width without touching the `WB_THREADS` environment variable.
pub fn par_stripes_with<T: Send>(
    threads: usize,
    stripes: usize,
    fill: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(stripes.max(1));
    if threads <= 1 || stripes <= 1 {
        return (0..stripes).map(fill).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..stripes).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let s = cursor.fetch_add(1, Ordering::Relaxed);
                if s >= stripes {
                    break;
                }
                let r = fill(s);
                *slots[s].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("stripe filled"))
        .collect()
}

/// Run `f(i)` for every `i in 0..count` across the pool (no result order —
/// use for side-effecting sweeps that accumulate into their own sinks).
pub fn par_for_each(count: usize, f: impl Fn(usize) + Sync) {
    let threads = num_threads().min(count.max(1));
    if threads <= 1 || count <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Parallel reduction over the index range `0..total`, processed in
/// contiguous batches of `batch` indices.
///
/// `map` receives each batch as a `Range<usize>` and returns a partial
/// result; partials are combined with `fold`, which — together with
/// `identity` — must form a **commutative monoid**: batches are handed to
/// workers through a dynamic cursor and folded in whatever order they
/// finish, so only an order-insensitive `fold` yields a deterministic
/// result. This is the aggregation primitive behind the Monte Carlo
/// campaign runner (`wb-sim`): millions of trials, sharded into batches,
/// each batch reduced locally, partial statistics merged without any
/// cross-thread ordering.
///
/// Falls back to a sequential fold when the pool is width 1 or there is at
/// most one batch.
pub fn par_batch_reduce<R: Send>(
    total: usize,
    batch: usize,
    map: impl Fn(std::ops::Range<usize>) -> R + Sync,
    identity: impl Fn() -> R + Sync,
    fold: impl Fn(R, R) -> R + Sync,
) -> R {
    assert!(batch >= 1, "batches must hold at least one index");
    let batches = total.div_ceil(batch.max(1));
    let range_of = |b: usize| (b * batch)..((b * batch + batch).min(total));
    let threads = num_threads().min(batches.max(1));
    if threads <= 1 || batches <= 1 {
        return (0..batches)
            .map(|b| map(range_of(b)))
            .fold(identity(), fold);
    }
    let cursor = AtomicUsize::new(0);
    let partials = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut acc = identity();
                loop {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    if b >= batches {
                        break;
                    }
                    acc = fold(acc, map(range_of(b)));
                }
                partials.lock().push(acc);
            });
        }
    });
    partials.into_inner().into_iter().fold(identity(), fold)
}

/// Parallel map-reduce with an associative, commutative `fold`.
pub fn par_reduce<T: Sync, R: Send>(
    items: &[T],
    map: impl Fn(&T) -> R + Sync,
    identity: impl Fn() -> R + Sync,
    fold: impl Fn(R, R) -> R + Sync,
) -> R {
    let partials = Mutex::new(Vec::with_capacity(num_threads()));
    let cursor = AtomicUsize::new(0);
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(map).fold(identity(), &fold);
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut acc = identity();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    acc = fold(acc, map(&items[i]));
                }
                partials.lock().push(acc);
            });
        }
    });
    partials.into_inner().into_iter().fold(identity(), fold)
}

/// A bounded FIFO work queue shared between producers and consumers.
///
/// The capacity bound turns "the worklist exploded" from an OOM into a
/// recoverable signal: [`WorkQueue::push`] hands the item back instead of
/// growing past the bound, and the caller decides what truncation means
/// (the differential harness drains its graph sweeps through one via
/// [`par_drain`]).
#[derive(Debug)]
pub struct WorkQueue<T> {
    items: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// An empty queue holding at most `capacity` items (`capacity ≥ 1`).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a work queue needs capacity for work");
        WorkQueue {
            items: Mutex::new(VecDeque::new()),
            capacity,
        }
    }

    /// Enqueue `item`, or hand it back if the queue is at capacity.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut q = self.items.lock();
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        Ok(())
    }

    /// Dequeue the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        self.items.lock().pop_front()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }

    /// The capacity bound given at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drain the queue into a `Vec` (consumes the queue).
    pub fn into_vec(self) -> Vec<T> {
        self.items.into_inner().into()
    }
}

/// Why a [`ClosableQueue::push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back (backpressure).
    Full(T),
    /// The queue was closed; the item is handed back (shutdown).
    Closed(T),
}

impl<T> PushError<T> {
    /// Recover the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// A bounded MPMC queue with *blocking* consumers and graceful close.
///
/// [`WorkQueue`] serves worklists that drain to empty and stop; a
/// long-running service needs the complementary shape: worker threads that
/// sleep until work arrives and a shutdown protocol that refuses new work
/// while still finishing everything already accepted. Semantics:
///
/// - [`push`](Self::push) never blocks: at capacity it hands the item back
///   as [`PushError::Full`] (the caller turns that into a structured
///   `queue_full` rejection), after [`close`](Self::close) as
///   [`PushError::Closed`].
/// - [`pop`](Self::pop) blocks until an item is available, and returns
///   `None` only once the queue is *closed and empty* — so closing drains:
///   every accepted item is still consumed, then all workers wake and exit.
///
/// Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot` stub
/// deliberately carries no condvar).
#[derive(Debug)]
pub struct ClosableQueue<T> {
    inner: std::sync::Mutex<ClosableInner<T>>,
    ready: std::sync::Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct ClosableInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> ClosableQueue<T> {
    /// An open queue holding at most `capacity` items (`capacity ≥ 1`).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a work queue needs capacity for work");
        ClosableQueue {
            inner: std::sync::Mutex::new(ClosableInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: std::sync::Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClosableInner<T>> {
        // A worker that panicked mid-`pop` poisons nothing we care about —
        // the queue state itself is always consistent — so recover the
        // guard instead of propagating the poison.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue `item`; refuses (handing the item back) when full or closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut q = self.lock();
        if q.closed {
            return Err(PushError::Closed(item));
        }
        if q.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        q.items.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available; `None` once closed *and* empty.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.lock();
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking variant of [`pop`](Self::pop): `Ok(item)` if one was
    /// queued, `Err(closed)` otherwise (so pollers can distinguish "empty
    /// for now" from "drained and closed").
    pub fn try_pop(&self) -> Result<T, bool> {
        let mut q = self.lock();
        match q.items.pop_front() {
            Some(item) => Ok(item),
            None => Err(q.closed),
        }
    }

    /// Refuse all future pushes; queued items remain consumable. Wakes
    /// every blocked consumer so idle workers observe the close.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// The capacity bound given at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A pass-through [`Hasher`] for keys that are already uniformly mixed
/// (fingerprints, digests): the written words are folded with xor/rotate
/// and returned as-is, skipping SipHash entirely. Do **not** use it for
/// attacker-controlled or structured keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct PassthroughHasher {
    state: u64,
}

impl Hasher for PassthroughHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rarely hit for digest keys): fold bytes in.
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.state = self.state.rotate_left(9) ^ u64::from_le_bytes(w);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = self.state.rotate_left(9) ^ v;
    }

    fn write_u128(&mut self, v: u128) {
        // Low word carries a digest's already-mixed entropy; the high word
        // is folded so both halves participate.
        self.state = self.state.rotate_left(9) ^ (v as u64) ^ ((v >> 64) as u64).rotate_left(32);
    }
}

/// `BuildHasher` shorthand for [`PassthroughHasher`].
pub type PassthroughBuildHasher = BuildHasherDefault<PassthroughHasher>;

/// A concurrent hash set striped across independently locked shards.
///
/// Membership-test-and-insert is the one operation a deduplicating parallel
/// search needs, and a single `Mutex<HashSet>` turns it into a global
/// serialization point. `StripedSet` keys each value to one of `2^k` shards
/// by a caller-supplied 64-bit key (the schedule explorer passes a
/// fingerprint prefix), so inserts from different shards proceed in
/// parallel and contention falls by the shard count. The caller must use a
/// well-distributed key and use it consistently for equal values — equal
/// values with different keys would land in different shards and both
/// "insert".
///
/// The third type parameter selects the per-shard hasher; pre-mixed keys
/// (fingerprints) should pass [`PassthroughBuildHasher`] to skip SipHash.
#[derive(Debug)]
pub struct StripedSet<T, S = std::collections::hash_map::RandomState> {
    shards: Box<[Mutex<HashSet<T, S>>]>,
    mask: u64,
}

impl<T: Eq + Hash, S: BuildHasher + Default> StripedSet<T, S> {
    /// A set striped over `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        Self::with_shard_capacity(shards, 0)
    }

    /// Like [`Self::new`], pre-reserving `capacity` slots per shard — a
    /// pre-sized set does not reallocate on insert until a shard outgrows
    /// its reservation (the allocation-regression test relies on this).
    pub fn with_shard_capacity(shards: usize, capacity: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        StripedSet {
            shards: (0..n)
                .map(|_| Mutex::new(HashSet::with_capacity_and_hasher(capacity, S::default())))
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Insert `value` into the shard selected by `key`; returns whether the
    /// value was new. Locks only that one shard.
    pub fn insert(&self, key: u64, value: T) -> bool {
        self.shards[(key & self.mask) as usize].lock().insert(value)
    }

    /// Whether `value` is present (under the same `key` it was inserted with).
    pub fn contains(&self, key: u64, value: &T) -> bool {
        self.shards[(key & self.mask) as usize]
            .lock()
            .contains(value)
    }

    /// Total number of values across all shards (locks each shard in turn —
    /// exact only when quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// The number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// Result of a [`StripedMap::intersect`]: what happened to the stored mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskMerge {
    /// The key was absent; the arrival's mask was stored as-is.
    Inserted,
    /// The stored mask was already a subset of the arrival's — nothing
    /// changed.
    Subset,
    /// The intersection strictly shrank the stored mask; the payload is the
    /// set of bits that were cleared (`old & !arrival`).
    Shrunk(u64),
}

/// A sharded concurrent map from keys to `u64` bitmasks whose single update
/// operation is *intersection*: arrivals can only clear bits, so the stored
/// mask converges monotonically toward the intersection of every arrival.
///
/// This is the seen-structure sleep-set DPOR needs: a configuration's entry
/// holds the intersection of the sleep sets it was reached with, and a
/// [`MaskMerge::Shrunk`] result names exactly the transitions that earlier
/// visits wrongly skipped and must now be re-expanded. Sharding and key
/// discipline match [`StripedSet`].
#[derive(Debug)]
pub struct StripedMap<K, S = std::collections::hash_map::RandomState> {
    shards: Box<[Mutex<HashMap<K, u64, S>>]>,
    mask: u64,
}

impl<K: Eq + Hash, S: BuildHasher + Default> StripedMap<K, S> {
    /// A map striped over `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        StripedMap {
            shards: (0..n)
                .map(|_| Mutex::new(HashMap::with_hasher(S::default())))
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Intersect the mask stored under `k` (in the shard selected by `key`)
    /// with `arrival`, inserting `arrival` if the key is absent. Locks only
    /// that one shard. See [`MaskMerge`] for the three outcomes.
    pub fn intersect(&self, key: u64, k: K, arrival: u64) -> MaskMerge {
        match self.shards[(key & self.mask) as usize].lock().entry(k) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(arrival);
                MaskMerge::Inserted
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let old = *slot.get();
                let new = old & arrival;
                if new == old {
                    MaskMerge::Subset
                } else {
                    slot.insert(new);
                    MaskMerge::Shrunk(old & !arrival)
                }
            }
        }
    }

    /// Total number of keys across all shards (locks each shard in turn —
    /// exact only when quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

/// Consume `queue` across the pool until it is empty *and* every worker is
/// idle. `f` may push follow-up work back onto the queue (subject to the
/// capacity bound), which is what distinguishes this from [`par_for_each`]:
/// the item count need not be known up front.
///
/// Termination detection: a shared busy counter is incremented before `f`
/// runs and decremented after, so a momentarily empty queue does not stop
/// workers while a peer might still produce more work.
pub fn par_drain<T: Send>(queue: &WorkQueue<T>, f: impl Fn(T, &WorkQueue<T>) + Sync) {
    let threads = num_threads();
    if threads <= 1 {
        while let Some(item) = queue.pop() {
            f(item, queue);
        }
        return;
    }
    let busy = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Raise the busy flag *before* popping: a peer that sees an
                // empty queue while we hold an unprocessed item must keep
                // spinning, since our item may spawn follow-up work.
                busy.fetch_add(1, Ordering::SeqCst);
                match queue.pop() {
                    Some(item) => {
                        f(item, queue);
                        busy.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        busy.fetch_sub(1, Ordering::SeqCst);
                        if busy.load(Ordering::SeqCst) == 0 && queue.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out = par_map(&input, |&x| x * x);
        let expected: Vec<u64> = input.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_vec_moves_items_in_order() {
        // Non-Clone payload: ownership must genuinely transfer.
        struct Item(Box<u64>);
        let input: Vec<Item> = (0..300).map(|x| Item(Box::new(x))).collect();
        let out = par_map_vec(input, |item| *item.0 * 2);
        let expected: Vec<u64> = (0..300).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_vec_empty_and_singleton() {
        assert!(par_map_vec(Vec::<u8>::new(), |x| x).is_empty());
        assert_eq!(par_map_vec(vec![41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn striped_set_dedups_across_shards() {
        let set: StripedSet<u64> = StripedSet::new(8);
        assert_eq!(set.shard_count(), 8);
        assert!(set.is_empty());
        assert!(set.insert(17, 100));
        assert!(!set.insert(17, 100), "second insert merges");
        assert!(set.insert(18, 100), "different shard, same value: new");
        assert!(set.insert(17, 101));
        assert_eq!(set.len(), 3);
        assert!(set.contains(17, &100));
        assert!(!set.contains(17, &999));
    }

    #[test]
    fn striped_set_rounds_shards_to_power_of_two() {
        assert_eq!(StripedSet::<u32>::new(0).shard_count(), 1);
        assert_eq!(StripedSet::<u32>::new(5).shard_count(), 8);
        assert_eq!(StripedSet::<u32>::new(64).shard_count(), 64);
    }

    #[test]
    fn striped_set_concurrent_inserts_count_each_value_once() {
        // Many threads race to insert an overlapping value range; exactly
        // one insert per value may win.
        let set: StripedSet<u64> = StripedSet::new(16);
        let winners = AtomicU64::new(0);
        par_for_each(64, |worker| {
            for v in 0..500u64 {
                if set.insert(v.wrapping_mul(0x9E3779B97F4A7C15) >> 32, v) {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            }
            let _ = worker;
        });
        assert_eq!(winners.load(Ordering::Relaxed), 500);
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn striped_map_intersects_masks() {
        let map: StripedMap<u128> = StripedMap::new(8);
        assert!(map.is_empty());
        assert_eq!(map.intersect(3, 500, 0b1110), MaskMerge::Inserted);
        assert_eq!(map.intersect(3, 500, 0b1111), MaskMerge::Subset);
        assert_eq!(map.intersect(3, 500, 0b1110), MaskMerge::Subset);
        // 0b0110 clears bit 3 of the stored 0b1110.
        assert_eq!(map.intersect(3, 500, 0b0110), MaskMerge::Shrunk(0b1000));
        // Stored is now 0b0110; the empty arrival clears the rest.
        assert_eq!(map.intersect(3, 500, 0), MaskMerge::Shrunk(0b0110));
        assert_eq!(map.intersect(3, 500, 0), MaskMerge::Subset);
        // Same value under a different shard key is a distinct entry.
        assert_eq!(map.intersect(4, 500, u64::MAX), MaskMerge::Inserted);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn striped_map_concurrent_intersections_converge() {
        // Every worker intersects each key with its own single-bit
        // complement; the final mask must be the intersection of all
        // arrivals no matter the interleaving.
        let map: StripedMap<u64> = StripedMap::new(16);
        par_for_each(8, |worker| {
            for k in 0..100u64 {
                map.intersect(k, k, !(1 << worker));
            }
        });
        assert_eq!(map.len(), 100);
        for k in 0..100u64 {
            // All eight low bits cleared: a full-mask arrival reports
            // Subset, proving the stored value.
            assert_eq!(map.intersect(k, k, !0xFF), MaskMerge::Subset);
        }
    }

    #[test]
    fn par_stripes_fills_every_stripe_in_order() {
        let got = par_stripes(37, |s| {
            // Uneven per-stripe work: stripe s yields the vec [s; s % 5].
            vec![s; s % 5]
        });
        assert_eq!(got.len(), 37);
        for (s, stripe) in got.iter().enumerate() {
            assert_eq!(stripe, &vec![s; s % 5], "stripe {s}");
        }
        assert!(par_stripes(0, |s| s).is_empty());
        assert_eq!(par_stripes(1, |s| s + 10), vec![10]);
    }

    #[test]
    fn par_stripes_with_is_width_insensitive() {
        let reference: Vec<Vec<usize>> = (0..23).map(|s| vec![s; s % 4]).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_stripes_with(threads, 23, |s| vec![s; s % 4]);
            assert_eq!(got, reference, "threads = {threads}");
        }
        assert!(par_stripes_with(4, 0, |s| s).is_empty());
    }

    #[test]
    fn par_for_each_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        par_for_each(500, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_batch_reduce_matches_sequential() {
        // Sum of squares over 0..10_000 in batches of 64: same value as the
        // sequential fold, every index visited exactly once.
        let expected: u64 = (0..10_000u64).map(|x| x * x).sum();
        let got = par_batch_reduce(
            10_000,
            64,
            |range| range.map(|i| (i as u64) * (i as u64)).sum::<u64>(),
            || 0u64,
            |a, b| a + b,
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn par_batch_reduce_is_batch_size_insensitive() {
        // A commutative-monoid fold must land on the same result no matter
        // the sharding grain (the campaign golden test's core invariant).
        let reduce = |batch: usize| {
            par_batch_reduce(
                1000,
                batch,
                |range| range.map(|i| i as u64).collect::<Vec<u64>>(),
                Vec::new,
                |mut a, mut b| {
                    a.append(&mut b);
                    a.sort_unstable();
                    a
                },
            )
        };
        let baseline = reduce(1000); // single batch: sequential
        assert_eq!(baseline, (0..1000u64).collect::<Vec<_>>());
        for batch in [1, 7, 64, 333] {
            assert_eq!(reduce(batch), baseline);
        }
    }

    #[test]
    fn par_batch_reduce_empty_input_is_identity() {
        let got = par_batch_reduce(0, 16, |_| 1u64, || 0u64, |a, b| a + b);
        assert_eq!(got, 0);
    }

    #[test]
    #[should_panic(expected = "at least one index")]
    fn par_batch_reduce_rejects_zero_batch() {
        par_batch_reduce(10, 0, |_| 0u64, || 0u64, |a, b| a + b);
    }

    #[test]
    fn par_reduce_matches_sequential() {
        let input: Vec<u64> = (1..=2000).collect();
        let total = par_reduce(&input, |&x| x, || 0u64, |a, b| a + b);
        assert_eq!(total, 2000 * 2001 / 2);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Skewed workload: ensure completion (dynamic cursor prevents one
        // thread from owning all the heavy tail items).
        let input: Vec<u64> = (0..64).collect();
        let out = par_map(&input, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn work_queue_is_fifo_and_bounded() {
        let q: WorkQueue<u32> = WorkQueue::bounded(3);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.push(4), Err(4), "overflow hands the item back");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(5), Ok(()), "pop frees capacity");
        assert_eq!(q.into_vec(), vec![2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn work_queue_rejects_zero_capacity() {
        let _ = WorkQueue::<u8>::bounded(0);
    }

    #[test]
    fn closable_queue_backpressure_and_close_semantics() {
        let q: ClosableQueue<u32> = ClosableQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(
            q.push(3),
            Err(PushError::Full(3)),
            "full hands the item back"
        );
        assert_eq!(PushError::Full(3u32).into_inner(), 3);
        q.close();
        assert!(q.is_closed());
        assert_eq!(
            q.push(4),
            Err(PushError::Closed(4)),
            "closed refuses new work"
        );
        // Queued work survives the close (graceful drain)…
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Ok(2));
        // …and only then do consumers observe the end.
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_pop(), Err(true));
    }

    #[test]
    fn closable_queue_blocking_pop_wakes_on_push_and_close() {
        let q: ClosableQueue<u64> = ClosableQueue::bounded(16);
        let consumed = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    // Blocks until items arrive; exits on close-and-empty.
                    while let Some(v) = q.pop() {
                        consumed.lock().push(v);
                    }
                });
            }
            scope.spawn(|| {
                for v in 0..200u64 {
                    // Retry on backpressure: consumers are draining.
                    let mut item = v;
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                item = back;
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => unreachable!("not closed yet"),
                        }
                    }
                }
                q.close();
            });
        });
        let mut got = consumed.into_inner();
        got.sort_unstable();
        assert_eq!(got, (0..200u64).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn closable_queue_rejects_zero_capacity() {
        let _ = ClosableQueue::<u8>::bounded(0);
    }

    #[test]
    fn par_drain_processes_follow_up_work() {
        // Each item n < 100 pushes n+1; starting from 0 every value in
        // 0..=100 must be processed exactly once per seed chain.
        let q = WorkQueue::bounded(1024);
        for seed in 0..8u64 {
            q.push(seed * 1000).unwrap();
        }
        let hits = Mutex::new(Vec::new());
        par_drain(&q, |item, queue| {
            hits.lock().push(item);
            if item % 1000 < 100 {
                queue.push(item + 1).unwrap();
            }
        });
        let mut seen = hits.into_inner();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..8u64)
            .flat_map(|s| (0..=100u64).map(move |i| s * 1000 + i))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn par_drain_terminates_under_overflow() {
        // Follow-up work that would grow forever if pushes never failed: the
        // capacity bound sheds the excess and the drain still terminates.
        let q = WorkQueue::bounded(4);
        q.push(0u64).unwrap();
        let processed = AtomicU64::new(0);
        par_drain(&q, |item, queue| {
            processed.fetch_add(1, Ordering::Relaxed);
            if item < 10_000 {
                // Two children per item: unbounded this is 2^14 items, but
                // at most 4 can ever be queued, so shedding is guaranteed.
                let _ = queue.push(item + 1);
                let _ = queue.push(item + 2);
            }
        });
        assert!(q.is_empty());
        assert!(processed.load(Ordering::Relaxed) >= 1);
    }
}
