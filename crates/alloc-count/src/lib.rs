//! A counting wrapper around the system allocator, for allocation-count
//! regression tests.
//!
//! Install it in a test binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wb_alloc_count::CountingAlloc = wb_alloc_count::CountingAlloc;
//! ```
//!
//! and bracket the code under test with [`allocations_on_this_thread`] —
//! the counter is thread-local, so a parallel test harness does not bleed
//! its allocations into the measurement. The workspace uses this to pin
//! that the schedule explorer's fingerprint probe path performs **zero**
//! heap allocations.
//!
//! This is the only crate in the workspace allowed to contain `unsafe`
//! (implementing [`GlobalAlloc`] requires it); the two unsafe methods do
//! nothing but forward to [`System`] after bumping a counter.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of heap allocations made by the current thread since it started
/// (wrapping). Take a reading before and after the code under test and
/// compare.
pub fn allocations_on_this_thread() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

/// The counting allocator: forwards to [`System`], bumping a thread-local
/// counter on every `alloc`/`realloc`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during thread teardown (after TLS
        // destruction) cannot panic inside the allocator.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get().wrapping_add(1)));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_allocations() {
        // Without the global allocator installed (unit-test context) the
        // counter stays flat; this just pins the API shape.
        let before = allocations_on_this_thread();
        let _v = [0u8; 16];
        assert!(allocations_on_this_thread() >= before);
    }
}
