//! Parsing and integrity checking of the `wb-cert/v1` wire format.
//!
//! A certificate is one canonical JSON line (sorted keys, no whitespace)
//! whose `digest` field is a [`Digest128`] over the canonical emission of
//! the rest of the document. Parsing therefore runs three integrity gates
//! before any field is believed:
//!
//! 1. the line must parse as JSON;
//! 2. re-emitting the parse must reproduce the input byte for byte (the
//!    canonical-form gate — a certificate has exactly one valid spelling);
//! 3. re-hashing the body must reproduce `digest`.
//!
//! Only then are fields extracted, with structural constraints (sorted
//! unique edges, sorted unique terminals, in-range node ids) enforced here
//! so the semantic replay in [`crate::verify_certificate`] can assume a
//! well-formed claim.

use crate::VerifyError;
use wb_core::steps::{FaultPlan, Model};
use wb_graph::NodeId;
use wb_math::hash::{parse_hex128, Digest128};
use wb_math::json::Json;

/// The only certificate format this verifier understands.
pub const FORMAT: &str = "wb-cert/v1";

const KNOWN_KEYS: &[&str] = &[
    "digest",
    "edges",
    "family",
    "faults",
    "format",
    "graph",
    "initial",
    "model",
    "n",
    "protocol",
    "reduction",
    "seed",
    "states",
    "terminals",
    "witnesses",
];

/// One parsed terminal claim.
pub struct RawTerminal {
    /// Terminal configuration hash.
    pub config: u128,
    /// Claimed oracle verdict.
    pub verdict: bool,
    /// Claimed `Debug` rendering of the outcome.
    pub outcome: String,
}

/// One parsed counterexample witness.
pub struct RawWitness {
    /// The adversary's picks, in order.
    pub schedule: Vec<NodeId>,
    /// Claimed configuration hash after each pick.
    pub trace: Vec<u128>,
    /// Picks whose write died, in crash order (present exactly when the
    /// certificate carries a fault plan; empty otherwise).
    pub died: Vec<NodeId>,
    /// Claimed `Debug` rendering of the failing outcome.
    pub outcome: String,
}

/// A parsed, integrity-checked (but not yet semantically verified)
/// certificate.
pub struct RawCertificate {
    /// Registry protocol spec.
    pub protocol: String,
    /// Model the run executed under.
    pub model: Model,
    /// Number of nodes.
    pub n: usize,
    /// Instance graph edge list.
    pub graph_edges: Vec<(NodeId, NodeId)>,
    /// The fault plan whose schedule the walk branched over, if any.
    pub faults: Option<FaultPlan>,
    /// Reduction policy the *exploration* ran under, if any. Provenance
    /// only: the certifying walk is always unreduced (every transition edge
    /// is present), so verification replays the same machine either way.
    pub reduction: Option<String>,
    /// Initial configuration hash.
    pub initial: u128,
    /// Transition edges `(from, writer, crash, to)`, sorted and unique;
    /// `crash` marks edges where the pick's write died.
    pub edges: Vec<(u128, NodeId, bool, u128)>,
    /// Terminal claims, sorted by config and unique.
    pub terminals: Vec<RawTerminal>,
    /// Counterexample witnesses.
    pub witnesses: Vec<RawWitness>,
    /// Claimed number of distinct configurations.
    pub states: u64,
}

fn field<'j>(obj: &'j Json, key: &'static str) -> Result<&'j Json, VerifyError> {
    obj.get(key).ok_or(VerifyError::Field {
        field: key,
        detail: "missing".into(),
    })
}

fn bad(field: &'static str, detail: impl Into<String>) -> VerifyError {
    VerifyError::Field {
        field,
        detail: detail.into(),
    }
}

fn str_field<'j>(obj: &'j Json, key: &'static str) -> Result<&'j str, VerifyError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| bad(key, "expected a string"))
}

fn uint_of(v: &Json, key: &'static str) -> Result<u64, VerifyError> {
    match v {
        Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 2u64.pow(53) as f64 => Ok(*x as u64),
        _ => Err(bad(key, "expected a non-negative integer")),
    }
}

fn hex_of(v: &Json, key: &'static str) -> Result<u128, VerifyError> {
    v.as_str()
        .and_then(parse_hex128)
        .ok_or_else(|| bad(key, "expected a 0x-prefixed 32-digit hex hash"))
}

fn node_of(v: &Json, n: usize, key: &'static str) -> Result<NodeId, VerifyError> {
    let id = uint_of(v, key)?;
    if id >= 1 && id <= n as u64 {
        Ok(id as NodeId)
    } else {
        Err(bad(key, format!("node id {id} out of range 1..={n}")))
    }
}

/// Parse one certificate line, enforcing the canonical-form and digest
/// gates described in the module docs.
pub fn parse(line: &str) -> Result<RawCertificate, VerifyError> {
    let line = line.trim_end_matches(['\n', '\r']);
    let doc = Json::parse(line).map_err(VerifyError::Malformed)?;
    if doc.to_string() != line {
        return Err(VerifyError::NonCanonical);
    }
    let Json::Obj(map) = &doc else {
        return Err(VerifyError::Malformed(
            "certificate is not an object".into(),
        ));
    };
    for key in map.keys() {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(bad("format", format!("unknown key '{key}'")));
        }
    }
    let found = str_field(&doc, "format")?;
    if found != FORMAT {
        return Err(VerifyError::Version {
            found: found.to_string(),
        });
    }
    let claimed_digest = hex_of(field(&doc, "digest")?, "digest")?;
    let mut body = map.clone();
    body.remove("digest");
    let mut digest = Digest128::new();
    digest.put_bytes(Json::Obj(body).to_string().as_bytes());
    if digest.finish() != claimed_digest {
        return Err(VerifyError::DigestMismatch);
    }

    let n = uint_of(field(&doc, "n")?, "n")? as usize;
    if n == 0 {
        return Err(bad("n", "a protocol needs at least one node"));
    }
    let model: Model = str_field(&doc, "model")?
        .parse()
        .map_err(|e: String| bad("model", e))?;
    let graph_edges = field(&doc, "graph")?
        .as_arr()
        .ok_or_else(|| bad("graph", "expected an edge array"))?
        .iter()
        .map(|pair| match pair.as_arr() {
            Some([u, v]) => Ok((node_of(u, n, "graph")?, node_of(v, n, "graph")?)),
            _ => Err(bad("graph", "expected [u,v] pairs")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    if graph_edges.iter().any(|(u, v)| u == v) {
        return Err(bad("graph", "self-loop"));
    }
    let initial = hex_of(field(&doc, "initial")?, "initial")?;

    let faults = match doc.get("faults") {
        None => None,
        Some(v) => {
            let spec = v
                .as_str()
                .ok_or_else(|| bad("faults", "expected a fault-plan spec string"))?;
            let plan: FaultPlan = spec.parse().map_err(|e: String| bad("faults", e))?;
            if plan.is_inert() {
                return Err(bad("faults", "an inert plan (budget 0) must be omitted"));
            }
            if plan.spec() != spec {
                return Err(bad("faults", "spec is not in canonical form"));
            }
            Some(plan)
        }
    };

    // Provenance of the exploration that prompted the certificate. The
    // certifying walk itself never reduces, so the verifier only checks the
    // key is well-formed — a reduced-exploration certificate replays through
    // the same unreduced machine as any other.
    let reduction = match doc.get("reduction") {
        None => None,
        Some(v) => {
            let spec = v
                .as_str()
                .ok_or_else(|| bad("reduction", "expected a reduction-policy string"))?;
            if !["dpor", "symmetry", "dpor+symmetry"].contains(&spec) {
                return Err(bad(
                    "reduction",
                    format!(
                        "unknown policy '{spec}' (expected dpor|symmetry|dpor+symmetry; \
                         'off' must be omitted)"
                    ),
                ));
            }
            Some(spec.to_string())
        }
    };

    let edges = field(&doc, "edges")?
        .as_arr()
        .ok_or_else(|| bad("edges", "expected an array"))?
        .iter()
        .map(|e| match e.as_arr() {
            Some([from, writer, to]) => Ok((
                hex_of(from, "edges")?,
                node_of(writer, n, "edges")?,
                false,
                hex_of(to, "edges")?,
            )),
            Some([from, writer, to, marker]) => {
                if uint_of(marker, "edges")? != 1 {
                    return Err(bad("edges", "crash marker must be the literal 1"));
                }
                if faults.is_none() {
                    return Err(bad("edges", "crash edge in a certificate without faults"));
                }
                Ok((
                    hex_of(from, "edges")?,
                    node_of(writer, n, "edges")?,
                    true,
                    hex_of(to, "edges")?,
                ))
            }
            _ => Err(bad(
                "edges",
                "expected [from,writer,to] or [from,writer,to,1]",
            )),
        })
        .collect::<Result<Vec<_>, _>>()?;
    for pair in edges.windows(2) {
        if pair[0].0 == pair[1].0 && pair[0].1 == pair[1].1 && pair[0].2 == pair[1].2 {
            return Err(VerifyError::DuplicateEdge {
                from: pair[1].0,
                writer: pair[1].1,
            });
        }
        if pair[1] <= pair[0] {
            return Err(bad("edges", "not sorted by (from, writer, crash, to)"));
        }
    }

    let terminals = field(&doc, "terminals")?
        .as_arr()
        .ok_or_else(|| bad("terminals", "expected an array"))?
        .iter()
        .map(|t| {
            let verdict = match field(t, "verdict") {
                Ok(Json::Bool(b)) => *b,
                _ => return Err(bad("terminals", "expected a boolean verdict")),
            };
            Ok(RawTerminal {
                config: hex_of(field(t, "config")?, "terminals")?,
                verdict,
                outcome: str_field(t, "outcome")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    for pair in terminals.windows(2) {
        if pair[1].config == pair[0].config {
            return Err(VerifyError::DuplicateTerminal {
                config: pair[1].config,
            });
        }
        if pair[1].config < pair[0].config {
            return Err(bad("terminals", "not sorted by config"));
        }
    }

    let witnesses = field(&doc, "witnesses")?
        .as_arr()
        .ok_or_else(|| bad("witnesses", "expected an array"))?
        .iter()
        .map(|w| {
            let schedule = field(w, "schedule")?
                .as_arr()
                .ok_or_else(|| bad("witnesses", "expected a schedule array"))?
                .iter()
                .map(|v| node_of(v, n, "witnesses"))
                .collect::<Result<Vec<_>, _>>()?;
            let trace = field(w, "trace")?
                .as_arr()
                .ok_or_else(|| bad("witnesses", "expected a trace array"))?
                .iter()
                .map(|v| hex_of(v, "witnesses"))
                .collect::<Result<Vec<_>, _>>()?;
            let died = match (faults.is_some(), w.get("died")) {
                (true, Some(v)) => v
                    .as_arr()
                    .ok_or_else(|| bad("witnesses", "expected a died array"))?
                    .iter()
                    .map(|v| node_of(v, n, "witnesses"))
                    .collect::<Result<Vec<_>, _>>()?,
                (true, None) => {
                    return Err(bad("witnesses", "faulted witness missing 'died'"));
                }
                (false, Some(_)) => {
                    return Err(bad("witnesses", "'died' in a certificate without faults"));
                }
                (false, None) => Vec::new(),
            };
            Ok(RawWitness {
                schedule,
                trace,
                died,
                outcome: str_field(w, "outcome")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(RawCertificate {
        protocol: str_field(&doc, "protocol")?.to_string(),
        model,
        n,
        graph_edges,
        faults,
        reduction,
        initial,
        edges,
        terminals,
        witnesses,
        states: uint_of(field(&doc, "states")?, "states")?,
    })
}
