//! Independent re-checker for `wb-cert/v1` exploration certificates.
//!
//! The schedule explorer in `wb-runtime` is fast because it is clever:
//! undo-log branching, write-only dedup probes, striped parallel seen-sets.
//! A bug in any of that cleverness silently corrupts every verdict it
//! reports. This crate is the counterweight: a verifier small enough to
//! read in one sitting that re-checks a certificate emitted by
//! `wb_runtime::certificate` using **none** of the machinery being checked.
//!
//! ## Trust argument
//!
//! The verifier depends on `wb-core` (protocol implementations and the
//! registry's oracle table, reached through the engine-independent
//! [`wb_core::steps`] surface), `wb-graph`, and `wb-math` (hashing, JSON).
//! It does not link the explorer, the undo log, or the engine: protocol
//! steps are replayed by the naive machine in this crate, and configuration
//! hashes are recomputed from the spec in `docs/CERTIFICATES.md`. What is
//! re-checked, given a certificate:
//!
//! - every claimed transition edge replays as a legal single step whose
//!   target hash matches;
//! - every reachable configuration with an active node has an outgoing edge
//!   per active writer (no dropped edges), and no claimed edge is
//!   unreachable (no forged edges);
//! - the terminal set is exactly the reachable terminals, each verdict
//!   re-evaluates under the registry oracle, and each rendered outcome
//!   reproduces;
//! - every failing terminal has a witness schedule that strict-replays —
//!   pick by pick, hash by hash — to its claimed failure;
//! - the distinct-state count matches.
//!
//! What is **not** re-checked: that the protocol itself is order-oblivious
//! (the soundness precondition for hash-based dedup — an assumption of the
//! certificate format, see `docs/CERTIFICATES.md`), and that the registry
//! oracle is the "right" predicate for the paper's problem (the oracle is
//! the shared definition of correct).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cert;
pub mod machine;

use machine::Machine;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use wb_core::registry::{self, BoundOracle, ProtocolVisitor};
use wb_core::steps::{Model, Outcome, Promote, Protocol};
use wb_graph::{Graph, NodeId};
use wb_math::hash::hex128;

pub use cert::{parse, RawCertificate, RawTerminal, RawWitness, FORMAT};

/// Everything that can make a certificate fail verification. Every variant
/// names the offending edge, terminal, or witness, so a rejection is a
/// diagnosis, not a shrug.
#[derive(Debug, PartialEq)]
pub enum VerifyError {
    /// The line is not JSON.
    Malformed(String),
    /// The line parses but is not in canonical form (sorted keys, no
    /// whitespace) — a certificate has exactly one valid spelling.
    NonCanonical,
    /// The document digest does not match the body.
    DigestMismatch,
    /// Not a `wb-cert/v1` document.
    Version {
        /// The format tag found.
        found: String,
    },
    /// A field is missing, ill-typed, or out of range.
    Field {
        /// Which field.
        field: &'static str,
        /// What is wrong with it.
        detail: String,
    },
    /// The protocol spec does not resolve in the registry.
    UnknownProtocol(String),
    /// The certificate's model cannot run this protocol (Lemma 4 only
    /// promotes upward).
    ModelMismatch {
        /// Model the certificate claims.
        certificate: Model,
        /// The protocol's native model.
        native: Model,
    },
    /// The replayed initial configuration hash differs.
    InitialMismatch {
        /// Hash the certificate claims.
        claimed: u128,
        /// Hash the replay produced.
        actual: u128,
    },
    /// Two edges share `(from, writer)`.
    DuplicateEdge {
        /// Source configuration.
        from: u128,
        /// Writer claimed twice.
        writer: NodeId,
    },
    /// Two terminal claims share a configuration hash.
    DuplicateTerminal {
        /// The duplicated hash.
        config: u128,
    },
    /// A reachable configuration has an active writer with no edge
    /// (a dropped edge).
    MissingEdge {
        /// The configuration.
        config: u128,
        /// The uncovered active writer.
        writer: NodeId,
    },
    /// Replaying an edge produced a different target configuration
    /// (a forged or stale edge).
    EdgeTargetMismatch {
        /// Source configuration.
        from: u128,
        /// The writer stepped.
        writer: NodeId,
        /// Target the certificate claims.
        claimed: u128,
        /// Target the replay produced.
        actual: u128,
    },
    /// A claimed edge's source is never reached (a forged edge).
    UnreachableEdge {
        /// Source configuration.
        from: u128,
        /// Writer of the forged edge.
        writer: NodeId,
    },
    /// A write could not execute (empty message or budget violation).
    StepFault {
        /// The configuration stepped from.
        config: u128,
        /// The writer.
        writer: NodeId,
        /// The fault.
        detail: String,
    },
    /// A reachable terminal is absent from the terminal list (a truncated
    /// terminal set).
    MissingTerminal {
        /// The unlisted terminal's hash.
        config: u128,
    },
    /// A listed terminal is never reached (a stale config hash).
    UnknownTerminal {
        /// The unreachable hash.
        config: u128,
    },
    /// Re-evaluating the registry oracle contradicts the claimed verdict
    /// (a flipped verdict).
    TerminalVerdict {
        /// The terminal.
        config: u128,
        /// Verdict the certificate claims.
        claimed: bool,
    },
    /// The replayed outcome renders differently than claimed.
    TerminalOutcome {
        /// The terminal.
        config: u128,
        /// Rendering the certificate claims.
        claimed: String,
        /// Rendering the replay produced.
        actual: String,
    },
    /// A witness pick was not active at its step (an illegal schedule).
    WitnessStep {
        /// Witness index.
        witness: usize,
        /// Step index within the schedule.
        step: usize,
        /// The illegal pick.
        pick: NodeId,
    },
    /// A witness diverged from its hash trace (e.g. a reordered schedule).
    WitnessTrace {
        /// Witness index.
        witness: usize,
        /// First diverging step.
        step: usize,
        /// Hash the trace claims there.
        claimed: u128,
        /// Hash the replay produced.
        actual: u128,
    },
    /// A witness is structurally broken (trace length, incomplete run).
    WitnessShape {
        /// Witness index.
        witness: usize,
        /// What is wrong.
        detail: String,
    },
    /// A witness replay's outcome renders differently than claimed.
    WitnessOutcome {
        /// Witness index.
        witness: usize,
        /// Rendering the certificate claims.
        claimed: String,
        /// Rendering the replay produced.
        actual: String,
    },
    /// A witness replays to an outcome the oracle accepts.
    WitnessNotAFailure {
        /// Witness index.
        witness: usize,
    },
    /// A failing terminal has no witness.
    MissingWitness {
        /// The unwitnessed failing terminal.
        config: u128,
    },
    /// The distinct-state count is wrong.
    StateCount {
        /// Count the certificate claims.
        claimed: u64,
        /// Count the replay found.
        actual: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyError::*;
        match self {
            Malformed(e) => write!(f, "malformed certificate: {e}"),
            NonCanonical => write!(f, "certificate is not in canonical form"),
            DigestMismatch => write!(f, "document digest does not match the body"),
            Version { found } => write!(f, "unsupported format '{found}' (expected {FORMAT})"),
            Field { field, detail } => write!(f, "field '{field}': {detail}"),
            UnknownProtocol(e) => write!(f, "protocol does not resolve: {e}"),
            ModelMismatch {
                certificate,
                native,
            } => {
                write!(f, "model {certificate} cannot run a {native} protocol")
            }
            InitialMismatch { claimed, actual } => write!(
                f,
                "initial configuration is {}, not {}",
                hex128(*actual),
                hex128(*claimed)
            ),
            DuplicateEdge { from, writer } => {
                write!(f, "duplicate edge ({}, {writer})", hex128(*from))
            }
            DuplicateTerminal { config } => {
                write!(f, "duplicate terminal {}", hex128(*config))
            }
            MissingEdge { config, writer } => write!(
                f,
                "no edge for active writer {writer} in configuration {}",
                hex128(*config)
            ),
            EdgeTargetMismatch {
                from,
                writer,
                claimed,
                actual,
            } => write!(
                f,
                "edge ({}, {writer}) reaches {}, not {}",
                hex128(*from),
                hex128(*actual),
                hex128(*claimed)
            ),
            UnreachableEdge { from, writer } => write!(
                f,
                "edge ({}, {writer}) starts at an unreachable configuration",
                hex128(*from)
            ),
            StepFault {
                config,
                writer,
                detail,
            } => write!(
                f,
                "stepping writer {writer} in {} failed: {detail}",
                hex128(*config)
            ),
            MissingTerminal { config } => write!(
                f,
                "reachable terminal {} is missing from the terminal set",
                hex128(*config)
            ),
            UnknownTerminal { config } => {
                write!(f, "claimed terminal {} is not reachable", hex128(*config))
            }
            TerminalVerdict { config, claimed } => write!(
                f,
                "terminal {}: oracle says {}, certificate claims {claimed}",
                hex128(*config),
                !claimed
            ),
            TerminalOutcome {
                config,
                claimed,
                actual,
            } => write!(
                f,
                "terminal {}: outcome is {actual:?}, certificate claims {claimed:?}",
                hex128(*config)
            ),
            WitnessStep {
                witness,
                step,
                pick,
            } => write!(
                f,
                "witness {witness}: pick {pick} at step {step} is not active"
            ),
            WitnessTrace {
                witness,
                step,
                claimed,
                actual,
            } => write!(
                f,
                "witness {witness}: diverged at step {step} ({}, trace claims {})",
                hex128(*actual),
                hex128(*claimed)
            ),
            WitnessShape { witness, detail } => write!(f, "witness {witness}: {detail}"),
            WitnessOutcome {
                witness,
                claimed,
                actual,
            } => write!(
                f,
                "witness {witness}: outcome is {actual:?}, certificate claims {claimed:?}"
            ),
            WitnessNotAFailure { witness } => write!(
                f,
                "witness {witness} replays to an outcome the oracle accepts"
            ),
            MissingWitness { config } => {
                write!(f, "failing terminal {} has no witness", hex128(*config))
            }
            StateCount { claimed, actual } => write!(
                f,
                "distinct-state count is {actual}, certificate claims {claimed}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// What a successfully verified certificate established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifySummary {
    /// Registry protocol spec.
    pub protocol: String,
    /// Model the run executed under.
    pub model: Model,
    /// Number of nodes.
    pub n: usize,
    /// Distinct configurations replayed.
    pub states: u64,
    /// Terminal configurations replayed.
    pub terminals: usize,
    /// Terminals the oracle rejected (each backed by a verified witness).
    pub failures: usize,
}

/// Parse and fully verify one certificate line.
pub fn verify_line(line: &str) -> Result<VerifySummary, VerifyError> {
    verify_certificate(&cert::parse(line)?)
}

/// Fully verify a parsed certificate: resolve the protocol and oracle in
/// the registry, then replay the claimed configuration DAG edge by edge.
pub fn verify_certificate(cert: &RawCertificate) -> Result<VerifySummary, VerifyError> {
    match registry::dispatch(&cert.protocol, cert.n, Check { cert }) {
        Ok(result) => result,
        Err(e) => Err(VerifyError::UnknownProtocol(e)),
    }
}

struct Check<'a> {
    cert: &'a RawCertificate,
}

impl ProtocolVisitor for Check<'_> {
    type Result = Result<VerifySummary, VerifyError>;

    fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let native = protocol.model();
        if self.cert.model == native {
            replay(&protocol, self.cert, bind)
        } else if self.cert.model.includes(native) {
            replay(&Promote::new(protocol, self.cert.model), self.cert, bind)
        } else {
            Err(VerifyError::ModelMismatch {
                certificate: self.cert.model,
                native,
            })
        }
    }
}

fn replay<Q, B>(protocol: &Q, cert: &RawCertificate, bind: B) -> Result<VerifySummary, VerifyError>
where
    Q: Protocol,
    Q::Output: std::fmt::Debug,
    B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, Q::Output>,
{
    let g = Graph::from_edges(cert.n, &cert.graph_edges);
    let oracle = bind(&g);

    let root = Machine::new(protocol, &g);
    let initial = root.hash();
    if initial != cert.initial {
        return Err(VerifyError::InitialMismatch {
            claimed: cert.initial,
            actual: initial,
        });
    }

    // Under a fault plan the walk branched over crashes too: a configuration
    // whose crash count is below the budget owes one *crash* edge per active
    // writer on top of the survive edge. Both fault kinds quantify over the
    // same crash schedules at this tier (a write either lands or it does
    // not), so the budget is all the replay needs.
    let budget = cert.faults.map_or(0, |p| p.budget());
    let edge_map: BTreeMap<(u128, NodeId, bool), u128> = cert
        .edges
        .iter()
        .map(|&(from, writer, crash, to)| ((from, writer, crash), to))
        .collect();
    let terminal_map: BTreeMap<u128, &RawTerminal> =
        cert.terminals.iter().map(|t| (t.config, t)).collect();

    // Depth-first over the claimed DAG, dedup by hash: every reachable
    // configuration is expanded once, so every legitimate edge is replayed
    // exactly once. Distinct crash histories reaching the same hash merge,
    // which is sound because the crashed set is itself part of the canonical
    // configuration (a crashed node is terminated yet absent from the board).
    let mut seen: HashSet<u128> = HashSet::from([initial]);
    let mut used: BTreeSet<(u128, NodeId, bool)> = BTreeSet::new();
    let mut reached_terminals: BTreeSet<u128> = BTreeSet::new();
    let mut stack = vec![(root, initial)];
    while let Some((machine, config)) = stack.pop() {
        let mut any_active = false;
        let may_crash = machine.crashed().len() < budget;
        for writer in 1..=machine.node_count() as NodeId {
            if !machine.is_active(writer) {
                continue;
            }
            any_active = true;
            let claimed = *edge_map
                .get(&(config, writer, false))
                .ok_or(VerifyError::MissingEdge { config, writer })?;
            used.insert((config, writer, false));
            let mut child = machine.clone();
            child.step(writer).map_err(|fault| VerifyError::StepFault {
                config,
                writer,
                detail: fault.to_string(),
            })?;
            let actual = child.hash();
            if actual != claimed {
                return Err(VerifyError::EdgeTargetMismatch {
                    from: config,
                    writer,
                    claimed,
                    actual,
                });
            }
            if seen.insert(actual) {
                stack.push((child, actual));
            }
            if may_crash {
                let claimed = *edge_map
                    .get(&(config, writer, true))
                    .ok_or(VerifyError::MissingEdge { config, writer })?;
                used.insert((config, writer, true));
                let mut child = machine.clone();
                child
                    .step_crash(writer)
                    .map_err(|fault| VerifyError::StepFault {
                        config,
                        writer,
                        detail: fault.to_string(),
                    })?;
                let actual = child.hash();
                if actual != claimed {
                    return Err(VerifyError::EdgeTargetMismatch {
                        from: config,
                        writer,
                        claimed,
                        actual,
                    });
                }
                if seen.insert(actual) {
                    stack.push((child, actual));
                }
            }
        }
        if !any_active {
            reached_terminals.insert(config);
            let claim = terminal_map
                .get(&config)
                .ok_or(VerifyError::MissingTerminal { config })?;
            let outcome = machine.outcome();
            let actual = format!("{outcome:?}");
            if actual != claim.outcome {
                return Err(VerifyError::TerminalOutcome {
                    config,
                    claimed: claim.outcome.clone(),
                    actual,
                });
            }
            if oracle(&outcome, machine.crashed()) != claim.verdict {
                return Err(VerifyError::TerminalVerdict {
                    config,
                    claimed: claim.verdict,
                });
            }
        }
    }

    for &(from, writer, crash, _) in &cert.edges {
        if !used.contains(&(from, writer, crash)) {
            return Err(VerifyError::UnreachableEdge { from, writer });
        }
    }
    for t in &cert.terminals {
        if !reached_terminals.contains(&t.config) {
            return Err(VerifyError::UnknownTerminal { config: t.config });
        }
    }
    if seen.len() as u64 != cert.states {
        return Err(VerifyError::StateCount {
            claimed: cert.states,
            actual: seen.len() as u64,
        });
    }

    // Witnesses: strict replay, pick by pick against the hash trace.
    let mut witnessed: BTreeSet<u128> = BTreeSet::new();
    for (wi, w) in cert.witnesses.iter().enumerate() {
        if w.schedule.len() != w.trace.len() {
            return Err(VerifyError::WitnessShape {
                witness: wi,
                detail: format!(
                    "schedule has {} picks but trace has {} hashes",
                    w.schedule.len(),
                    w.trace.len()
                ),
            });
        }
        if w.died.len() > budget {
            return Err(VerifyError::WitnessShape {
                witness: wi,
                detail: format!("{} crashes exceed the fault budget {budget}", w.died.len()),
            });
        }
        let mut machine = Machine::new(protocol, &g);
        for (si, (&pick, &claimed)) in w.schedule.iter().zip(&w.trace).enumerate() {
            if !machine.is_active(pick) {
                return Err(VerifyError::WitnessStep {
                    witness: wi,
                    step: si,
                    pick,
                });
            }
            let stepped = if w.died.contains(&pick) {
                machine.step_crash(pick)
            } else {
                machine.step(pick)
            };
            stepped.map_err(|fault| VerifyError::StepFault {
                config: claimed,
                writer: pick,
                detail: fault.to_string(),
            })?;
            let actual = machine.hash();
            if actual != claimed {
                return Err(VerifyError::WitnessTrace {
                    witness: wi,
                    step: si,
                    claimed,
                    actual,
                });
            }
        }
        if machine.has_active() {
            return Err(VerifyError::WitnessShape {
                witness: wi,
                detail: "schedule ends with active nodes remaining".into(),
            });
        }
        // The replayed crash order must reproduce `died` exactly — this also
        // rejects died entries that never appear in the schedule.
        if machine.crashed() != w.died {
            return Err(VerifyError::WitnessShape {
                witness: wi,
                detail: format!(
                    "replay crashed {:?} but the witness claims {:?}",
                    machine.crashed(),
                    w.died
                ),
            });
        }
        let outcome = machine.outcome();
        let actual = format!("{outcome:?}");
        if actual != w.outcome {
            return Err(VerifyError::WitnessOutcome {
                witness: wi,
                claimed: w.outcome.clone(),
                actual,
            });
        }
        if oracle(&outcome, machine.crashed()) {
            return Err(VerifyError::WitnessNotAFailure { witness: wi });
        }
        witnessed.insert(w.trace.last().copied().unwrap_or(initial));
    }
    let failures = cert.terminals.iter().filter(|t| !t.verdict).count();
    for t in &cert.terminals {
        if !t.verdict && !witnessed.contains(&t.config) {
            return Err(VerifyError::MissingWitness { config: t.config });
        }
    }

    Ok(VerifySummary {
        protocol: cert.protocol.clone(),
        model: cert.model,
        n: cert.n,
        states: cert.states,
        terminals: cert.terminals.len(),
        failures,
    })
}

/// What a corpus witness must replay to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExpectedWitness {
    /// The run stalls with exactly these nodes still awake.
    Deadlock {
        /// Non-terminated nodes at the stall, ascending.
        awake: Vec<NodeId>,
    },
    /// The run succeeds and the output's `Debug` rendering equals this.
    Output(String),
}

/// Strict-replay one standalone witness schedule (a `tests/corpus` fixture)
/// through the verifier's machine, under the protocol's native model.
pub fn verify_witness(
    spec: &str,
    n: usize,
    edges: &[(NodeId, NodeId)],
    schedule: &[NodeId],
    expect: &ExpectedWitness,
) -> Result<(), VerifyError> {
    struct Replay<'a> {
        n: usize,
        edges: &'a [(NodeId, NodeId)],
        schedule: &'a [NodeId],
        expect: &'a ExpectedWitness,
    }

    impl ProtocolVisitor for Replay<'_> {
        type Result = Result<(), VerifyError>;

        fn visit<P, B>(self, protocol: P, _bind: B) -> Self::Result
        where
            P: Protocol + Clone + Send + Sync,
            P::Node: Send + Sync,
            P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
            B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
        {
            let g = Graph::from_edges(self.n, self.edges);
            let mut machine = Machine::new(&protocol, &g);
            for (si, &pick) in self.schedule.iter().enumerate() {
                if !machine.is_active(pick) {
                    return Err(VerifyError::WitnessStep {
                        witness: 0,
                        step: si,
                        pick,
                    });
                }
                machine.step(pick).map_err(|fault| VerifyError::StepFault {
                    config: 0,
                    writer: pick,
                    detail: fault.to_string(),
                })?;
            }
            if machine.has_active() {
                return Err(VerifyError::WitnessShape {
                    witness: 0,
                    detail: "schedule ends with active nodes remaining".into(),
                });
            }
            let actual = match machine.outcome() {
                Outcome::Deadlock { awake } => ExpectedWitness::Deadlock { awake },
                Outcome::Success(out) => ExpectedWitness::Output(format!("{out:?}")),
            };
            if actual == *self.expect {
                Ok(())
            } else {
                Err(VerifyError::WitnessOutcome {
                    witness: 0,
                    claimed: format!("{:?}", self.expect),
                    actual: format!("{actual:?}"),
                })
            }
        }
    }

    match registry::dispatch(
        spec,
        n,
        Replay {
            n,
            edges,
            schedule,
            expect,
        },
    ) {
        Ok(result) => result,
        Err(e) => Err(VerifyError::UnknownProtocol(e)),
    }
}
