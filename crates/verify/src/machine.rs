//! The verifier's own protocol-step replayer.
//!
//! Deliberately **not** `wb_runtime::engine::Engine`: the point of the
//! verifier is to re-check the explorer's claims without sharing any of the
//! machinery being checked (undo-log branching, write-only probes, frontier
//! management). This machine is the ~100-line naive restatement of the
//! paper's §2 semantics — spawn, activation phase, one write per node,
//! observation fan-out — plus the canonical configuration hash recomputed
//! word for word from the spec in `docs/CERTIFICATES.md`. It clones freely
//! and sorts the board at every hash; certificates cover exhaustive-tier
//! instances (a handful of nodes), so simplicity wins over speed.

use wb_core::steps::{LocalView, Node, Outcome, Protocol, Whiteboard};
use wb_graph::{Graph, NodeId};
use wb_math::hash::Digest128;
use wb_math::BitVec;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Awake,
    Active,
    Terminated,
}

/// Why a replayed write could not execute.
pub enum StepFault {
    /// The message was empty (a write must change the board).
    EmptyMessage,
    /// The message exceeded the protocol's declared bit budget.
    BudgetExceeded {
        /// Bits the node produced.
        bits: usize,
        /// The declared budget.
        budget: u32,
    },
}

impl std::fmt::Display for StepFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepFault::EmptyMessage => write!(f, "node produced the empty word"),
            StepFault::BudgetExceeded { bits, budget } => {
                write!(f, "message of {bits} bits exceeds the {budget}-bit budget")
            }
        }
    }
}

/// One shared-whiteboard configuration, replayed naively.
pub struct Machine<'p, P: Protocol> {
    protocol: &'p P,
    simultaneous: bool,
    asynchronous: bool,
    budget: u32,
    views: Vec<LocalView>,
    nodes: Vec<P::Node>,
    status: Vec<Status>,
    frozen: Vec<Option<BitVec>>,
    /// `(writer, message)` in write order.
    board: Vec<(NodeId, BitVec)>,
    /// Nodes whose single write died (crash edges), in crash order.
    crashed: Vec<NodeId>,
}

impl<P: Protocol> Clone for Machine<'_, P> {
    fn clone(&self) -> Self {
        Machine {
            protocol: self.protocol,
            simultaneous: self.simultaneous,
            asynchronous: self.asynchronous,
            budget: self.budget,
            views: self.views.clone(),
            nodes: self.nodes.clone(),
            status: self.status.clone(),
            frozen: self.frozen.clone(),
            board: self.board.clone(),
            crashed: self.crashed.clone(),
        }
    }
}

impl<'p, P: Protocol> Machine<'p, P> {
    /// Spawn all nodes and run the first activation phase, yielding the
    /// configuration whose hash a certificate claims as `initial`.
    pub fn new(protocol: &'p P, g: &Graph) -> Self {
        let n = g.n();
        let model = protocol.model();
        let views = LocalView::all_of(g);
        let mut nodes: Vec<P::Node> = views.iter().map(|v| protocol.spawn(v)).collect();
        let mut frozen: Vec<Option<BitVec>> = vec![None; n];
        let status = if model.is_simultaneous() {
            if model.is_asynchronous() {
                // SIMASYNC: compose precedes every observation.
                for (i, node) in nodes.iter_mut().enumerate() {
                    frozen[i] = Some(node.compose(&views[i]));
                }
            }
            vec![Status::Active; n]
        } else {
            vec![Status::Awake; n]
        };
        let mut machine = Machine {
            protocol,
            simultaneous: model.is_simultaneous(),
            asynchronous: model.is_asynchronous(),
            budget: protocol.budget_bits(n),
            views,
            nodes,
            status,
            frozen,
            board: Vec::with_capacity(n),
            crashed: Vec::new(),
        };
        machine.activation_phase();
        machine
    }

    /// Poll awake nodes' activation predicates, in id order (free models).
    fn activation_phase(&mut self) {
        if self.simultaneous {
            return;
        }
        for i in 0..self.nodes.len() {
            if self.status[i] != Status::Awake {
                continue;
            }
            if self.nodes[i].wants_to_activate(&self.views[i]) {
                self.status[i] = Status::Active;
                if self.asynchronous {
                    // Asynchronous: the message freezes at activation.
                    self.frozen[i] = Some(self.nodes[i].compose(&self.views[i]));
                }
            }
        }
    }

    /// Number of nodes in the configuration.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` may write now (false for out-of-range ids).
    pub fn is_active(&self, id: NodeId) -> bool {
        id >= 1
            && (id as usize) <= self.status.len()
            && self.status[id as usize - 1] == Status::Active
    }

    /// Whether any node may still write.
    pub fn has_active(&self) -> bool {
        self.status.iter().any(|s| *s == Status::Active)
    }

    /// Execute one write by `pick` (which the caller has checked is active):
    /// write, terminate, observation fan-out, next activation phase.
    pub fn step(&mut self, pick: NodeId) -> Result<(), StepFault> {
        debug_assert!(self.is_active(pick));
        let i = pick as usize - 1;
        let msg = if self.asynchronous {
            self.frozen[i]
                .take()
                .expect("active asynchronous node has a frozen message")
        } else {
            self.nodes[i].compose(&self.views[i])
        };
        if msg.is_empty() {
            return Err(StepFault::EmptyMessage);
        }
        if msg.len() > self.budget as usize {
            return Err(StepFault::BudgetExceeded {
                bits: msg.len(),
                budget: self.budget,
            });
        }
        self.status[i] = Status::Terminated;
        let seq = self.board.len();
        self.board.push((pick, msg.clone()));
        for j in 0..self.nodes.len() {
            match self.status[j] {
                Status::Terminated => {}
                // An active asynchronous node's message is already frozen.
                Status::Active if self.asynchronous => {}
                _ => self.nodes[j].observe(&self.views[j], seq, pick, &msg),
            }
        }
        self.activation_phase();
        Ok(())
    }

    /// Execute one **crashed** write by `pick`: the message is composed and
    /// checked exactly as in [`Machine::step`] — a malformed message is a
    /// protocol bug whether or not the write then dies — but it never
    /// reaches the board and nobody observes it; the node terminates
    /// silently. Mirrors `Engine::step_crash` in `wb-runtime` without
    /// sharing any code with it.
    pub fn step_crash(&mut self, pick: NodeId) -> Result<(), StepFault> {
        debug_assert!(self.is_active(pick));
        let i = pick as usize - 1;
        let msg = if self.asynchronous {
            self.frozen[i]
                .take()
                .expect("active asynchronous node has a frozen message")
        } else {
            self.nodes[i].compose(&self.views[i])
        };
        if msg.is_empty() {
            return Err(StepFault::EmptyMessage);
        }
        if msg.len() > self.budget as usize {
            return Err(StepFault::BudgetExceeded {
                bits: msg.len(),
                budget: self.budget,
            });
        }
        self.status[i] = Status::Terminated;
        self.crashed.push(pick);
        self.activation_phase();
        Ok(())
    }

    /// Nodes whose write died so far, in crash order.
    pub fn crashed(&self) -> &[NodeId] {
        &self.crashed
    }

    /// The canonical configuration hash: statuses packed 2 bits per node,
    /// frozen-slot presence bitmap, frozen messages length-framed in node
    /// order, board length, then board entries `(writer, len, words…)` in
    /// ascending-writer order. Must match the engine's
    /// `canonical_fingerprint` word for word — the format spec is
    /// `docs/CERTIFICATES.md`, and the `fingerprint_parity` test in
    /// `tests/certificate.rs` pins the two implementations together.
    pub fn hash(&self) -> u128 {
        let mut d = Digest128::new();
        let (mut acc, mut filled) = (0u64, 0u32);
        for s in &self.status {
            let code = match s {
                Status::Awake => 0u64,
                Status::Active => 1,
                Status::Terminated => 2,
            };
            acc |= code << filled;
            filled += 2;
            if filled == 64 {
                d.put(acc);
                (acc, filled) = (0, 0);
            }
        }
        if filled > 0 {
            d.put(acc);
        }
        let (mut mask, mut bit) = (0u64, 0u32);
        for f in &self.frozen {
            if f.is_some() {
                mask |= 1 << bit;
            }
            bit += 1;
            if bit == 64 {
                d.put(mask);
                (mask, bit) = (0, 0);
            }
        }
        if bit > 0 {
            d.put(mask);
        }
        for f in self.frozen.iter().flatten() {
            d.put(f.len() as u64);
            for &w in f.as_words() {
                d.put(w);
            }
        }
        d.put(self.board.len() as u64);
        let mut by_writer: Vec<usize> = (0..self.board.len()).collect();
        by_writer.sort_by_key(|&i| self.board[i].0);
        for i in by_writer {
            let (writer, msg) = &self.board[i];
            d.put(u64::from(*writer));
            d.put(msg.len() as u64);
            for &w in msg.as_words() {
                d.put(w);
            }
        }
        d.finish()
    }

    /// Classify the current configuration (call when no node is active).
    pub fn outcome(&self) -> Outcome<P::Output> {
        if self.status.iter().all(|s| *s == Status::Terminated) {
            let board = Whiteboard::from_messages(self.board.iter().cloned());
            Outcome::Success(self.protocol.output(self.views.len(), &board))
        } else {
            Outcome::Deadlock {
                awake: self
                    .status
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s != Status::Terminated)
                    .map(|(i, _)| i as NodeId + 1)
                    .collect(),
            }
        }
    }
}
