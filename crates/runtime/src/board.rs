//! The shared whiteboard: an append-only sequence of bit-string messages.

use wb_graph::NodeId;
use wb_math::BitVec;

/// One written message. The `writer` field is engine metadata used by the
/// invariant checker and by adversaries (which are omniscient); protocols read
/// IDs from the message *bits* themselves, as in the paper where every message
/// starts with `ID(v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Engine metadata: who wrote this message.
    pub writer: NodeId,
    /// The message bits.
    pub msg: BitVec,
}

/// The whiteboard state `W`: the messages written so far, in write order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Whiteboard {
    entries: Vec<Entry>,
}

impl Whiteboard {
    /// The empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Messages written so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the board is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in write order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The `i`-th entry.
    pub fn entry(&self, i: usize) -> &Entry {
        &self.entries[i]
    }

    /// Assemble a board from `(writer, message)` pairs.
    ///
    /// This is **not** part of the node-facing model — it exists so that
    /// reductions (Theorems 3, 6, 8) can synthesize the whiteboard a simulated
    /// protocol *would* have produced and feed it to that protocol's output
    /// function.
    pub fn from_messages(entries: impl IntoIterator<Item = (NodeId, BitVec)>) -> Self {
        Whiteboard {
            entries: entries
                .into_iter()
                .map(|(writer, msg)| Entry { writer, msg })
                .collect(),
        }
    }

    /// Append a message (engine use).
    pub(crate) fn push(&mut self, writer: NodeId, msg: BitVec) {
        self.entries.push(Entry { writer, msg });
    }

    /// Total bits on the board — the quantity Lemma 3 bounds by `n·f(n)`.
    pub fn total_bits(&self) -> usize {
        self.entries.iter().map(|e| e.msg.len()).sum()
    }

    /// Largest single message in bits.
    pub fn max_message_bits(&self) -> usize {
        self.entries.iter().map(|e| e.msg.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_math::BitWriter;

    fn msg(bits: u64, width: u32) -> BitVec {
        let mut w = BitWriter::new();
        w.write_bits(bits, width);
        w.finish()
    }

    #[test]
    fn board_accumulates_in_order() {
        let mut b = Whiteboard::new();
        assert!(b.is_empty());
        b.push(3, msg(5, 4));
        b.push(1, msg(2, 8));
        assert_eq!(b.len(), 2);
        assert_eq!(b.entry(0).writer, 3);
        assert_eq!(b.entry(1).writer, 1);
        assert_eq!(b.total_bits(), 12);
        assert_eq!(b.max_message_bits(), 8);
    }

    #[test]
    fn empty_board_stats() {
        let b = Whiteboard::new();
        assert_eq!(b.total_bits(), 0);
        assert_eq!(b.max_message_bits(), 0);
    }

    #[test]
    fn from_messages_builds_simulation_boards() {
        let b = Whiteboard::from_messages(vec![(2, msg(1, 3)), (7, msg(0, 5))]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.entry(0).writer, 2);
        assert_eq!(b.entry(1).writer, 7);
        assert_eq!(b.entry(1).msg.len(), 5);
        // Equal content compares equal regardless of construction path.
        let mut manual = Whiteboard::new();
        manual.push(2, msg(1, 3));
        manual.push(7, msg(0, 5));
        assert_eq!(b, manual);
    }
}
