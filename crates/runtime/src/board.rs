//! The shared whiteboard: an append-only sequence of bit-string messages.

use wb_graph::NodeId;
use wb_math::BitVec;

/// One written message. The `writer` field is engine metadata used by the
/// invariant checker and by adversaries (which are omniscient); protocols read
/// IDs from the message *bits* themselves, as in the paper where every message
/// starts with `ID(v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Engine metadata: who wrote this message.
    pub writer: NodeId,
    /// The message bits.
    pub msg: BitVec,
}

/// The whiteboard state `W`: the messages written so far, in write order.
///
/// Alongside the write-ordered entries the board maintains a persistent
/// writer→entry index (`by_writer`), kept sorted on every push, so canonical
/// encoders can stream entries in writer order without a per-call sort or
/// allocation. Writers are unique (the one-write rule), so the order is
/// total; the index is a pure function of the entries, which keeps the
/// derived `PartialEq` consistent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Whiteboard {
    entries: Vec<Entry>,
    by_writer: Vec<u32>,
}

impl Whiteboard {
    /// The empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty board with room for `n` messages (one per node) — lets the
    /// engine pre-size the hot append path.
    pub fn with_capacity(n: usize) -> Self {
        Whiteboard {
            entries: Vec::with_capacity(n),
            by_writer: Vec::with_capacity(n),
        }
    }

    /// Messages written so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the board is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in write order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The `i`-th entry.
    pub fn entry(&self, i: usize) -> &Entry {
        &self.entries[i]
    }

    /// Assemble a board from `(writer, message)` pairs.
    ///
    /// This is **not** part of the node-facing model — it exists so that
    /// reductions (Theorems 3, 6, 8) can synthesize the whiteboard a simulated
    /// protocol *would* have produced and feed it to that protocol's output
    /// function.
    pub fn from_messages(entries: impl IntoIterator<Item = (NodeId, BitVec)>) -> Self {
        let entries: Vec<Entry> = entries
            .into_iter()
            .map(|(writer, msg)| Entry { writer, msg })
            .collect();
        let mut by_writer: Vec<u32> = (0..entries.len() as u32).collect();
        by_writer.sort_by_key(|&i| entries[i as usize].writer);
        Whiteboard { entries, by_writer }
    }

    /// The entries in ascending writer order (the persistent index — no sort,
    /// no allocation). Well-defined because the one-write rule makes writers
    /// unique; this is the iteration order of the canonical state encoding.
    pub fn entries_by_writer(&self) -> impl Iterator<Item = &Entry> + '_ {
        self.by_writer.iter().map(|&i| &self.entries[i as usize])
    }

    /// Append a message (engine use).
    pub(crate) fn push(&mut self, writer: NodeId, msg: BitVec) {
        let idx = self.entries.len() as u32;
        let pos = self
            .by_writer
            .partition_point(|&e| self.entries[e as usize].writer < writer);
        self.by_writer.insert(pos, idx);
        self.entries.push(Entry { writer, msg });
    }

    /// Remove and return the most recent entry (engine use: the undo log's
    /// inverse of [`Self::push`]).
    pub(crate) fn pop(&mut self) -> Option<Entry> {
        let entry = self.entries.pop()?;
        let idx = self.entries.len() as u32;
        let pos = self
            .by_writer
            .iter()
            .position(|&e| e == idx)
            .expect("writer index tracks entries");
        self.by_writer.remove(pos);
        Some(entry)
    }

    /// Total bits on the board — the quantity Lemma 3 bounds by `n·f(n)`.
    pub fn total_bits(&self) -> usize {
        self.entries.iter().map(|e| e.msg.len()).sum()
    }

    /// Largest single message in bits.
    pub fn max_message_bits(&self) -> usize {
        self.entries.iter().map(|e| e.msg.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_math::BitWriter;

    fn msg(bits: u64, width: u32) -> BitVec {
        let mut w = BitWriter::new();
        w.write_bits(bits, width);
        w.finish()
    }

    #[test]
    fn board_accumulates_in_order() {
        let mut b = Whiteboard::new();
        assert!(b.is_empty());
        b.push(3, msg(5, 4));
        b.push(1, msg(2, 8));
        assert_eq!(b.len(), 2);
        assert_eq!(b.entry(0).writer, 3);
        assert_eq!(b.entry(1).writer, 1);
        assert_eq!(b.total_bits(), 12);
        assert_eq!(b.max_message_bits(), 8);
    }

    #[test]
    fn empty_board_stats() {
        let b = Whiteboard::new();
        assert_eq!(b.total_bits(), 0);
        assert_eq!(b.max_message_bits(), 0);
    }

    #[test]
    fn writer_index_streams_entries_sorted() {
        let mut b = Whiteboard::with_capacity(4);
        for (w, bits) in [(3, 5), (1, 2), (4, 7), (2, 1)] {
            b.push(w, msg(bits, 4));
        }
        let writers: Vec<_> = b.entries_by_writer().map(|e| e.writer).collect();
        assert_eq!(writers, vec![1, 2, 3, 4]);
        // Write order is preserved independently of the index.
        let in_order: Vec<_> = b.entries().iter().map(|e| e.writer).collect();
        assert_eq!(in_order, vec![3, 1, 4, 2]);
    }

    #[test]
    fn pop_undoes_push_exactly() {
        let mut b = Whiteboard::new();
        b.push(2, msg(1, 3));
        let snapshot = b.clone();
        b.push(1, msg(6, 3));
        let popped = b.pop().expect("entry present");
        assert_eq!(popped.writer, 1);
        assert_eq!(b, snapshot);
        assert_eq!(
            b.entries_by_writer().map(|e| e.writer).collect::<Vec<_>>(),
            vec![2]
        );
        b.pop();
        assert!(b.pop().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn from_messages_indexes_writers() {
        let b = Whiteboard::from_messages(vec![(9, msg(0, 2)), (4, msg(1, 2)), (6, msg(2, 2))]);
        let writers: Vec<_> = b.entries_by_writer().map(|e| e.writer).collect();
        assert_eq!(writers, vec![4, 6, 9]);
    }

    #[test]
    fn from_messages_builds_simulation_boards() {
        let b = Whiteboard::from_messages(vec![(2, msg(1, 3)), (7, msg(0, 5))]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.entry(0).writer, 2);
        assert_eq!(b.entry(1).writer, 7);
        assert_eq!(b.entry(1).msg.len(), 5);
        // Equal content compares equal regardless of construction path.
        let mut manual = Whiteboard::new();
        manual.push(2, msg(1, 3));
        manual.push(7, msg(0, 5));
        assert_eq!(b, manual);
    }
}
