//! Write schedulers ("an external entity, an adversary, adds to the whiteboard
//! the message … of some active node").
//!
//! Adversaries are omniscient: they see the full board (including writer
//! metadata) and the current active set. Positive results in the paper
//! quantify over all adversaries; tests combine the samplers here with the
//! exhaustive executor in [`crate::exhaustive`].

use crate::board::Whiteboard;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use wb_graph::NodeId;

/// A scheduler choosing, each round, which active node writes.
///
/// # Contract
///
/// Callers must only invoke [`pick`](Adversary::pick) with a **non-empty**
/// `active` slice, sorted ascending. The engine upholds this by construction:
/// a round with no active node is a terminal (or corrupted) configuration and
/// the round loop stops before consulting the adversary. Implementations are
/// therefore free to index into `active` without checking; the ones shipped
/// here carry `debug_assert!`s that name the offending adversary so a contract
/// violation in a new caller fails with a diagnosis instead of a bare
/// out-of-bounds index or `unwrap` panic.
pub trait Adversary {
    /// Pick one of `active` (non-empty, sorted ascending).
    fn pick(&mut self, active: &[NodeId], board: &Whiteboard) -> NodeId;
}

/// Always picks the smallest active ID.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinIdAdversary;

impl Adversary for MinIdAdversary {
    fn pick(&mut self, active: &[NodeId], _board: &Whiteboard) -> NodeId {
        debug_assert!(
            !active.is_empty(),
            "MinIdAdversary::pick called with an empty active set (caller broke the \
             non-empty contract on Adversary::pick)"
        );
        active[0]
    }
}

/// Always picks the largest active ID.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxIdAdversary;

impl Adversary for MaxIdAdversary {
    fn pick(&mut self, active: &[NodeId], _board: &Whiteboard) -> NodeId {
        debug_assert!(
            !active.is_empty(),
            "MaxIdAdversary::pick called with an empty active set (caller broke the \
             non-empty contract on Adversary::pick)"
        );
        *active.last().expect("non-empty active set")
    }
}

/// Picks uniformly at random from the active set (seeded, reproducible).
#[derive(Clone, Debug)]
pub struct RandomAdversary {
    rng: StdRng,
}

impl RandomAdversary {
    /// A reproducible random adversary.
    pub fn new(seed: u64) -> Self {
        RandomAdversary {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomAdversary {
    fn pick(&mut self, active: &[NodeId], _board: &Whiteboard) -> NodeId {
        active[self.rng.gen_range(0..active.len())]
    }
}

/// An adaptive, schedule-skewing adversary (seeded, reproducible).
///
/// Each round it flips a three-way coin:
///
/// - **starve** (p = ½): pick the *largest* active ID, delaying small IDs —
///   protocols that implicitly privilege early IDs see their worst case;
/// - **chase** (p = ¼): pick the active ID closest to the most recent
///   writer, creating the bursty, correlated write runs that uniform
///   sampling essentially never generates;
/// - **uniform** (p = ¼): a uniformly random pick, so every schedule still
///   has positive probability and the sampler's support stays complete.
///
/// Historically `wb_sim`'s ad-hoc "crashy" sampler; it lives here with the
/// rest of the adversary toolkit now that faults proper are first-class
/// ([`crate::fault`]) — it is a *scheduling* strategy, not a fault plan, and
/// composes freely with `--faults`. The seeded pick sequence is pinned
/// bit-for-bit by a golden test in `wb-sim` (the CLI name `crashy` and every
/// recorded campaign seed stay valid).
#[derive(Clone, Debug)]
pub struct CrashyAdversary {
    rng: StdRng,
}

impl CrashyAdversary {
    /// A reproducible crashy adversary.
    pub fn new(seed: u64) -> Self {
        CrashyAdversary {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for CrashyAdversary {
    fn pick(&mut self, active: &[NodeId], board: &Whiteboard) -> NodeId {
        let roll = self.rng.gen_range(0..4u32);
        if roll < 2 {
            return *active.last().expect("active set is non-empty");
        }
        if roll == 2 {
            if let Some(last) = board.entries().last() {
                return *active
                    .iter()
                    .min_by_key(|&&v| (v.abs_diff(last.writer), v))
                    .expect("active set is non-empty");
            }
        }
        active[self.rng.gen_range(0..active.len())]
    }
}

/// Picks according to a fixed priority permutation: the active node appearing
/// earliest in `priority` wins. With `priority = [σ(1)…σ(n)]` this realizes the
/// "fix an order and activate sequentially" constructions of Lemma 4.
#[derive(Clone, Debug)]
pub struct PriorityAdversary {
    rank: Vec<u32>,
}

impl PriorityAdversary {
    /// Build from a permutation of `1..=n` (highest priority first).
    pub fn new(priority: &[NodeId]) -> Self {
        let n = priority.len();
        let mut rank = vec![u32::MAX; n + 1];
        for (i, &v) in priority.iter().enumerate() {
            assert!(
                v >= 1 && (v as usize) <= n,
                "priority entry {v} out of range"
            );
            assert!(rank[v as usize] == u32::MAX, "duplicate priority entry {v}");
            rank[v as usize] = i as u32;
        }
        PriorityAdversary { rank }
    }

    /// A uniformly random priority permutation (seeded).
    pub fn random(n: usize, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<NodeId> = (1..=n as NodeId).collect();
        perm.shuffle(&mut rng);
        Self::new(&perm)
    }
}

impl Adversary for PriorityAdversary {
    fn pick(&mut self, active: &[NodeId], _board: &Whiteboard) -> NodeId {
        *active
            .iter()
            .min_by_key(|&&v| self.rank.get(v as usize).copied().unwrap_or(u32::MAX))
            .unwrap()
    }
}

/// Why a strict schedule replay could not produce the next pick.
///
/// Returned by [`ScheduleAdversary::try_pick`]; either variant means the
/// recording no longer matches the protocol/graph it was made against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The run asked for another pick after the recording ran out.
    Exhausted {
        /// Recorded picks consumed before the recording ran out.
        consumed: usize,
        /// The active set at the failing round.
        active: Vec<NodeId>,
    },
    /// The recorded node was not active when its turn came.
    NotActive {
        /// 1-based index of the failing pick in the recording.
        index: usize,
        /// The recorded node that could not write.
        choice: NodeId,
        /// The active set at the failing round.
        active: Vec<NodeId>,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Exhausted { consumed, active } => write!(
                f,
                "replay schedule exhausted after {consumed} picks but the run wants another \
                 (active: {active:?})"
            ),
            ReplayError::NotActive {
                index,
                choice,
                active,
            } => write!(
                f,
                "replay schedule pick #{index} is node {choice}, which is not active \
                 (active: {active:?})"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a recorded write order verbatim — the deterministic replay path
/// for witness schedules produced by the exhaustive explorer (see
/// `crate::exhaustive::ScheduleFailure`) and for regression-corpus fixtures.
///
/// The strict-replay path is [`try_pick`](ScheduleAdversary::try_pick), which
/// reports a mismatch as a structured [`ReplayError`] instead of reaching the
/// infallible [`pick`](Adversary::pick) with nothing runnable. The trait
/// method delegates to it and panics with the same message if the recorded
/// node is not active when its turn comes, or if the run outlives the
/// recording: either means the fixture no longer matches the protocol/graph
/// it was recorded against, which is itself a regression worth failing loudly
/// on.
#[derive(Clone, Debug)]
pub struct ScheduleAdversary {
    schedule: Vec<NodeId>,
    next: usize,
}

impl ScheduleAdversary {
    /// Replay `schedule` (the picks, in write order).
    pub fn new(schedule: impl Into<Vec<NodeId>>) -> Self {
        ScheduleAdversary {
            schedule: schedule.into(),
            next: 0,
        }
    }

    /// How many recorded picks have been consumed.
    pub fn consumed(&self) -> usize {
        self.next
    }

    /// The next recorded pick, or a structured error when the recording has
    /// run out or names a node that is not currently active. Consumes the
    /// pick only on success.
    pub fn try_pick(&mut self, active: &[NodeId]) -> Result<NodeId, ReplayError> {
        let Some(&choice) = self.schedule.get(self.next) else {
            return Err(ReplayError::Exhausted {
                consumed: self.next,
                active: active.to_vec(),
            });
        };
        if !active.contains(&choice) {
            return Err(ReplayError::NotActive {
                index: self.next + 1,
                choice,
                active: active.to_vec(),
            });
        }
        self.next += 1;
        Ok(choice)
    }
}

impl Adversary for ScheduleAdversary {
    fn pick(&mut self, active: &[NodeId], _board: &Whiteboard) -> NodeId {
        match self.try_pick(active) {
            Ok(choice) => choice,
            Err(err) => panic!("{err}"),
        }
    }
}

/// Follows a recorded write order as a *hint list* instead of a contract:
/// each round it picks the earliest hint that is currently active, and falls
/// back to the smallest active ID when no hint applies. Unlike
/// [`ScheduleAdversary`] it never panics, so arbitrarily mutated schedules
/// (chunks deleted, prefixes truncated, picks transposed) always replay to
/// *some* complete run — the property the delta-debugging schedule shrinker
/// (`wb-sim`) is built on. The run's `write_order` records the schedule that
/// actually executed, which is what the shrinker keeps as its next witness.
#[derive(Clone, Debug)]
pub struct LenientScheduleAdversary {
    hints: Vec<NodeId>,
}

impl LenientScheduleAdversary {
    /// Treat `hints` as a preference order over future picks.
    pub fn new(hints: impl Into<Vec<NodeId>>) -> Self {
        LenientScheduleAdversary {
            hints: hints.into(),
        }
    }
}

impl Adversary for LenientScheduleAdversary {
    fn pick(&mut self, active: &[NodeId], _board: &Whiteboard) -> NodeId {
        // Only the matched hint is consumed: a hint skipped because its node
        // has not activated *yet* stays eligible for later rounds (free
        // models), while a hint naming an already-written node can never
        // match again and is merely re-skipped.
        for (i, &h) in self.hints.iter().enumerate() {
            if active.contains(&h) {
                self.hints.remove(i);
                return h;
            }
        }
        active[0]
    }
}

/// An adversary from a closure — for one-off malicious strategies in tests
/// and experiments without a dedicated type.
pub struct FnAdversary<F>(pub F);

impl<F> Adversary for FnAdversary<F>
where
    F: FnMut(&[NodeId], &Whiteboard) -> NodeId,
{
    fn pick(&mut self, active: &[NodeId], board: &Whiteboard) -> NodeId {
        let choice = (self.0)(active, board);
        debug_assert!(
            active.contains(&choice),
            "FnAdversary chose a non-active node"
        );
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> Whiteboard {
        Whiteboard::new()
    }

    #[test]
    fn fn_adversary_wraps_closures() {
        // "Pick the median active node."
        let mut adv = FnAdversary(|active: &[NodeId], _: &Whiteboard| active[active.len() / 2]);
        assert_eq!(adv.pick(&[1, 5, 9], &board()), 5);
        assert_eq!(adv.pick(&[2, 4], &board()), 4);
    }

    #[test]
    fn min_max_pick_extremes() {
        let active = vec![2, 5, 9];
        assert_eq!(MinIdAdversary.pick(&active, &board()), 2);
        assert_eq!(MaxIdAdversary.pick(&active, &board()), 9);
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let active = vec![1, 4, 7, 8];
        let picks1: Vec<NodeId> = (0..20)
            .scan(RandomAdversary::new(42), |a, _| {
                Some(a.pick(&active, &board()))
            })
            .collect();
        let picks2: Vec<NodeId> = (0..20)
            .scan(RandomAdversary::new(42), |a, _| {
                Some(a.pick(&active, &board()))
            })
            .collect();
        assert_eq!(picks1, picks2);
        assert!(picks1.iter().all(|p| active.contains(p)));
        // Not constant (overwhelmingly likely with 20 draws from 4 options).
        assert!(picks1.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn priority_respects_permutation() {
        let mut adv = PriorityAdversary::new(&[3, 1, 4, 2]);
        assert_eq!(adv.pick(&[1, 2, 3, 4], &board()), 3);
        assert_eq!(adv.pick(&[1, 2, 4], &board()), 1);
        assert_eq!(adv.pick(&[2, 4], &board()), 4);
        assert_eq!(adv.pick(&[2], &board()), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn priority_rejects_duplicates() {
        PriorityAdversary::new(&[1, 1, 2]);
    }

    #[test]
    fn schedule_adversary_replays_verbatim() {
        let mut adv = ScheduleAdversary::new(vec![3, 1, 2]);
        assert_eq!(adv.pick(&[1, 2, 3], &board()), 3);
        assert_eq!(adv.pick(&[1, 2], &board()), 1);
        assert_eq!(adv.consumed(), 2);
        assert_eq!(adv.pick(&[2], &board()), 2);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn schedule_adversary_rejects_stale_recordings() {
        let mut adv = ScheduleAdversary::new(vec![5]);
        adv.pick(&[1, 2], &board());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn schedule_adversary_rejects_overlong_runs() {
        let mut adv = ScheduleAdversary::new(vec![1]);
        adv.pick(&[1], &board());
        adv.pick(&[2], &board());
    }

    #[test]
    fn try_pick_reports_structured_replay_errors() {
        let mut adv = ScheduleAdversary::new(vec![3, 5]);
        assert_eq!(adv.try_pick(&[1, 3]), Ok(3));
        assert_eq!(
            adv.try_pick(&[1, 2]),
            Err(ReplayError::NotActive {
                index: 2,
                choice: 5,
                active: vec![1, 2],
            })
        );
        // A failed pick is not consumed; it succeeds once node 5 activates.
        assert_eq!(adv.consumed(), 1);
        assert_eq!(adv.try_pick(&[5]), Ok(5));
        let err = adv.try_pick(&[1]).unwrap_err();
        assert_eq!(
            err,
            ReplayError::Exhausted {
                consumed: 2,
                active: vec![1],
            }
        );
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn lenient_adversary_follows_applicable_hints() {
        let mut adv = LenientScheduleAdversary::new(vec![3, 1, 2]);
        assert_eq!(adv.pick(&[1, 2, 3], &board()), 3);
        assert_eq!(adv.pick(&[1, 2], &board()), 1);
        assert_eq!(adv.pick(&[2], &board()), 2);
    }

    #[test]
    fn lenient_adversary_skips_inactive_hints_without_consuming_them() {
        // Hint 5 is not active on the first pick but becomes active later:
        // it must still be honored then, ahead of the min-ID fallback.
        let mut adv = LenientScheduleAdversary::new(vec![5, 2]);
        assert_eq!(adv.pick(&[1, 2], &board()), 2);
        assert_eq!(adv.pick(&[1, 5], &board()), 5);
        // Hints exhausted: min-ID fallback.
        assert_eq!(adv.pick(&[1, 4], &board()), 1);
    }

    #[test]
    fn lenient_adversary_never_panics_on_garbage_hints() {
        let mut adv = LenientScheduleAdversary::new(vec![9, 9, 9]);
        assert_eq!(adv.pick(&[2, 3], &board()), 2, "fallback, no panic");
        assert_eq!(adv.pick(&[3], &board()), 3);
    }

    #[test]
    fn random_priority_is_permutation() {
        let adv = PriorityAdversary::random(6, 7);
        let mut seen: Vec<u32> = adv.rank[1..].to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }
}
