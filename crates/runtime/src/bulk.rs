//! The **bulk tier**: columnar, cache-friendly execution of whiteboard
//! protocols at `n ≥ 10⁵`.
//!
//! The stepwise [`Engine`](crate::Engine) is built for *adversary
//! quantification*: per-node [`LocalView`] objects, savepoints, canonical
//! encodings. Its observation fan-out delivers every new board entry to all
//! surviving nodes — `O(n)` work per write, `O(n²)` per execution — which is
//! the right trade for exploring schedules at `n ≤ 8` and sampling them at
//! `n ≈ 10²`, and the wrong one for *running* a protocol once at `n = 10⁵`.
//!
//! This module is the third execution tier. A protocol must be
//! **simultaneous-native** to have a columnar form, but it can be executed
//! under *any* model of the Lemma 4 chain at or above its native one —
//! including the free targets `ASYNC` and `SYNC`, where the seeded schedule
//! plays the adversary:
//!
//! - node state lives in one columnar [`BulkProtocol::State`] value (arrays
//!   indexed by node, not `n` boxed state machines);
//! - the board is a [`BulkBoard`]: messages concatenated bit-packed into
//!   **shards**, appended through `wb_par`'s striped writers instead of one
//!   entry allocation per message;
//! - `SIMASYNC`-native rounds are embarrassingly parallel (messages depend
//!   only on local views, under every target model), so whole batches of
//!   rounds execute concurrently, one batch per board shard;
//! - `SIMSYNC`-native rounds are data-dependent and run as an **event-driven
//!   stream of per-node ready events** (the internal `ReadyEvents`): under the
//!   synchronous targets every node is ready from round 1 and the schedule
//!   is the event stream; under an `ASYNC` target the Lemma 4
//!   sequential-activation chain releases one ready event per landed write.
//!   Either way each write is digested **incrementally** by
//!   [`BulkProtocol::observe`] in `O(deg v)` — the total run is
//!   `O(n + m + board bits)`, not `O(n²)`.
//!
//! Any `SIMASYNC` step protocol gets bulk execution for free through the
//! [`Oblivious`] adapter; `SIMSYNC` protocols implement the columnar trait
//! by hand (see `wb-core`'s `bulk` module for rooted MIS and 2-CLIQUES).
//! Fidelity to the step engine is pinned by the root crate's `tests/bulk.rs`
//! and `tests/bulk_free_order.rs` differentials: same schedule ⇒ same
//! outcome and same board, on every graph up to `n = 5`, under every
//! supported target model.

use crate::board::Whiteboard;
use crate::engine::Outcome;
use crate::model::Model;
use crate::protocol::{LocalView, Node, Protocol};
use std::fmt;
use wb_graph::{Graph, NodeId};
use wb_math::{BitReader, BitVec};

/// A protocol in columnar ("struct of arrays") form, executable by
/// [`run_bulk`] under its native simultaneous model or any stronger target.
///
/// The contract mirrors [`Protocol`], with the per-node state machine
/// replaced by one shared state value:
///
/// - [`Self::compose`] produces node `v`'s single message. For a
///   `SIMASYNC`-native protocol it is called **before any write** (possibly
///   in parallel) and must depend only on instance data in the state, never
///   on fields updated by [`Self::observe`]. For a `SIMSYNC`-native protocol
///   it is called in write order and sees the state updated by every earlier
///   landed write.
/// - [`Self::observe`] digests one write into the state. It is called only
///   for `SIMSYNC`-native protocols, once per landed write, in write order,
///   and should cost `O(deg v + |msg|)` — this is where the bulk tier beats
///   the step engine's `O(n)`-per-write observation fan-out.
/// - [`Self::output`] is the referee: it sees `n` and the final board only,
///   exactly like [`Protocol::output`].
pub trait BulkProtocol {
    /// Columnar execution state (arrays indexed by node, the instance graph,
    /// counters). `Send + Sync` so `SIMASYNC` compose batches can fan out.
    type State: Send + Sync;
    /// The problem's answer type.
    type Output;

    /// The native model; must be simultaneous
    /// ([`Model::is_simultaneous`]) — [`run_bulk`] refuses free-native
    /// protocols with an [`UnsupportedBulkModel`] error.
    fn model(&self) -> Model;

    /// Maximum message size in bits on `n`-node inputs, enforced per message
    /// by [`run_bulk`] exactly as the step engine enforces
    /// [`Protocol::budget_bits`].
    fn budget_bits(&self, n: usize) -> u32;

    /// Build the columnar state for one instance.
    fn init(&self, g: &Graph) -> Self::State;

    /// Compose node `v`'s single message (see the trait docs for when this
    /// may read observation state).
    fn compose(&self, state: &Self::State, v: NodeId) -> BitVec;

    /// Digest the write of `v` into the state (`SIMSYNC` only; never called
    /// under `SIMASYNC`, whose nodes are never shown the board).
    fn observe(&self, state: &mut Self::State, v: NodeId, msg: &BitVec);

    /// The output function `out(W)` over the final bulk board.
    fn output(&self, n: usize, board: &BulkBoard) -> Self::Output;
}

/// Bulk execution for any `SIMASYNC` step protocol, for free.
///
/// A `SIMASYNC` node never observes, so its message is a pure function of
/// its [`LocalView`] — the adapter builds a transient view per node, spawns
/// the step node, and takes its composed message. Output delegates to the
/// step protocol over a materialized [`Whiteboard`], so the referee logic
/// exists in exactly one place.
///
/// ```
/// use wb_runtime::bulk::{run_bulk, shuffled_schedule, BulkConfig, Oblivious};
/// use wb_runtime::Outcome;
/// # use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};
/// # use wb_math::BitVec;
/// # #[derive(Clone)] struct N(u64);
/// # impl Node for N {
/// #     fn observe(&mut self, _: &LocalView, _: usize, _: u32, _: &BitVec) {}
/// #     fn compose(&mut self, _: &LocalView) -> BitVec {
/// #         let mut w = wb_math::BitWriter::new(); w.write_bits(self.0, 7); w.finish()
/// #     }
/// # }
/// # struct DegreeSum;
/// # impl Protocol for DegreeSum {
/// #     type Node = N; type Output = usize;
/// #     fn model(&self) -> Model { Model::SimAsync }
/// #     fn budget_bits(&self, _: usize) -> u32 { 7 }
/// #     fn spawn(&self, view: &LocalView) -> N { N(view.degree() as u64) }
/// #     fn output(&self, _: usize, b: &Whiteboard) -> usize {
/// #         b.entries().iter().map(|e| e.msg.get_bits(0, 7) as usize).sum()
/// #     }
/// # }
/// let g = wb_graph::generators::cycle(64);
/// let schedule = shuffled_schedule(g.n(), 7);
/// let report = run_bulk(&Oblivious::new(DegreeSum), &g, &schedule, None, &BulkConfig::default())
///     .expect("native model is always a supported target");
/// assert_eq!(report.outcome, Outcome::Success(128)); // Σ deg = 2m
/// assert_eq!(report.rounds, 64);
/// assert_eq!(report.write_order, schedule);
/// ```
pub struct Oblivious<P> {
    inner: P,
}

impl<P: Protocol> Oblivious<P> {
    /// Wrap `inner`, which must be `SIMASYNC`-native.
    pub fn new(inner: P) -> Self {
        assert_eq!(
            inner.model(),
            Model::SimAsync,
            "Oblivious adapts SIMASYNC protocols; implement BulkProtocol \
             directly for observation-dependent models"
        );
        Oblivious { inner }
    }

    /// The wrapped step protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// State of an [`Oblivious`] run: the instance graph (views are built
/// transiently per compose).
pub struct ObliviousState {
    g: Graph,
}

impl<P> BulkProtocol for Oblivious<P>
where
    P: Protocol + Sync,
{
    type State = ObliviousState;
    type Output = P::Output;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        self.inner.budget_bits(n)
    }

    fn init(&self, g: &Graph) -> ObliviousState {
        ObliviousState { g: g.clone() }
    }

    fn compose(&self, state: &ObliviousState, v: NodeId) -> BitVec {
        let view = LocalView {
            id: v,
            n: state.g.n(),
            neighbors: state.g.neighbors(v).to_vec(),
        };
        self.inner.spawn(&view).compose(&view)
    }

    fn observe(&self, _state: &mut ObliviousState, _v: NodeId, _msg: &BitVec) {
        // Oblivious messages ignore the board: a SIMASYNC-native protocol
        // never observes under any target model, so the engine never calls
        // this — kept total for trait completeness.
    }

    fn output(&self, n: usize, board: &BulkBoard) -> P::Output {
        self.inner.output(n, &board.to_whiteboard())
    }
}

/// One message recorded in a [`BulkShard`]: who wrote it and where its bits
/// live inside the shard's packed payload.
#[derive(Clone, Copy, Debug)]
struct ShardEntry {
    writer: NodeId,
    /// Bit offset of the message inside the shard payload.
    offset: u64,
    /// Message length in bits.
    len: u32,
}

/// One shard of the bulk board: a batch of consecutive writes, bit-packed
/// into a single payload vector plus a small index.
#[derive(Default)]
pub struct BulkShard {
    bits: BitVec,
    entries: Vec<ShardEntry>,
}

impl BulkShard {
    fn with_capacity(messages: usize) -> Self {
        BulkShard {
            bits: BitVec::new(),
            entries: Vec::with_capacity(messages),
        }
    }

    fn push(&mut self, writer: NodeId, msg: &BitVec) {
        self.entries.push(ShardEntry {
            writer,
            offset: self.bits.len() as u64,
            len: msg.len() as u32,
        });
        self.bits.extend_bits(msg);
    }

    /// Messages in this shard.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the shard holds no messages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bits in this shard.
    pub fn payload_bits(&self) -> usize {
        self.bits.len()
    }
}

/// A borrowed view of one bulk-board message.
#[derive(Clone, Copy)]
pub struct BulkEntry<'a> {
    /// Who wrote the message.
    pub writer: NodeId,
    shard: &'a BulkShard,
    offset: u64,
    len: u32,
}

impl<'a> BulkEntry<'a> {
    /// Message length in bits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the message is the empty word (never true for a written
    /// entry — the engine rejects empty writes).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A field reader positioned at the start of this message. Reading past
    /// `self.len()` bits is a protocol bug (the reader does not clamp at the
    /// message boundary; the next message's bits follow).
    pub fn reader(&self) -> BitReader<'a> {
        BitReader::with_offset(&self.shard.bits, self.offset as usize)
    }

    /// Copy the message out as a standalone bit string.
    pub fn to_bitvec(&self) -> BitVec {
        self.reader().read_bitvec(self.len as usize)
    }
}

/// The sharded whiteboard of a bulk run.
///
/// Messages are appended in global write order, `config.batch` per shard;
/// within a shard the payload bits are contiguous, so a shard of `k`
/// messages costs one growing bit vector and `k` index slots instead of `k`
/// heap entries. Iteration yields entries in write order (shards in order,
/// entries in order within each shard).
#[derive(Default)]
pub struct BulkBoard {
    shards: Vec<BulkShard>,
    len: usize,
    max_message_bits: usize,
}

impl BulkBoard {
    /// Messages written.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the board is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total bits on the board — the quantity Lemma 3 bounds by `n·f(n)`.
    pub fn total_bits(&self) -> usize {
        self.shards.iter().map(|s| s.bits.len()).sum()
    }

    /// Largest single message in bits.
    pub fn max_message_bits(&self) -> usize {
        self.max_message_bits
    }

    /// Bytes of packed message payload across all shards (what the bench
    /// harness reports as "board bytes"; the per-message index adds
    /// [`Self::index_bytes`] on top).
    pub fn payload_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bits.len().div_ceil(8)).sum()
    }

    /// Bytes of per-message index (writer + offset + length per entry).
    pub fn index_bytes(&self) -> usize {
        self.len * std::mem::size_of::<ShardEntry>()
    }

    /// The entries in write order.
    pub fn entries(&self) -> impl Iterator<Item = BulkEntry<'_>> + '_ {
        self.shards.iter().flat_map(|shard| {
            shard.entries.iter().map(move |e| BulkEntry {
                writer: e.writer,
                shard,
                offset: e.offset,
                len: e.len,
            })
        })
    }

    /// Materialize as a step-engine [`Whiteboard`] (same messages, same
    /// write order). This is how [`Oblivious`] reuses step-protocol output
    /// functions; it costs one message copy, paid once at referee time.
    pub fn to_whiteboard(&self) -> Whiteboard {
        Whiteboard::from_messages(self.entries().map(|e| (e.writer, e.to_bitvec())))
    }

    fn from_shards(shards: Vec<BulkShard>) -> Self {
        let len = shards.iter().map(BulkShard::len).sum();
        let max_message_bits = shards
            .iter()
            .flat_map(|s| s.entries.iter())
            .map(|e| e.len as usize)
            .max()
            .unwrap_or(0);
        BulkBoard {
            shards,
            len,
            max_message_bits,
        }
    }
}

/// Tuning knobs for [`run_bulk`].
#[derive(Clone, Debug)]
pub struct BulkConfig {
    /// Messages per board shard — also the `SIMASYNC` compose-batch grain.
    /// Purely a performance knob: the board contents and the report are
    /// identical for any value ≥ 1.
    pub batch: usize,
    /// Worker-pool width for the parallel (`SIMASYNC`-native) compose path;
    /// `None` uses [`wb_par::num_threads`]. Purely a performance knob: the
    /// report is identical for any width ≥ 1 (the determinism property test
    /// sweeps it).
    pub threads: Option<usize>,
}

impl Default for BulkConfig {
    fn default() -> Self {
        BulkConfig {
            batch: 4096,
            threads: None,
        }
    }
}

impl BulkConfig {
    /// Set the shard/batch grain (clamped to ≥ 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Pin the parallel compose path to `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// A bulk execution was requested under a model the protocol cannot run in:
/// either the protocol is free-native (no columnar form exists — use the
/// step tiers) or the requested target sits **below** the native model in
/// the Lemma 4 chain (a demotion). Returned by [`run_bulk`] /
/// [`run_bulk_crashed`] so every front end — the CLI, the serve daemon, the
/// campaign driver — refuses with the same words instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedBulkModel {
    /// The protocol's native model.
    pub native: Model,
    /// The model the execution was requested under (the native model when no
    /// explicit target was given).
    pub requested: Model,
}

impl UnsupportedBulkModel {
    /// The models the protocol *can* bulk-run under, weakest first — its
    /// native model and everything above it in the Lemma 4 chain. Empty for
    /// a free-native protocol, which has no columnar form at all.
    pub fn supported(&self) -> Vec<Model> {
        if !self.native.is_simultaneous() {
            return Vec::new();
        }
        Model::ALL
            .into_iter()
            .filter(|m| m.includes(self.native))
            .collect()
    }
}

impl fmt::Display for UnsupportedBulkModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.native.is_simultaneous() {
            return write!(
                f,
                "the bulk tier has no columnar form for {}-native protocols; \
                 run them on the step tiers instead",
                self.native
            );
        }
        let supported = self.supported();
        let (init, last) = supported.split_at(supported.len() - 1);
        let init = init
            .iter()
            .map(Model::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            f,
            "cannot demote {} protocol to {}; the bulk tier runs it under \
             {init} or {} only",
            self.native, self.requested, last[0]
        )
    }
}

impl std::error::Error for UnsupportedBulkModel {}

/// Resolve the model a bulk execution will run under: `target` if given,
/// else the protocol's `native` model. Errors when `native` is free (no
/// columnar form) or when the request is a demotion — the same check
/// [`run_bulk`] applies, exposed so front ends can refuse before building
/// schedules or sampling faults.
pub fn bulk_model(native: Model, target: Option<Model>) -> Result<Model, UnsupportedBulkModel> {
    let requested = target.unwrap_or(native);
    if !native.is_simultaneous() || !requested.includes(native) {
        return Err(UnsupportedBulkModel { native, requested });
    }
    Ok(requested)
}

/// Result of one bulk execution.
pub struct BulkReport<O> {
    /// [`Outcome::Success`] on every complete execution. A deadlock
    /// (corrupted configuration) is reachable in exactly one bulk shape: a
    /// `SIMSYNC`-native protocol under an `ASYNC` target runs the Lemma 4
    /// sequential-activation chain, and a crashed write stalls it — every
    /// node behind the victim stays awake forever, mirroring the step
    /// engine's [`Outcome::Deadlock`] bit for bit.
    pub outcome: Outcome<O>,
    /// Write events executed (`n` for every complete run; the stall point
    /// when a crash deadlocks the sequential-activation chain).
    pub rounds: usize,
    /// The **executed** write order, crashed writes included — what a step
    /// engine run of the same execution records. Equal to the input schedule
    /// under every simultaneous or `SYNC` execution; under an `ASYNC` target
    /// the sequential-activation chain forces identity order, whatever the
    /// schedule said. This is the replay witness campaigns record.
    pub write_order: Vec<NodeId>,
    /// Nodes whose write crashed, in execution order — empty for
    /// [`run_bulk`], the victims of [`run_bulk_crashed`] otherwise (only
    /// victims that actually executed: a chain stall stops at the first).
    pub crashed: Vec<NodeId>,
    /// The final sharded board.
    pub board: BulkBoard,
}

impl<O> BulkReport<O> {
    /// Largest message written, in bits.
    pub fn max_message_bits(&self) -> usize {
        self.board.max_message_bits()
    }

    /// Total bits on the final board.
    pub fn total_bits(&self) -> usize {
        self.board.total_bits()
    }
}

/// The identity schedule `v_1, …, v_n`.
pub fn identity_schedule(n: usize) -> Vec<NodeId> {
    (1..=n as NodeId).collect()
}

/// A seeded uniformly random schedule (Fisher–Yates over the identity).
///
/// Under a simultaneous model the active set is always "everyone not yet
/// written", so picking uniformly among actives round by round *is* drawing
/// a uniformly random permutation — this is the bulk tier's counterpart of
/// the campaign engine's uniform sampler.
pub fn shuffled_schedule(n: usize, seed: u64) -> Vec<NodeId> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order = identity_schedule(n);
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
    order
}

fn check_message(v: NodeId, msg: &BitVec, budget: u32) {
    assert!(
        !msg.is_empty(),
        "node {v} produced the empty word; a write must change the board"
    );
    assert!(
        msg.len() <= budget as usize,
        "node {v} wrote {} bits, exceeding the declared budget of {budget} bits",
        msg.len()
    );
}

/// The per-node **ready-event stream** of one event-driven bulk execution.
///
/// The bulk tier has no per-round activation poll — at `n = 10⁵` even an
/// `O(n)` scan per write would be `Θ(n²)`. Instead the scheduler asks this
/// stream which write event fires next, and reports each landed write back
/// so activation rules that depend on the board can release their successor
/// event. Both disciplines the model lattice induces are `O(1)` per event:
///
/// - under the models where every node is ready from round 1 (`SIMSYNC`
///   target, or a `SYNC` target where the promoted node's activation
///   predicate is constant-true), the adversary's schedule *is* the event
///   stream — the picked node is always the schedule's next entry;
/// - under an `ASYNC` target, a `SIMSYNC`-native protocol runs Lemma 4's
///   sequential-activation chain: node `i` becomes ready only once `i − 1`
///   messages are on the board, so exactly one ready event is pending at a
///   time and the executed write order is the identity — whatever the
///   adversary's schedule says. A crashed write leaves no board entry, so
///   the successor event is never released and the chain **stalls**: the
///   scheduler surfaces that as the step engine's deadlock.
enum ReadyEvents<'s> {
    /// Every node ready from round 1; the schedule is the event stream.
    All(std::slice::Iter<'s, NodeId>),
    /// The sequential-activation chain: `next` is the single pending ready
    /// event; `stalled` is set when a crash withholds the successor.
    Chain {
        next: NodeId,
        n: usize,
        stalled: bool,
    },
}

impl<'s> ReadyEvents<'s> {
    fn new(native: Model, model: Model, schedule: &'s [NodeId]) -> Self {
        if native == Model::SimSync && model == Model::Async {
            ReadyEvents::Chain {
                next: 1,
                n: schedule.len(),
                stalled: false,
            }
        } else {
            ReadyEvents::All(schedule.iter())
        }
    }

    /// The node whose write event fires next, or `None` when no node is
    /// ready (all done, or the chain stalled).
    fn next(&mut self) -> Option<NodeId> {
        match self {
            ReadyEvents::All(events) => events.next().copied(),
            ReadyEvents::Chain { next, n, stalled } => {
                if *stalled || *next as usize > *n {
                    None
                } else {
                    Some(*next)
                }
            }
        }
    }

    /// Report the fired event's fate: a landed write wakes whatever the
    /// activation rule now permits; a crashed write wakes nothing (which
    /// stalls the chain for good).
    fn settle(&mut self, landed: bool) {
        if let ReadyEvents::Chain { next, stalled, .. } = self {
            if landed {
                *next += 1;
            } else {
                *stalled = true;
            }
        }
    }

    /// Nodes whose ready event can never fire any more — the step engine's
    /// `awake` set of a corrupted configuration. Empty unless stalled.
    fn stranded(&self) -> Vec<NodeId> {
        match self {
            ReadyEvents::All(_) => Vec::new(),
            ReadyEvents::Chain { next, n, stalled } => {
                if *stalled {
                    (*next + 1..=*n as NodeId).collect()
                } else {
                    Vec::new()
                }
            }
        }
    }
}

/// Execute `protocol` on `g` under the seeded schedule `schedule` (a
/// permutation of `1..=n`), optionally under a stronger model `target`
/// (`None` = the protocol's native model; any model at or above the native
/// one in the Lemma 4 chain is accepted, free targets included).
///
/// `SIMASYNC`-native executions compose whole batches of rounds in parallel
/// and append them through striped shard writers — under every target,
/// because their messages never depend on the board. `SIMSYNC`-native
/// executions run event-driven (the internal `ReadyEvents` stream) with incremental
/// `O(deg v)` observation: schedule order under `SIMSYNC`/`SYNC` targets,
/// Lemma 4 identity order under an `ASYNC` target. Either way the board
/// contents, outcome, and report are deterministic functions of
/// `(protocol, g, schedule, target)` — batch size and thread count never
/// show.
///
/// Errors with [`UnsupportedBulkModel`] when the protocol is free-native or
/// `target` demotes it. Panics on a malformed schedule (wrong length,
/// out-of-range or repeated node) and on protocol bugs (empty or
/// over-budget message), matching the step engine's invariants.
pub fn run_bulk<P: BulkProtocol>(
    protocol: &P,
    g: &Graph,
    schedule: &[NodeId],
    target: Option<Model>,
    config: &BulkConfig,
) -> Result<BulkReport<P::Output>, UnsupportedBulkModel>
where
    P: Sync,
{
    run_bulk_inner(protocol, g, schedule, target, config, None)
}

/// Like [`run_bulk`], but the single writes of `victims` **crash**: each
/// victim's message is composed and budget-checked exactly as if it were
/// written — a malformed message is a protocol bug whether or not the write
/// then dies — but it never reaches the board, and no surviving node
/// observes it. The victims are a *columnar fault mask* applied while the
/// board streams through the shard writers, so the masked run keeps the bulk
/// tier's `O(n + m + board bits)` cost. Under an `ASYNC` target the first
/// crash stalls the sequential-activation chain and the report carries the
/// step engine's [`Outcome::Deadlock`]; under every other target crashes
/// never deadlock a simultaneous-native protocol.
///
/// This is the bulk tier's form of the crash-stop fault plan
/// (`FaultPlan::crash_stop`); the lossy plan has no bulk form because its
/// adversary adapts to the board mid-run — callers refuse it with a
/// structured error before reaching this function.
///
/// Panics on a malformed victim list (out-of-range or repeated node), same
/// as the schedule validation.
pub fn run_bulk_crashed<P: BulkProtocol>(
    protocol: &P,
    g: &Graph,
    schedule: &[NodeId],
    target: Option<Model>,
    config: &BulkConfig,
    victims: &[NodeId],
) -> Result<BulkReport<P::Output>, UnsupportedBulkModel>
where
    P: Sync,
{
    let n = g.n();
    let mut mask = vec![false; n];
    for &v in victims {
        assert!(
            v >= 1 && v as usize <= n,
            "victim list names node {v} outside 1..={n}"
        );
        assert!(
            !std::mem::replace(&mut mask[v as usize - 1], true),
            "victim list names node {v} twice"
        );
    }
    run_bulk_inner(protocol, g, schedule, target, config, Some(&mask))
}

fn run_bulk_inner<P: BulkProtocol>(
    protocol: &P,
    g: &Graph,
    schedule: &[NodeId],
    target: Option<Model>,
    config: &BulkConfig,
    mask: Option<&[bool]>,
) -> Result<BulkReport<P::Output>, UnsupportedBulkModel>
where
    P: Sync,
{
    let n = g.n();
    assert!(n >= 1, "whiteboard protocols need at least one node");
    let native = protocol.model();
    let model = bulk_model(native, target)?;
    assert_eq!(schedule.len(), n, "schedule must cover every node once");
    let mut seen = vec![false; n];
    for &v in schedule {
        assert!(
            v >= 1 && v as usize <= n,
            "schedule names node {v} outside 1..={n}"
        );
        assert!(
            !std::mem::replace(&mut seen[v as usize - 1], true),
            "schedule names node {v} twice"
        );
    }

    let budget = protocol.budget_bits(n);
    let batch = config.batch.max(1);
    let mut state = protocol.init(g);
    let dies = |v: NodeId| mask.is_some_and(|m| m[v as usize - 1]);

    if native.is_asynchronous() {
        // SIMASYNC-native: messages are fixed before any write, under every
        // target model (promotion neither feeds such a protocol the board
        // nor reorders its single write) — compose whole batches of rounds
        // in parallel, one board shard per batch, reassembled in schedule
        // order by the striped writers. A masked write is composed and
        // checked but never pushed.
        let stripes = n.div_ceil(batch);
        let threads = config.threads.unwrap_or_else(wb_par::num_threads);
        let state_ref = &state;
        let shards = wb_par::par_stripes_with(threads, stripes, |s| {
            let chunk = &schedule[s * batch..((s + 1) * batch).min(n)];
            let mut shard = BulkShard::with_capacity(chunk.len());
            for &v in chunk {
                let msg = protocol.compose(state_ref, v);
                check_message(v, &msg, budget);
                if !dies(v) {
                    shard.push(v, &msg);
                }
            }
            shard
        });
        let board = BulkBoard::from_shards(shards);
        return Ok(BulkReport {
            outcome: Outcome::Success(protocol.output(n, &board)),
            rounds: n,
            write_order: schedule.to_vec(),
            crashed: schedule.iter().copied().filter(|&v| dies(v)).collect(),
            board,
        });
    }

    // SIMSYNC-native: each message may depend on everything already written,
    // so writes fire one at a time off the ready-event stream — but each is
    // digested incrementally (O(deg v)), never fanned out to all n nodes. A
    // masked write is composed and checked, but neither pushed nor observed:
    // downstream events see a board it never reached.
    let mut events = ReadyEvents::new(native, model, schedule);
    let mut write_order = Vec::with_capacity(n);
    let mut crashed = Vec::new();
    let mut shards = Vec::with_capacity(n.div_ceil(batch));
    let mut cur = BulkShard::with_capacity(batch.min(n));
    while let Some(v) = events.next() {
        write_order.push(v);
        let msg = protocol.compose(&state, v);
        check_message(v, &msg, budget);
        if dies(v) {
            crashed.push(v);
            events.settle(false);
        } else {
            cur.push(v, &msg);
            protocol.observe(&mut state, v, &msg);
            events.settle(true);
        }
        if cur.len() == batch {
            shards.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        shards.push(cur);
    }
    let board = BulkBoard::from_shards(shards);
    let stranded = events.stranded();
    let outcome = if stranded.is_empty() {
        Outcome::Success(protocol.output(n, &board))
    } else {
        Outcome::Deadlock { awake: stranded }
    };
    Ok(BulkReport {
        rounds: write_order.len(),
        outcome,
        write_order,
        crashed,
        board,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::ScheduleAdversary;
    use crate::engine::{run, Engine};
    use wb_graph::generators;
    use wb_math::{id_bits, BitWriter};

    /// SIMASYNC toy: everyone writes its ID; output = sorted IDs.
    struct EchoIds;

    #[derive(Clone)]
    struct EchoNode(NodeId, u32);

    impl Node for EchoNode {
        fn observe(&mut self, _: &LocalView, _: usize, _: NodeId, _: &BitVec) {
            unreachable!("SIMASYNC nodes are never shown the board");
        }
        fn compose(&mut self, _: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(self.0 as u64, self.1);
            w.finish()
        }
    }

    impl Protocol for EchoIds {
        type Node = EchoNode;
        type Output = Vec<NodeId>;
        fn model(&self) -> Model {
            Model::SimAsync
        }
        fn budget_bits(&self, n: usize) -> u32 {
            id_bits(n)
        }
        fn spawn(&self, view: &LocalView) -> EchoNode {
            EchoNode(view.id, id_bits(view.n))
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Vec<NodeId> {
            let mut ids: Vec<NodeId> = board
                .entries()
                .iter()
                .map(|e| e.msg.get_bits(0, id_bits(n)) as NodeId)
                .collect();
            ids.sort_unstable();
            ids
        }
    }

    /// Columnar SIMSYNC toy: each message is (ID, #messages already on the
    /// board); output = the per-writer counts in write order.
    struct BulkSeen;

    struct SeenState {
        written: u64,
    }

    impl BulkProtocol for BulkSeen {
        type State = SeenState;
        type Output = Vec<(NodeId, u64)>;
        fn model(&self) -> Model {
            Model::SimSync
        }
        fn budget_bits(&self, _n: usize) -> u32 {
            20
        }
        fn init(&self, _g: &Graph) -> SeenState {
            SeenState { written: 0 }
        }
        fn compose(&self, state: &SeenState, v: NodeId) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(v as u64, 10).write_bits(state.written, 10);
            w.finish()
        }
        fn observe(&self, state: &mut SeenState, _v: NodeId, _msg: &BitVec) {
            state.written += 1;
        }
        fn output(&self, _n: usize, board: &BulkBoard) -> Self::Output {
            board
                .entries()
                .map(|e| {
                    let mut r = e.reader();
                    (r.read_bits(10) as NodeId, r.read_bits(10))
                })
                .collect()
        }
    }

    #[test]
    fn oblivious_bulk_matches_step_run() {
        let g = generators::gnp(
            40,
            0.1,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3),
        );
        let schedule = shuffled_schedule(g.n(), 11);
        let bulk = run_bulk(
            &Oblivious::new(EchoIds),
            &g,
            &schedule,
            None,
            &BulkConfig::default().with_batch(7),
        )
        .unwrap();
        let step = run(&EchoIds, &g, &mut ScheduleAdversary::new(schedule.clone()));
        assert_eq!(bulk.outcome, step.outcome);
        assert_eq!(bulk.rounds, 40);
        assert_eq!(bulk.board.len(), 40);
        assert_eq!(bulk.total_bits(), step.total_bits());
        assert_eq!(bulk.max_message_bits(), step.max_message_bits());
    }

    #[test]
    fn board_is_batch_size_insensitive() {
        let g = generators::path(23);
        let schedule = shuffled_schedule(23, 5);
        let baseline = run_bulk(
            &Oblivious::new(EchoIds),
            &g,
            &schedule,
            None,
            &BulkConfig::default().with_batch(23),
        )
        .unwrap();
        for batch in [1usize, 2, 8, 1000] {
            let b = run_bulk(
                &Oblivious::new(EchoIds),
                &g,
                &schedule,
                None,
                &BulkConfig::default().with_batch(batch),
            )
            .unwrap();
            assert_eq!(b.outcome, baseline.outcome, "batch {batch}");
            assert_eq!(b.board.to_whiteboard(), baseline.board.to_whiteboard());
            assert_eq!(b.board.len(), 23);
            assert_eq!(b.board.shard_count(), 23usize.div_ceil(batch));
        }
    }

    #[test]
    fn simsync_rounds_see_the_growing_board() {
        let g = generators::path(6);
        let schedule = vec![3, 1, 6, 2, 5, 4];
        let report = run_bulk(&BulkSeen, &g, &schedule, None, &BulkConfig::default()).unwrap();
        let out = report.outcome.unwrap();
        let expect: Vec<(NodeId, u64)> = schedule
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u64))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn oblivious_runs_under_simsync_override() {
        // Promotion inside the simultaneous pair: same messages, same output.
        let g = generators::cycle(9);
        let schedule = shuffled_schedule(9, 2);
        let native = run_bulk(
            &Oblivious::new(EchoIds),
            &g,
            &schedule,
            None,
            &BulkConfig::default(),
        )
        .unwrap();
        let promoted = run_bulk(
            &Oblivious::new(EchoIds),
            &g,
            &schedule,
            Some(Model::SimSync),
            &BulkConfig::default(),
        )
        .unwrap();
        assert_eq!(native.outcome, promoted.outcome);
        assert_eq!(native.board.to_whiteboard(), promoted.board.to_whiteboard());
    }

    #[test]
    fn entry_readers_and_bitvec_copies_agree() {
        let g = generators::path(5);
        let report = run_bulk(
            &Oblivious::new(EchoIds),
            &g,
            &identity_schedule(5),
            None,
            &BulkConfig::default().with_batch(2),
        )
        .unwrap();
        for (i, e) in report.board.entries().enumerate() {
            assert_eq!(e.writer, i as NodeId + 1);
            assert!(!e.is_empty());
            let copied = e.to_bitvec();
            assert_eq!(copied.len(), e.len());
            assert_eq!(e.reader().read_bits(3), copied.get_bits(0, 3));
        }
        assert!(report.board.payload_bytes() >= 1);
        assert!(report.board.index_bytes() > 0);
    }

    #[test]
    fn schedules_are_validated() {
        let g = generators::path(3);
        let p = Oblivious::new(EchoIds);
        let cfg = BulkConfig::default();
        for (schedule, what) in [
            (vec![1, 2], "wrong length"),
            (vec![1, 2, 4], "out of range"),
            (vec![1, 2, 2], "repeated"),
        ] {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_bulk(&p, &g, &schedule, None, &cfg)
            }));
            assert!(r.is_err(), "{what} must be rejected");
        }
    }

    #[test]
    fn simsync_protocol_rejects_simasync_target_with_the_supported_set() {
        let g = generators::path(3);
        let err = run_bulk(
            &BulkSeen,
            &g,
            &identity_schedule(3),
            Some(Model::SimAsync),
            &BulkConfig::default(),
        )
        .err()
        .expect("demotion must be refused");
        assert_eq!(
            err,
            UnsupportedBulkModel {
                native: Model::SimSync,
                requested: Model::SimAsync
            }
        );
        assert_eq!(
            err.supported(),
            vec![Model::SimSync, Model::Async, Model::Sync]
        );
        assert_eq!(
            err.to_string(),
            "cannot demote SIMSYNC protocol to SIMASYNC; the bulk tier runs \
             it under SIMSYNC, ASYNC or SYNC only"
        );
    }

    #[test]
    fn free_native_protocols_have_no_bulk_form() {
        // A (hypothetical) free-native columnar protocol is refused: the
        // bulk tier promotes upward from simultaneous natives only.
        struct FreeNative;
        impl BulkProtocol for FreeNative {
            type State = ();
            type Output = ();
            fn model(&self) -> Model {
                Model::Sync
            }
            fn budget_bits(&self, _n: usize) -> u32 {
                1
            }
            fn init(&self, _g: &Graph) {}
            fn compose(&self, _state: &(), _v: NodeId) -> BitVec {
                unreachable!()
            }
            fn observe(&self, _state: &mut (), _v: NodeId, _msg: &BitVec) {}
            fn output(&self, _n: usize, _board: &BulkBoard) {}
        }
        let g = generators::path(3);
        let err = run_bulk(
            &FreeNative,
            &g,
            &identity_schedule(3),
            None,
            &BulkConfig::default(),
        )
        .err()
        .expect("free-native protocols must be refused");
        assert!(err.supported().is_empty());
        assert!(err.to_string().contains("no columnar form"), "{err}");
    }

    #[test]
    fn free_targets_are_accepted_and_preserve_the_board() {
        // SIMASYNC-native under every stronger target: identical board,
        // identical outcome, write order = the schedule.
        let g = generators::cycle(11);
        let schedule = shuffled_schedule(11, 21);
        let cfg = BulkConfig::default().with_batch(4);
        let native = run_bulk(&Oblivious::new(EchoIds), &g, &schedule, None, &cfg).unwrap();
        for target in [Model::SimSync, Model::Async, Model::Sync] {
            let promoted =
                run_bulk(&Oblivious::new(EchoIds), &g, &schedule, Some(target), &cfg).unwrap();
            assert_eq!(promoted.outcome, native.outcome, "{target}");
            assert_eq!(
                promoted.board.to_whiteboard(),
                native.board.to_whiteboard(),
                "{target}"
            );
            assert_eq!(promoted.write_order, schedule, "{target}");
            assert_eq!(promoted.rounds, 11, "{target}");
        }
    }

    #[test]
    fn sync_target_runs_simsync_protocols_in_schedule_order() {
        // Under SYNC every promoted node is always ready, so the event
        // stream is the schedule itself and each compose sees all earlier
        // landed writes — observationally the SIMSYNC execution.
        let g = generators::path(6);
        let schedule = vec![3, 1, 6, 2, 5, 4];
        let sync = run_bulk(
            &BulkSeen,
            &g,
            &schedule,
            Some(Model::Sync),
            &BulkConfig::default(),
        )
        .unwrap();
        let native = run_bulk(&BulkSeen, &g, &schedule, None, &BulkConfig::default()).unwrap();
        assert_eq!(sync.outcome, native.outcome);
        assert_eq!(sync.write_order, schedule);
        assert_eq!(sync.board.to_whiteboard(), native.board.to_whiteboard());
    }

    #[test]
    fn async_target_forces_the_sequential_activation_chain() {
        // Lemma 4: a SIMSYNC protocol under ASYNC activates node i only
        // after i − 1 writes landed, so the executed order is the identity
        // no matter what the adversary's schedule says.
        let g = generators::path(6);
        let schedule = vec![3, 1, 6, 2, 5, 4];
        let report = run_bulk(
            &BulkSeen,
            &g,
            &schedule,
            Some(Model::Async),
            &BulkConfig::default().with_batch(2),
        )
        .unwrap();
        assert_eq!(report.write_order, identity_schedule(6));
        assert_eq!(report.rounds, 6);
        let expect: Vec<(NodeId, u64)> = (1..=6).map(|v| (v as NodeId, v - 1)).collect();
        assert_eq!(report.outcome.unwrap(), expect);
    }

    #[test]
    fn crashed_chain_stalls_into_the_step_engines_deadlock() {
        // The first victim in identity order composes, is budget-checked,
        // and crashes; everyone behind it never becomes ready. Victims
        // further down the chain never execute at all.
        let g = generators::path(6);
        let schedule = vec![3, 1, 6, 2, 5, 4];
        let report = run_bulk_crashed(
            &BulkSeen,
            &g,
            &schedule,
            Some(Model::Async),
            &BulkConfig::default(),
            &[5, 3],
        )
        .unwrap();
        assert_eq!(report.write_order, vec![1, 2, 3]);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.crashed, vec![3]);
        assert_eq!(report.board.len(), 2);
        match report.outcome {
            Outcome::Deadlock { ref awake } => assert_eq!(awake, &vec![4, 5, 6]),
            ref other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn parallel_path_is_thread_count_insensitive() {
        let g = generators::cycle(19);
        let schedule = shuffled_schedule(19, 6);
        let baseline = run_bulk(
            &Oblivious::new(EchoIds),
            &g,
            &schedule,
            Some(Model::Sync),
            &BulkConfig::default().with_batch(3).with_threads(1),
        )
        .unwrap();
        for threads in [2, 3, 16] {
            let b = run_bulk(
                &Oblivious::new(EchoIds),
                &g,
                &schedule,
                Some(Model::Sync),
                &BulkConfig::default().with_batch(3).with_threads(threads),
            )
            .unwrap();
            assert_eq!(b.outcome, baseline.outcome, "threads = {threads}");
            assert_eq!(
                b.board.to_whiteboard(),
                baseline.board.to_whiteboard(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn crashed_bulk_matches_step_engine_under_crashes() {
        let g = generators::gnp(
            30,
            0.15,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7),
        );
        let schedule = shuffled_schedule(30, 4);
        let victims = [schedule[0], schedule[13], schedule[29]];
        let bulk = run_bulk_crashed(
            &Oblivious::new(EchoIds),
            &g,
            &schedule,
            None,
            &BulkConfig::default().with_batch(6),
            &victims,
        )
        .unwrap();
        let mut engine = Engine::new(&EchoIds, &g);
        for &v in &schedule {
            engine.activation_phase();
            if victims.contains(&v) {
                engine.step_crash(v);
            } else {
                engine.step(v);
            }
        }
        engine.activation_phase();
        let step = engine.finish();
        assert_eq!(bulk.outcome, step.outcome);
        assert_eq!(bulk.crashed, step.crashed);
        assert_eq!(bulk.board.to_whiteboard(), step.board);
        assert_eq!(bulk.board.len(), 27);
        // Victims are reported in schedule order, not victim-list order.
        assert_eq!(bulk.crashed, vec![schedule[0], schedule[13], schedule[29]]);
    }

    #[test]
    fn crashed_simsync_victims_write_nothing_and_observe_nothing() {
        let g = generators::path(6);
        let schedule = vec![3, 1, 6, 2, 5, 4];
        let report = run_bulk_crashed(
            &BulkSeen,
            &g,
            &schedule,
            None,
            &BulkConfig::default().with_batch(2),
            &[1, 5],
        )
        .unwrap();
        // Survivors count only surviving prior writes: 3 sees 0, 6 sees 1
        // (victim 1 left no trace), 2 sees 2, 4 sees 3 (victim 5 skipped).
        assert_eq!(
            report.outcome.unwrap(),
            vec![(3, 0), (6, 1), (2, 2), (4, 3)]
        );
        assert_eq!(report.crashed, vec![1, 5]);
        assert_eq!(report.board.len(), 4);
    }

    #[test]
    fn empty_victim_list_replays_run_bulk_exactly() {
        let g = generators::cycle(17);
        let schedule = shuffled_schedule(17, 3);
        let cfg = BulkConfig::default().with_batch(5);
        let plain = run_bulk(&Oblivious::new(EchoIds), &g, &schedule, None, &cfg).unwrap();
        let faulted =
            run_bulk_crashed(&Oblivious::new(EchoIds), &g, &schedule, None, &cfg, &[]).unwrap();
        assert_eq!(plain.outcome, faulted.outcome);
        assert_eq!(plain.board.to_whiteboard(), faulted.board.to_whiteboard());
        assert_eq!(plain.crashed, faulted.crashed);
        assert!(faulted.crashed.is_empty());
    }

    #[test]
    fn victim_lists_are_validated() {
        let g = generators::path(3);
        let p = Oblivious::new(EchoIds);
        let cfg = BulkConfig::default();
        let sched = identity_schedule(3);
        for (victims, what) in [
            (vec![0], "zero ID"),
            (vec![4], "out of range"),
            (vec![2, 2], "repeated"),
        ] {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_bulk_crashed(&p, &g, &sched, None, &cfg, &victims)
            }));
            assert!(r.is_err(), "{what} must be rejected");
        }
    }

    #[test]
    fn shuffled_schedule_is_seeded_permutation() {
        let a = shuffled_schedule(50, 9);
        let b = shuffled_schedule(50, 9);
        assert_eq!(a, b);
        let c = shuffled_schedule(50, 10);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity_schedule(50));
    }
}
