//! Machine-checkable exploration certificates (`wb-cert/v1`).
//!
//! The schedule explorer ([`crate::exhaustive`]) collapses the `n!` schedule
//! tree into the DAG of distinct configurations — but its verdicts are only
//! as trustworthy as the optimization stack that produced them (undo-log
//! branching, 128-bit fingerprint dedup, striped parallel seen-sets). This
//! module serializes a run as an [`ExplorationCertificate`] that a
//! deliberately small, engine-independent verifier (the `wb-verify` crate)
//! re-checks edge by edge: the proof-certificate / counterexample-trace
//! split. The full format specification and the verifier's trust argument
//! are in `docs/CERTIFICATES.md`.
//!
//! A certificate names every distinct configuration by its 128-bit canonical
//! fingerprint ([`wb_math::hash::Digest128`] over the canonical encoding)
//! and records:
//!
//! - the **initial** configuration hash (after the first activation phase);
//! - every **transition edge** `(config, writer, config')`, sorted — the
//!   claim that the reachable DAG is exactly this edge set;
//! - the **terminal set** with the oracle verdict and rendered outcome of
//!   each terminal — the claim that these are all the schedule-distinct
//!   results;
//! - a **witness** per failing terminal: the schedule, its hash trace, and
//!   the failing outcome — a strict counterexample trace;
//! - protocol / model / graph metadata, and a whole-document digest so any
//!   byte-level corruption is detectable before semantic checking starts.
//!
//! Under a fault plan ([`crate::fault::FaultPlan`] via
//! [`ExploreConfig::faults`]) the walk also branches over which scheduled
//! writes die: crash edges carry a fourth marker element, witnesses record
//! which picks died, and the plan's spec string is recorded in a top-level
//! `faults` field so the verifier replays the same fault schedule. A
//! fault-free certificate (no plan, or an inert `crash:0`/`lossy:0` plan)
//! serializes byte-identically to the pre-fault format.
//!
//! ## Soundness boundary
//!
//! Certification inherits the explorer's dedup soundness rule: configuration
//! hashes cover statuses, freeze slots and board content but *not* the write
//! order, so they are only sound for order-oblivious protocols. A caller
//! requesting [`DedupPolicy::Off`] (the escape hatch for transcript-valued
//! outputs) is refused — such runs have no sound configuration-DAG quotient
//! to certify.

use crate::engine::{Engine, Outcome};
use crate::exhaustive::{DedupPolicy, ExplorationReport, ExploreConfig, ScheduleFailure};
use crate::model::Model;
use crate::protocol::Protocol;
use std::collections::HashSet;
use std::fmt::Debug;
use wb_graph::{Graph, NodeId};
use wb_math::hash::{hex128, Digest128};
use wb_math::json::Json;

/// The format tag every `v1` certificate carries.
pub const FORMAT: &str = "wb-cert/v1";

/// One transition of the distinct-configuration DAG: in configuration
/// `from`, the adversary picks `writer`, yielding configuration `to`. Under
/// a fault plan, `crash` marks edges where the pick's write died — the
/// message was composed and budget-checked but never reached the board.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CertificateEdge {
    /// Source configuration hash.
    pub from: u128,
    /// The active node whose write this edge is.
    pub writer: NodeId,
    /// Whether the write died on this edge (always `false` fault-free).
    pub crash: bool,
    /// Resulting configuration hash.
    pub to: u128,
}

/// One terminal configuration (empty active set) with its claimed verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateTerminal {
    /// Terminal configuration hash.
    pub config: u128,
    /// Whether the registry oracle accepted the outcome.
    pub verdict: bool,
    /// `Debug` rendering of the outcome (success value or deadlock set).
    pub outcome: String,
}

/// A counterexample trace: one witness schedule per failing terminal.
///
/// The `trace` pins the configuration hash after every step, so "strict
/// replay" is meaningful: a reordered or otherwise tampered schedule
/// diverges from the trace at the first bad position even when the permuted
/// schedule would still be legal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateWitness {
    /// The adversary's picks, in order.
    pub schedule: Vec<NodeId>,
    /// Configuration hash after each pick (post-activation).
    pub trace: Vec<u128>,
    /// Which scheduled picks' writes died, in crash order. Always empty for
    /// fault-free runs (and then omitted from the serialized form).
    pub died: Vec<NodeId>,
    /// `Debug` rendering of the failing outcome.
    pub outcome: String,
}

/// A serialized-form exploration proof: see the module docs for the claim
/// structure and `docs/CERTIFICATES.md` for the byte-level format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplorationCertificate {
    /// Registry protocol spec (e.g. `"mis:1"`) — verdicts are bound to this
    /// spec's registry oracle.
    pub protocol: String,
    /// The model the run executed under (the promotion target if the
    /// protocol was wrapped in [`crate::adapt::Promote`]).
    pub model: Model,
    /// Number of nodes.
    pub n: usize,
    /// The instance graph's edges, ascending.
    pub graph_edges: Vec<(NodeId, NodeId)>,
    /// Workload family label, if the graph came from a named family.
    pub family: Option<String>,
    /// Workload seed, if the graph came from a seeded family.
    pub seed: Option<u64>,
    /// The fault plan in force, as its spec string (e.g. `"crash:1"`).
    /// `None` for fault-free runs — including inert plans — keeping their
    /// serialized form byte-identical to pre-fault certificates.
    pub faults: Option<String>,
    /// The reduction policy the caller's exploration ran under (e.g.
    /// `"dpor+symmetry"`), recorded for provenance. The certifying walk
    /// itself is **always unreduced** — every active-writer edge is present
    /// regardless of this field — so reduced explorations still verify
    /// through `wb-verify`'s unreduced replay machine. `None` when the
    /// policy is `off`, keeping those certificates byte-identical to the
    /// pre-reduction format.
    pub reduction: Option<String>,
    /// Initial configuration hash (after the first activation phase).
    pub initial: u128,
    /// All transition edges, sorted by `(from, writer, crash, to)`.
    pub edges: Vec<CertificateEdge>,
    /// All terminal configurations, sorted by hash.
    pub terminals: Vec<CertificateTerminal>,
    /// One witness per failing terminal, in discovery order.
    pub witnesses: Vec<CertificateWitness>,
    /// Number of distinct configurations (must equal `1 +` the number of
    /// distinct edge targets; re-counted by the verifier).
    pub states: u64,
}

impl ExplorationCertificate {
    /// The certificate body as a JSON value, without the document digest.
    fn body_json(&self) -> Json {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("format".into(), Json::Str(FORMAT.into()));
        obj.insert("protocol".into(), Json::Str(self.protocol.clone()));
        obj.insert("model".into(), Json::Str(self.model.to_string()));
        obj.insert("n".into(), Json::Num(self.n as f64));
        obj.insert(
            "graph".into(),
            Json::Arr(
                self.graph_edges
                    .iter()
                    .map(|&(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
                    .collect(),
            ),
        );
        obj.insert(
            "family".into(),
            match &self.family {
                Some(f) => Json::Str(f.clone()),
                None => Json::Null,
            },
        );
        obj.insert(
            "seed".into(),
            match self.seed {
                // As a string: u64 seeds do not fit losslessly in a JSON f64.
                Some(s) => Json::Str(s.to_string()),
                None => Json::Null,
            },
        );
        if let Some(spec) = &self.faults {
            obj.insert("faults".into(), Json::Str(spec.clone()));
        }
        if let Some(policy) = &self.reduction {
            obj.insert("reduction".into(), Json::Str(policy.clone()));
        }
        obj.insert("initial".into(), Json::Str(hex128(self.initial)));
        obj.insert(
            "edges".into(),
            Json::Arr(
                self.edges
                    .iter()
                    .map(|e| {
                        let mut arr = vec![
                            Json::Str(hex128(e.from)),
                            Json::Num(e.writer as f64),
                            Json::Str(hex128(e.to)),
                        ];
                        if e.crash {
                            arr.push(Json::Num(1.0));
                        }
                        Json::Arr(arr)
                    })
                    .collect(),
            ),
        );
        obj.insert(
            "terminals".into(),
            Json::Arr(
                self.terminals
                    .iter()
                    .map(|t| {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("config".into(), Json::Str(hex128(t.config)));
                        m.insert("verdict".into(), Json::Bool(t.verdict));
                        m.insert("outcome".into(), Json::Str(t.outcome.clone()));
                        Json::Obj(m)
                    })
                    .collect(),
            ),
        );
        obj.insert(
            "witnesses".into(),
            Json::Arr(
                self.witnesses
                    .iter()
                    .map(|w| {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert(
                            "schedule".into(),
                            Json::Arr(w.schedule.iter().map(|&v| Json::Num(v as f64)).collect()),
                        );
                        m.insert(
                            "trace".into(),
                            Json::Arr(w.trace.iter().map(|&h| Json::Str(hex128(h))).collect()),
                        );
                        if self.faults.is_some() {
                            m.insert(
                                "died".into(),
                                Json::Arr(w.died.iter().map(|&v| Json::Num(v as f64)).collect()),
                            );
                        }
                        m.insert("outcome".into(), Json::Str(w.outcome.clone()));
                        Json::Obj(m)
                    })
                    .collect(),
            ),
        );
        obj.insert("states".into(), Json::Num(self.states as f64));
        Json::Obj(obj)
    }

    /// Serialize as one canonical JSON line (no trailing newline), digest
    /// included. This is the certificate wire format: the verifier requires
    /// the document to be in this exact normal form, re-derives the digest
    /// from the body, and only then starts semantic re-checking.
    pub fn to_json_line(&self) -> String {
        let body = self.body_json();
        let mut digest = Digest128::new();
        digest.put_bytes(body.to_string().as_bytes());
        let Json::Obj(mut obj) = body else {
            unreachable!("body_json builds an object")
        };
        obj.insert("digest".into(), Json::Str(hex128(digest.finish())));
        Json::Obj(obj).to_string()
    }
}

/// A certified exploration: the certificate plus the ordinary exploration
/// report (outcome multiset, failures with witness schedules) so callers can
/// keep using the report-shaped downstream plumbing.
pub struct CertifiedExploration<O> {
    /// The serialized-form proof.
    pub certificate: ExplorationCertificate,
    /// Report equivalent to what [`crate::exhaustive::explore`] returns on
    /// the same run (`peak_frontier` is 0: the certifying walk is
    /// depth-first and has no frontier).
    pub report: ExplorationReport<O>,
}

/// Non-graph metadata recorded into a certificate: the registry spec the
/// verifier will re-resolve, and the optional workload provenance.
pub struct CertificateScenario<'a> {
    /// Registry protocol spec (e.g. `"build:2"`).
    pub protocol: &'a str,
    /// Workload family label, if any.
    pub family: Option<&'a str>,
    /// Workload seed, if any.
    pub seed: Option<u64>,
}

/// Exhaustively explore `protocol` on `g` and emit a certificate of the run.
///
/// `check` judges every distinct terminal outcome given the crashed set of
/// that terminal, exactly as in [`crate::exhaustive::explore_with`]; for a
/// certificate that *verifies*, it must be the registry oracle bound to `g`
/// (the independent verifier re-derives verdicts from the registry by
/// `scenario.protocol`, so any other predicate is exposed as a verdict
/// mismatch). With `config.faults` set to a non-inert plan, the walk also
/// branches over which scheduled writes die, up to the plan's budget.
///
/// Errors instead of truncating: a partial walk proves nothing, so
/// exceeding `config.max_states` is an error, and [`DedupPolicy::Off`] is
/// refused outright (see the module docs on the soundness boundary).
/// `config.max_frontier` is ignored — the certifying walk is depth-first.
pub fn certify<P, C>(
    protocol: &P,
    g: &Graph,
    scenario: &CertificateScenario<'_>,
    config: &ExploreConfig,
    check: C,
) -> Result<CertifiedExploration<P::Output>, String>
where
    P: Protocol,
    P::Output: Clone + Debug,
    C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool,
{
    if config.dedup == DedupPolicy::Off {
        return Err(
            "certificates require configuration dedup: with DedupPolicy::Off the run has no \
             sound distinct-configuration DAG to certify (transcript-valued protocols fall \
             outside the certificate format)"
                .into(),
        );
    }

    let mut engine = Engine::new(protocol, g);
    engine.activation_phase();
    let initial = engine.canonical_fingerprint().as_u128();

    let mut walk = Walk {
        check: &check,
        fault_budget: config.fault_budget(),
        seen: HashSet::from([initial]),
        max_states: config.max_states,
        overflow: false,
        edges: Vec::new(),
        terminals: Vec::new(),
        witnesses: Vec::new(),
        outcomes: Vec::new(),
        failures: Vec::new(),
        merged: 0,
        path: Vec::new(),
        trace: Vec::new(),
    };

    if engine.has_active() {
        walk.expand(&mut engine, initial);
    } else {
        walk.terminal(&engine, initial);
    }
    if walk.overflow {
        return Err(format!(
            "exploration exceeded max_states = {}: a truncated walk cannot be certified",
            config.max_states
        ));
    }

    let report = ExplorationReport {
        distinct_states: walk.seen.len() as u64,
        terminals: walk.terminals.len() as u64,
        merged: walk.merged,
        truncated: false,
        peak_frontier: 0,
        outcomes: walk.outcomes,
        failures: walk.failures,
        // The certifying walk never reduces (every edge must be present for
        // the verifier), so there are no reduction stats to report.
        reduction: None,
    };
    let mut edges = walk.edges;
    edges.sort_unstable();
    let mut terminals = walk.terminals;
    terminals.sort_by_key(|t| t.config);
    let certificate = ExplorationCertificate {
        protocol: scenario.protocol.to_string(),
        model: protocol.model(),
        n: g.n(),
        graph_edges: g.edges().collect(),
        family: scenario.family.map(str::to_string),
        seed: scenario.seed,
        faults: config.faults.filter(|p| !p.is_inert()).map(|p| p.spec()),
        reduction: (config.reduction != crate::exhaustive::ReductionPolicy::Off)
            .then(|| config.reduction.to_string()),
        initial,
        edges,
        terminals,
        witnesses: walk.witnesses,
        states: report.distinct_states,
    };
    Ok(CertifiedExploration {
        certificate,
        report,
    })
}

/// The certifying depth-first walk: one engine, undo-log branching, dedup by
/// canonical fingerprint, recording every edge and the current path/trace so
/// failing terminals come out as witnesses.
struct Walk<'c, O, C> {
    check: &'c C,
    fault_budget: usize,
    seen: HashSet<u128>,
    max_states: u64,
    overflow: bool,
    edges: Vec<CertificateEdge>,
    terminals: Vec<CertificateTerminal>,
    witnesses: Vec<CertificateWitness>,
    outcomes: Vec<Outcome<O>>,
    failures: Vec<ScheduleFailure<O>>,
    merged: u64,
    path: Vec<NodeId>,
    trace: Vec<u128>,
}

impl<O: Clone + Debug, C: Fn(&Outcome<O>, &[NodeId]) -> bool> Walk<'_, O, C> {
    fn terminal<P: Protocol<Output = O>>(&mut self, engine: &Engine<'_, P>, hash: u128) {
        let run = engine.report();
        let verdict = (self.check)(&run.outcome, &run.crashed);
        self.terminals.push(CertificateTerminal {
            config: hash,
            verdict,
            outcome: format!("{:?}", run.outcome),
        });
        if !verdict {
            self.witnesses.push(CertificateWitness {
                schedule: self.path.clone(),
                trace: self.trace.clone(),
                died: run.crashed.clone(),
                outcome: format!("{:?}", run.outcome),
            });
            self.failures.push(ScheduleFailure {
                schedule: run.write_order,
                died: run.crashed,
                outcome: run.outcome.clone(),
            });
        }
        self.outcomes.push(run.outcome);
    }

    /// Record one edge and recurse into its target if unseen. The caller has
    /// already applied the step (survive or crash) and must undo it after.
    fn record<P: Protocol<Output = O>>(
        &mut self,
        engine: &mut Engine<'_, P>,
        from: u128,
        pick: NodeId,
        crash: bool,
        to: u128,
    ) {
        self.edges.push(CertificateEdge {
            from,
            writer: pick,
            crash,
            to,
        });
        if self.seen.insert(to) {
            if self.seen.len() as u64 > self.max_states {
                self.overflow = true;
            } else {
                self.path.push(pick);
                self.trace.push(to);
                if engine.has_active() {
                    self.expand(engine, to);
                } else {
                    self.terminal(engine, to);
                }
                self.path.pop();
                self.trace.pop();
            }
        } else {
            self.merged += 1;
        }
    }

    fn expand<P: Protocol<Output = O>>(&mut self, engine: &mut Engine<'_, P>, from: u128) {
        for pick in 1..=engine.node_count() as NodeId {
            if self.overflow {
                return;
            }
            if !engine.is_active(pick) {
                continue;
            }
            let token = engine.step_token();
            engine.step(pick);
            engine.activation_phase();
            let to = engine.canonical_fingerprint().as_u128();
            self.record(engine, from, pick, false, to);
            engine.undo(token);
            if self.overflow {
                return;
            }
            if engine.crashed_count() < self.fault_budget {
                let token = engine.step_token();
                engine.step_crash(pick);
                engine.activation_phase();
                let to = engine.canonical_fingerprint().as_u128();
                self.record(engine, from, pick, true, to);
                engine.undo(token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::toys::*;
    use crate::exhaustive::explore;
    use wb_graph::generators;

    fn scenario() -> CertificateScenario<'static> {
        CertificateScenario {
            protocol: "toy",
            family: None,
            seed: None,
        }
    }

    #[test]
    fn certified_walk_matches_explore_counts() {
        let g = generators::path(4);
        let certified = certify(
            &EchoId,
            &g,
            &scenario(),
            &ExploreConfig::default(),
            |o, _| o.is_success(),
        )
        .unwrap();
        let explored = explore(&EchoId, &g, &ExploreConfig::default(), |o| o.is_success());
        assert_eq!(certified.report.distinct_states, explored.distinct_states);
        assert_eq!(certified.report.terminals, explored.terminals);
        assert_eq!(certified.report.merged, explored.merged);
        assert_eq!(
            certified.certificate.states,
            certified.report.distinct_states
        );
        // Every distinct non-initial configuration is some edge's target.
        let targets: HashSet<u128> = certified.certificate.edges.iter().map(|e| e.to).collect();
        assert_eq!(
            targets.len() as u64 + 1,
            certified.certificate.states,
            "edge targets + initial = distinct configurations"
        );
    }

    #[test]
    fn failing_terminals_get_witnesses_with_traces() {
        let g = generators::path(3);
        let certified = certify(
            &EchoId,
            &g,
            &scenario(),
            &ExploreConfig::default(),
            |_, _| false, // judge everything a failure
        )
        .unwrap();
        assert!(!certified.certificate.witnesses.is_empty());
        for w in &certified.certificate.witnesses {
            assert_eq!(w.schedule.len(), w.trace.len());
            assert_eq!(w.schedule.len(), 3, "every node writes exactly once");
        }
        let failing = certified
            .certificate
            .terminals
            .iter()
            .filter(|t| !t.verdict)
            .count();
        assert_eq!(failing, certified.certificate.witnesses.len());
    }

    #[test]
    fn dedup_off_is_refused() {
        let g = generators::path(3);
        let config = ExploreConfig {
            dedup: DedupPolicy::Off,
            ..ExploreConfig::default()
        };
        let err = certify(&FrozenSeenCount, &g, &scenario(), &config, |_, _| true)
            .err()
            .expect("transcript-valued runs must refuse certification");
        assert!(err.contains("DedupPolicy::Off"), "{err}");
    }

    #[test]
    fn state_cap_is_an_error_not_a_truncation() {
        let g = generators::clique(5);
        let config = ExploreConfig {
            max_states: 4,
            ..ExploreConfig::default()
        };
        let err = certify(&EchoId, &g, &scenario(), &config, |_, _| true)
            .err()
            .expect("overflow must error");
        assert!(err.contains("max_states"), "{err}");
    }

    #[test]
    fn json_line_is_single_line_and_reparses() {
        let g = generators::cycle(3);
        let certified = certify(
            &SeenCount,
            &g,
            &scenario(),
            &ExploreConfig::default(),
            |o, _| o.is_success(),
        )
        .unwrap();
        let line = certified.certificate.to_json_line();
        assert!(!line.contains('\n'));
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("format").and_then(Json::as_str), Some(FORMAT));
        // Canonical form: parse → emit is the identity on emitted lines.
        assert_eq!(parsed.to_string(), line);
    }

    #[test]
    fn inert_fault_plan_certifies_byte_identically() {
        use crate::fault::FaultPlan;
        let g = generators::path(3);
        let plain = certify(
            &EchoId,
            &g,
            &scenario(),
            &ExploreConfig::default(),
            |o, _| o.is_success(),
        )
        .unwrap();
        let config = ExploreConfig::default().with_faults(Some(FaultPlan::crash_stop(0)));
        let inert = certify(&EchoId, &g, &scenario(), &config, |o, _| o.is_success()).unwrap();
        assert_eq!(
            plain.certificate.to_json_line(),
            inert.certificate.to_json_line()
        );
        assert!(inert.certificate.faults.is_none());
    }

    #[test]
    fn faulted_walk_records_crash_edges_and_died_witnesses() {
        use crate::fault::FaultPlan;
        let g = generators::path(3);
        let config = ExploreConfig::default().with_faults(Some(FaultPlan::crash_stop(1)));
        // Degraded oracle: the echoed id list must be exactly the survivors.
        let certified = certify(&EchoId, &g, &scenario(), &config, |o, died| match o {
            Outcome::Success(ids) => {
                ids.len() + died.len() == 3 && ids.iter().all(|v| !died.contains(v))
            }
            Outcome::Deadlock { .. } => false,
        })
        .unwrap();
        assert_eq!(certified.certificate.faults.as_deref(), Some("crash:1"));
        assert!(
            certified.certificate.edges.iter().any(|e| e.crash),
            "a crash:1 walk must branch over dying writes"
        );
        // EchoId tolerates any single crash, so the degraded oracle accepts
        // every terminal and no witnesses are emitted.
        assert!(certified.certificate.terminals.iter().all(|t| t.verdict));
        assert!(certified.certificate.witnesses.is_empty());

        // A strict (fault-blind) oracle fails exactly the crashed terminals,
        // and each witness names its casualties.
        let strict = certify(&EchoId, &g, &scenario(), &config, |o, _| match o {
            Outcome::Success(ids) => ids.len() == 3,
            Outcome::Deadlock { .. } => false,
        })
        .unwrap();
        assert!(!strict.certificate.witnesses.is_empty());
        assert!(strict
            .certificate
            .witnesses
            .iter()
            .all(|w| w.died.len() == 1));
        let line = strict.certificate.to_json_line();
        assert!(line.contains("\"faults\":\"crash:1\""), "{line}");
        assert!(line.contains("\"died\":["), "{line}");
        // Crash edges serialize as 4-element arrays ending in 1.
        assert!(line.contains(",1]"), "{line}");
    }
}
