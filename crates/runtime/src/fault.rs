//! First-class fault models for the whiteboard machine.
//!
//! The paper's one-write-per-node rule makes the system maximally fragile:
//! a node's single write is its entire lifetime of communication, so losing
//! one message is losing one node. A [`FaultPlan`] makes that loss a
//! first-class part of the model lattice instead of an ad-hoc campaign
//! trick. Two fault kinds are distinguished by *who chooses the victims and
//! when*:
//!
//! - **crash-stop** ([`FaultKind::CrashStop`]): up to `f` nodes crash. A
//!   crashed node composes its message (a malformed message is a protocol
//!   bug whether or not it then dies) but the write never reaches the
//!   board; the node terminates silently. The victim set is chosen per
//!   execution — sampled up front in the campaign tier, masked columnar in
//!   the bulk tier.
//! - **lossy-board** ([`FaultKind::Lossy`]): an adversary may suppress up
//!   to `f` writes, choosing *adaptively* — each suppression decision may
//!   depend on everything written so far. Because the bulk tier replays a
//!   fixed schedule with no mid-run adversary, lossy plans are step/campaign
//!   only.
//!
//! In the exhaustive tier the two collapse: the explorer quantifies over
//! **every** choice of which ≤ `f` scheduled writes die, which covers both
//! the committed-in-advance victim sets of crash-stop and the adaptive
//! suppressions of lossy-board (in a write-once system, a node's externally
//! visible behavior *is* its single write, so "the node crashed" and "the
//! board lost its write" reach the same configurations). The distinction
//! matters again in the sampling tiers, where the fault decisions are drawn
//! rather than quantified.
//!
//! A plan with budget 0 is inert: every execution tier treats it exactly
//! like no plan at all, and the differential suite pins the byte-identity
//! of the resulting reports.

use std::fmt;
use std::str::FromStr;

/// Which fault semantics a [`FaultPlan`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Up to `f` nodes crash: each victim's single write is dropped after
    /// compose and the node terminates silently. Victims are committed per
    /// execution (sampled or masked), not mid-run.
    CrashStop,
    /// An adaptive adversary may suppress up to `f` writes, deciding write
    /// by write with full view of the board.
    Lossy,
}

impl FaultKind {
    /// The spec keyword (`crash` / `lossy`).
    pub fn keyword(&self) -> &'static str {
        match self {
            FaultKind::CrashStop => "crash",
            FaultKind::Lossy => "lossy",
        }
    }
}

/// A fault injection plan: a [`FaultKind`] plus the budget `f` of writes
/// that may die. Composes with all four models and every execution tier;
/// parsed from and rendered as `crash:f` / `lossy:f` (the CLI's `--faults`
/// syntax and the `faults` field of `wb-cert/v1` certificates).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    kind: FaultKind,
    budget: usize,
}

impl FaultPlan {
    /// A crash-stop plan with at most `f` victims.
    pub fn crash_stop(f: usize) -> Self {
        FaultPlan {
            kind: FaultKind::CrashStop,
            budget: f,
        }
    }

    /// A lossy-board plan suppressing at most `f` writes.
    pub fn lossy(f: usize) -> Self {
        FaultPlan {
            kind: FaultKind::Lossy,
            budget: f,
        }
    }

    /// The fault semantics.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Maximum number of writes that may die.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Whether the plan can never drop a write (`f = 0`). Every tier treats
    /// an inert plan exactly like no plan: reports, certificates, and JSON
    /// output are byte-identical (the differential suite pins this).
    pub fn is_inert(&self) -> bool {
        self.budget == 0
    }

    /// The canonical spec string (`crash:2`, `lossy:1`) — inverse of
    /// [`FromStr`].
    pub fn spec(&self) -> String {
        format!("{}:{}", self.kind.keyword(), self.budget)
    }

    /// Deterministically sample the victim set for one single-run execution
    /// (the bulk tier's columnar mask): the *full* budget — `min(f, n)`
    /// distinct nodes — drawn by a seeded partial Fisher–Yates, in ID
    /// order. Crash-stop only; callers refuse lossy plans before getting
    /// here (the lossy adversary decides write by write mid-run, which a
    /// fixed up-front victim set cannot express).
    pub fn sample_victims(&self, n: usize, seed: u64) -> Result<Vec<wb_graph::NodeId>, String> {
        use rand::{Rng, SeedableRng};
        if self.kind == FaultKind::Lossy {
            return Err(
                "lossy plans have no up-front victim set (the suppression adversary is \
                 adaptive); use a crash plan or the step tier"
                    .into(),
            );
        }
        let k = self.budget.min(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ids: Vec<wb_graph::NodeId> = (1..=n as wb_graph::NodeId).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        ids.truncate(k);
        ids.sort_unstable();
        Ok(ids)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind.keyword(), self.budget)
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (kind, count) = s
            .split_once(':')
            .ok_or_else(|| format!("fault plan '{s}' is not of the form crash:<f> or lossy:<f>"))?;
        let budget: usize = count
            .parse()
            .map_err(|_| format!("fault budget '{count}' is not a non-negative integer"))?;
        match kind {
            "crash" => Ok(FaultPlan::crash_stop(budget)),
            "lossy" => Ok(FaultPlan::lossy(budget)),
            other => Err(format!(
                "unknown fault kind '{other}' (expected crash:<f> or lossy:<f>)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip() {
        for spec in ["crash:0", "crash:1", "crash:7", "lossy:0", "lossy:3"] {
            let plan: FaultPlan = spec.parse().unwrap();
            assert_eq!(plan.spec(), spec);
            assert_eq!(plan.to_string(), spec);
        }
        assert_eq!(
            "crash:2".parse::<FaultPlan>().unwrap(),
            FaultPlan::crash_stop(2)
        );
        assert_eq!("lossy:1".parse::<FaultPlan>().unwrap(), FaultPlan::lossy(1));
    }

    #[test]
    fn malformed_specs_are_rejected_with_diagnosis() {
        for (spec, needle) in [
            ("crash", "not of the form"),
            ("crash:", "not a non-negative integer"),
            ("crash:-1", "not a non-negative integer"),
            ("crash:two", "not a non-negative integer"),
            ("melt:1", "unknown fault kind 'melt'"),
        ] {
            let err = spec.parse::<FaultPlan>().unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn zero_budget_plans_are_inert() {
        assert!(FaultPlan::crash_stop(0).is_inert());
        assert!(FaultPlan::lossy(0).is_inert());
        assert!(!FaultPlan::crash_stop(1).is_inert());
        assert_eq!(FaultPlan::crash_stop(1).budget(), 1);
        assert_eq!(FaultPlan::lossy(4).kind(), FaultKind::Lossy);
    }
}
