//! Execution engine for the four shared-whiteboard models of Becker et al.
//!
//! The paper (§2) defines a machine in which each node of a labeled graph
//! writes **exactly one** bounded-size message on a shared whiteboard, under an
//! adversarial scheduler, with four synchronization disciplines:
//!
//! | | frozen at activation | composed at write time |
//! |---|---|---|
//! | simultaneous | `SIMASYNC` | `SIMSYNC` |
//! | free | `ASYNC` | `SYNC` |
//!
//! This crate is that machine:
//!
//! - [`protocol`] — the [`Protocol`]/[`Node`] traits (what a protocol author
//!   implements) and the [`LocalView`] a node is allowed to see;
//! - [`board`] — the whiteboard: an append-only sequence of bit-string
//!   messages;
//! - [`model`] — the four models and their capability lattice;
//! - [`engine`] — the round loop: activation phase, adversarial pick, write,
//!   observation; bit-budget enforcement; deadlock (corrupted-configuration)
//!   detection; execution reports;
//! - [`adversary`] — schedulers: min/max-ID, seeded-random, priority
//!   permutations;
//! - [`exhaustive`] — model checking: runs a protocol under *every* adversary
//!   choice sequence (the paper's ∀-adversary quantifier, made executable for
//!   small instances) — a state-deduplicating worklist explorer plus the
//!   naive factorial DFS it is cross-checked against;
//! - [`fault`] — first-class fault plans (`crash:f` / `lossy:f`): crash-stop
//!   writers and lossy boards that compose with all four models and every
//!   execution tier (see `docs/FAULTS.md`);
//! - [`adapt`] — the Lemma 4 inclusions as executable wrappers: any protocol of
//!   a weaker model runs unchanged (same outputs) in every stronger model;
//! - [`certificate`] — machine-checkable exploration certificates: a
//!   certifying DFS walk that serializes the distinct-configuration DAG,
//!   terminal verdicts, and counterexample witnesses for independent
//!   re-checking by the tiny `wb-verify` crate (`docs/CERTIFICATES.md`);
//! - [`bulk`] — the bulk tier: columnar execution of simultaneous protocols
//!   with a sharded board and parallel round batches, for single runs at
//!   `n ≥ 10⁵` (differentially pinned against the step engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod adversary;
pub mod board;
pub mod bulk;
pub mod certificate;
pub mod engine;
pub mod exhaustive;
pub mod fault;
pub mod model;
pub mod protocol;

pub use adversary::{
    Adversary, CrashyAdversary, FnAdversary, LenientScheduleAdversary, MaxIdAdversary,
    MinIdAdversary, PriorityAdversary, RandomAdversary, ReplayError, ScheduleAdversary,
};
pub use board::{Entry, Whiteboard};
pub use bulk::{
    bulk_model, identity_schedule, run_bulk, run_bulk_crashed, shuffled_schedule, BulkBoard,
    BulkConfig, BulkProtocol, BulkReport, Oblivious, UnsupportedBulkModel,
};
pub use certificate::{
    certify, CertificateEdge, CertificateScenario, CertificateTerminal, CertificateWitness,
    CertifiedExploration, ExplorationCertificate,
};
pub use engine::{run, run_traced, CanonicalState, Engine, Outcome, RunReport, TraceRow};
pub use exhaustive::{
    assert_explored, explore, explore_parallel, explore_parallel_with, explore_with, DedupPolicy,
    ExplorationReport, ExploreConfig, NaiveReport, ReductionPolicy, ReductionStats,
    ScheduleFailure,
};
pub use fault::{FaultKind, FaultPlan};
pub use model::Model;
pub use protocol::{Commutativity, LocalView, Node, Protocol};
