//! The protocol author's interface.
//!
//! A protocol is a family of per-node state machines plus an output function
//! computed from the final whiteboard. The paper's `act`/`msg` are pure
//! functions of `(v, N(v), W, state, memory)`; our [`Node`] is the memoized
//! form — `observe` feeds board entries one at a time, and the node's state
//! must remain a deterministic function of (local view, observed prefix).
//! The engine drives these callbacks with model-specific timing, so a node
//! written for `SIMASYNC` literally never observes anything before composing.

use crate::board::Whiteboard;
use crate::model::Model;
use wb_graph::{Graph, NodeId};
use wb_math::BitVec;

/// Everything a node knows at start-up (paper §2): its identifier, the total
/// number of nodes `n`, and the identifiers of its neighbors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalView {
    /// This node's identifier (`1..=n`).
    pub id: NodeId,
    /// Total number of nodes.
    pub n: usize,
    /// Sorted neighbor identifiers.
    pub neighbors: Vec<NodeId>,
}

impl LocalView {
    /// Build the views for every node of `g`.
    pub fn all_of(g: &Graph) -> Vec<LocalView> {
        g.nodes()
            .map(|id| LocalView {
                id,
                n: g.n(),
                neighbors: g.neighbors(id).to_vec(),
            })
            .collect()
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether `other` is a neighbor.
    pub fn is_neighbor(&self, other: NodeId) -> bool {
        self.neighbors.binary_search(&other).is_ok()
    }
}

/// The per-node state machine.
///
/// Call discipline (enforced by the engine, per model):
///
/// 1. `observe(seq, writer, msg)` is invoked once for every board entry, in
///    write order, on every node that has not yet terminated — *except* that a
///    `SIMASYNC` node's `compose` precedes all observations.
/// 2. `wants_to_activate` is polled each round while the node is awake (free
///    models only; simultaneous models activate everyone in round 1). Once it
///    returns `true` the node is active forever.
/// 3. `compose` is called exactly once: at activation (asynchronous models) or
///    at write time (synchronous models).
pub trait Node: Clone {
    /// Digest one new board entry. `writer` is engine metadata exposed for
    /// convenience; faithful protocols encode the ID in the message bits and
    /// may ignore it.
    fn observe(&mut self, view: &LocalView, seq: usize, writer: NodeId, msg: &BitVec);

    /// Awake → active decision. Free-model protocols override this; the
    /// default (`true`) makes the node behave simultaneously.
    fn wants_to_activate(&mut self, _view: &LocalView) -> bool {
        true
    }

    /// Produce this node's single message.
    fn compose(&mut self, view: &LocalView) -> BitVec;
}

/// A whiteboard protocol: node factory, model declaration, bit budget and the
/// output function.
pub trait Protocol {
    /// The per-node state machine type.
    type Node: Node;
    /// The problem's answer type.
    type Output;

    /// Which model this protocol is designed for.
    fn model(&self) -> Model;

    /// Maximum message size in bits on `n`-node inputs. The engine *enforces*
    /// this (a violation is a protocol bug and panics), making the paper's
    /// `O(f(n))` accounting a runtime invariant.
    fn budget_bits(&self, n: usize) -> u32;

    /// Create the state machine for one node.
    fn spawn(&self, view: &LocalView) -> Self::Node;

    /// The output function `out(W)`, evaluated by the last node to terminate —
    /// it sees only the final whiteboard (plus `n`).
    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output;
}

impl<P: Protocol> Protocol for &P {
    type Node = P::Node;
    type Output = P::Output;

    fn model(&self) -> Model {
        (**self).model()
    }

    fn budget_bits(&self, n: usize) -> u32 {
        (**self).budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        (**self).spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
        (**self).output(n, board)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_match_graph() {
        let g = Graph::from_edges(4, &[(1, 2), (2, 4)]);
        let views = LocalView::all_of(&g);
        assert_eq!(views.len(), 4);
        assert_eq!(views[1].id, 2);
        assert_eq!(views[1].neighbors, vec![1, 4]);
        assert_eq!(views[1].degree(), 2);
        assert!(views[1].is_neighbor(4));
        assert!(!views[1].is_neighbor(3));
        assert_eq!(views[2].degree(), 0);
    }
}
