//! The protocol author's interface.
//!
//! A protocol is a family of per-node state machines plus an output function
//! computed from the final whiteboard. The paper's `act`/`msg` are pure
//! functions of `(v, N(v), W, state, memory)`; our [`Node`] is the memoized
//! form — `observe` feeds board entries one at a time, and the node's state
//! must remain a deterministic function of (local view, observed prefix).
//! The engine drives these callbacks with model-specific timing, so a node
//! written for `SIMASYNC` literally never observes anything before composing.

use crate::board::Whiteboard;
use crate::model::Model;
use wb_graph::{Graph, NodeId};
use wb_math::BitVec;

/// Everything a node knows at start-up (paper §2): its identifier, the total
/// number of nodes `n`, and the identifiers of its neighbors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalView {
    /// This node's identifier (`1..=n`).
    pub id: NodeId,
    /// Total number of nodes.
    pub n: usize,
    /// Sorted neighbor identifiers.
    pub neighbors: Vec<NodeId>,
}

impl LocalView {
    /// Build the views for every node of `g`.
    pub fn all_of(g: &Graph) -> Vec<LocalView> {
        g.nodes()
            .map(|id| LocalView {
                id,
                n: g.n(),
                neighbors: g.neighbors(id).to_vec(),
            })
            .collect()
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether `other` is a neighbor.
    pub fn is_neighbor(&self, other: NodeId) -> bool {
        self.neighbors.binary_search(&other).is_ok()
    }
}

/// The per-node state machine.
///
/// Call discipline (enforced by the engine, per model):
///
/// 1. `observe(seq, writer, msg)` is invoked once for every board entry, in
///    write order, on every node that has not yet terminated — *except* that a
///    `SIMASYNC` node's `compose` precedes all observations.
/// 2. `wants_to_activate` is polled each round while the node is awake (free
///    models only; simultaneous models activate everyone in round 1). Once it
///    returns `true` the node is active forever.
/// 3. `compose` is called exactly once: at activation (asynchronous models) or
///    at write time (synchronous models).
pub trait Node: Clone {
    /// Digest one new board entry. `writer` is engine metadata exposed for
    /// convenience; faithful protocols encode the ID in the message bits and
    /// may ignore it.
    fn observe(&mut self, view: &LocalView, seq: usize, writer: NodeId, msg: &BitVec);

    /// Awake → active decision. Free-model protocols override this; the
    /// default (`true`) makes the node behave simultaneously.
    fn wants_to_activate(&mut self, _view: &LocalView) -> bool {
        true
    }

    /// Produce this node's single message.
    fn compose(&mut self, view: &LocalView) -> BitVec;
}

/// How far the exhaustive tier's partial-order reduction may trust two
/// writes to commute (see [`Protocol::commutes`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Commutativity {
    /// No commutativity claim: the explorer must try every interleaving.
    /// Always sound; this is the default.
    #[default]
    None,
    /// Writes by non-adjacent nodes commute: reaching configurations are
    /// identical under swaps of consecutive non-adjacent writers. Correct
    /// for *local* protocols, whose nodes react only to neighbors' entries
    /// (the `writer`/`seq` arguments must not leak non-neighbor information
    /// into the node state) and whose activation decisions likewise depend
    /// only on neighbor writes.
    NonAdjacent,
    /// Every pair of writes commutes (reaching configurations depend only on
    /// the *set* of writes performed). Holds structurally for `SIMASYNC`
    /// protocols — the engine asserts nothing but grants this upgrade
    /// automatically for them — and may be declared by order-oblivious
    /// protocols in other models.
    All,
}

/// A whiteboard protocol: node factory, model declaration, bit budget and the
/// output function.
pub trait Protocol {
    /// The per-node state machine type.
    type Node: Node;
    /// The problem's answer type.
    type Output;

    /// Which model this protocol is designed for.
    fn model(&self) -> Model;

    /// Maximum message size in bits on `n`-node inputs. The engine *enforces*
    /// this (a violation is a protocol bug and panics), making the paper's
    /// `O(f(n))` accounting a runtime invariant.
    fn budget_bits(&self, n: usize) -> u32;

    /// Create the state machine for one node.
    fn spawn(&self, view: &LocalView) -> Self::Node;

    /// The output function `out(W)`, evaluated by the last node to terminate —
    /// it sees only the final whiteboard (plus `n`).
    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output;

    /// How much write commutativity the exhaustive tier's DPOR layer may
    /// exploit. The default ([`Commutativity::None`]) disables partial-order
    /// reduction for this protocol, which is always sound; override only
    /// when the protocol genuinely satisfies the declared contract (see
    /// [`Commutativity`]). `SIMASYNC` protocols are upgraded to
    /// [`Commutativity::All`] automatically and need not override.
    fn commutes(&self) -> Commutativity {
        Commutativity::None
    }

    /// Whether the protocol is equivariant under graph automorphisms that
    /// fix [`Self::pinned_nodes`]: relabeling the input graph by such an
    /// automorphism relabels every execution (states, messages via
    /// [`Self::relabel_message`], outputs) without otherwise changing
    /// behavior. Concretely: node behavior may depend on its view and the
    /// pinned IDs, but not on ID *order* or arithmetic that the relabeling
    /// breaks. The default (`false`) disables the symmetry quotient, which
    /// is always sound.
    fn equivariant(&self) -> bool {
        false
    }

    /// Nodes the protocol distinguishes by ID (e.g. a designated root). The
    /// symmetry quotient restricts to automorphisms fixing each of these
    /// pointwise. IDs outside `1..=n` are ignored.
    fn pinned_nodes(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Rewrite node IDs embedded in a message under the relabeling `perm`
    /// (`perm[v - 1]` = new ID of old node `v`). Only called when
    /// [`Self::equivariant`] is true; the default (returning the message
    /// unchanged) is correct for protocols whose messages carry no IDs.
    fn relabel_message(&self, _n: usize, msg: &BitVec, _perm: &[NodeId]) -> BitVec {
        msg.clone()
    }
}

impl<P: Protocol> Protocol for &P {
    type Node = P::Node;
    type Output = P::Output;

    fn model(&self) -> Model {
        (**self).model()
    }

    fn budget_bits(&self, n: usize) -> u32 {
        (**self).budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        (**self).spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
        (**self).output(n, board)
    }

    fn commutes(&self) -> Commutativity {
        (**self).commutes()
    }

    fn equivariant(&self) -> bool {
        (**self).equivariant()
    }

    fn pinned_nodes(&self) -> Vec<NodeId> {
        (**self).pinned_nodes()
    }

    fn relabel_message(&self, n: usize, msg: &BitVec, perm: &[NodeId]) -> BitVec {
        (**self).relabel_message(n, msg, perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_match_graph() {
        let g = Graph::from_edges(4, &[(1, 2), (2, 4)]);
        let views = LocalView::all_of(&g);
        assert_eq!(views.len(), 4);
        assert_eq!(views[1].id, 2);
        assert_eq!(views[1].neighbors, vec![1, 4]);
        assert_eq!(views[1].degree(), 2);
        assert!(views[1].is_neighbor(4));
        assert!(!views[1].is_neighbor(3));
        assert_eq!(views[2].degree(), 0);
    }
}
