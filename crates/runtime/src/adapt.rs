//! Lemma 4 as executable code: the inclusion
//! `PSIMASYNC[f] ⊆ PSIMSYNC[f] ⊆ PASYNC[f] ⊆ PSYNC[f]`.
//!
//! [`Promote`] wraps a protocol designed for a weaker model so that it runs in
//! a stronger one, preserving its outputs, with exactly the paper's
//! constructions:
//!
//! - `SIMASYNC → *`: "nodes create their message initially, ignoring the
//!   messages present on the whiteboard" — the wrapper composes the inner
//!   message at spawn and replays it whenever asked.
//! - `SIMSYNC → ASYNC`: "fix an order (for instance v₁…v_n) and use this order
//!   for a sequential activation" — node `v_i` activates exactly when `i−1`
//!   messages are on the board, so its frozen message equals the message the
//!   SIMSYNC protocol would compose under the identity write order.
//! - `SIMSYNC → SYNC`: activate immediately, compose at write time (the two
//!   engines then coincide).
//! - `ASYNC → SYNC`: "force the protocols in SYNC to create their messages
//!   based only on what was known when they became active" — the wrapper
//!   caches the inner message at activation and replays it at write time.

use crate::model::Model;
use crate::protocol::{Commutativity, LocalView, Node, Protocol};
use crate::Whiteboard;
use wb_graph::NodeId;
use wb_math::BitVec;

/// A protocol promoted to a stronger model (Lemma 4).
///
/// ```
/// use wb_runtime::adapt::Promote;
/// use wb_runtime::{Model, Protocol};
/// # use wb_runtime::{LocalView, Node, Whiteboard};
/// # use wb_math::BitVec;
/// # #[derive(Clone)] struct N;
/// # impl Node for N {
/// #     fn observe(&mut self, _: &LocalView, _: usize, _: u32, _: &BitVec) {}
/// #     fn compose(&mut self, _: &LocalView) -> BitVec {
/// #         let mut w = wb_math::BitWriter::new(); w.write_bits(1, 1); w.finish()
/// #     }
/// # }
/// # struct P;
/// # impl Protocol for P {
/// #     type Node = N; type Output = usize;
/// #     fn model(&self) -> Model { Model::SimAsync }
/// #     fn budget_bits(&self, _: usize) -> u32 { 1 }
/// #     fn spawn(&self, _: &LocalView) -> N { N }
/// #     fn output(&self, _: usize, b: &Whiteboard) -> usize { b.len() }
/// # }
/// let promoted = Promote::new(P, Model::Sync);
/// assert_eq!(promoted.model(), Model::Sync);        // runs under SYNC rules
/// assert_eq!(promoted.budget_bits(10), P.budget_bits(10)); // same f(n)
/// ```
pub struct Promote<P> {
    inner: P,
    target: Model,
}

impl<P: Protocol> Promote<P> {
    /// Wrap `inner` to run under `target`. Panics unless
    /// `target.includes(inner.model())`.
    pub fn new(inner: P, target: Model) -> Self {
        assert!(
            target.includes(inner.model()),
            "cannot demote {} protocol to {target}",
            inner.model()
        );
        Promote { inner, target }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// Node wrapper implementing the promotion semantics.
#[derive(Clone)]
pub struct PromotedNode<N> {
    inner: N,
    id: NodeId,
    source: Model,
    target: Model,
    seen: usize,
    cached: Option<BitVec>,
}

impl<N: Node> Node for PromotedNode<N> {
    fn observe(&mut self, view: &LocalView, seq: usize, writer: NodeId, msg: &BitVec) {
        self.seen += 1;
        // A SIMASYNC source never observes (its message is already cached);
        // an ASYNC source stops observing once its message is cached.
        let forward = match self.source {
            Model::SimAsync => false,
            Model::Async => self.cached.is_none(),
            _ => true,
        };
        if forward {
            self.inner.observe(view, seq, writer, msg);
        }
    }

    fn wants_to_activate(&mut self, view: &LocalView) -> bool {
        match (self.source, self.target) {
            // Simultaneous sources: ready from the first round.
            (Model::SimAsync, _) => true,
            // Sequential activation construction of Lemma 4: v_i raises its
            // hand once all of v_1..v_{i-1} have written.
            (Model::SimSync, Model::Async) => self.seen == self.id as usize - 1,
            (Model::SimSync, _) => true,
            // Free sources: forward, caching at the activation instant so a
            // SYNC engine still writes the activation-time message.
            (Model::Async, _) => {
                if self.inner.wants_to_activate(view) {
                    if self.cached.is_none() {
                        self.cached = Some(self.inner.compose(view));
                    }
                    true
                } else {
                    false
                }
            }
            (Model::Sync, _) => self.inner.wants_to_activate(view),
        }
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        match self.cached.take() {
            Some(msg) => msg,
            None => self.inner.compose(view),
        }
    }
}

impl<P: Protocol> Protocol for Promote<P> {
    type Node = PromotedNode<P::Node>;
    type Output = P::Output;

    fn model(&self) -> Model {
        self.target
    }

    fn budget_bits(&self, n: usize) -> u32 {
        self.inner.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        let source = self.inner.model();
        let mut inner = self.inner.spawn(view);
        // SIMASYNC nodes compose before observing anything; cache now so the
        // stronger engine (which may compose at write time) replays it.
        let cached = if source == Model::SimAsync {
            Some(inner.compose(view))
        } else {
            None
        };
        PromotedNode {
            inner,
            id: view.id,
            source,
            target: self.target,
            seen: 0,
            cached,
        }
    }

    fn output(&self, n: usize, board: &Whiteboard) -> P::Output {
        self.inner.output(n, board)
    }

    fn commutes(&self) -> Commutativity {
        match (self.inner.model(), self.target) {
            // A SIMASYNC source's message is cached at spawn, so the wrapped
            // run depends only on the written set regardless of the target
            // engine's timing.
            (Model::SimAsync, _) => Commutativity::All,
            // The sequential-activation construction counts *all* writes
            // (`seen == id - 1`), so even non-adjacent swaps change
            // activation timing: no commutativity survives promotion.
            (Model::SimSync, Model::Async) => Commutativity::None,
            _ => self.inner.commutes(),
        }
    }

    fn equivariant(&self) -> bool {
        match (self.inner.model(), self.target) {
            // Sequential activation uses the numeric ID as a threshold,
            // which relabeling breaks.
            (Model::SimSync, Model::Async) => false,
            _ => self.inner.equivariant(),
        }
    }

    fn pinned_nodes(&self) -> Vec<NodeId> {
        self.inner.pinned_nodes()
    }

    fn relabel_message(&self, n: usize, msg: &BitVec, perm: &[NodeId]) -> BitVec {
        self.inner.relabel_message(n, msg, perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{MaxIdAdversary, MinIdAdversary, RandomAdversary};
    use crate::engine::toys::*;
    use crate::engine::{run, Outcome};
    use crate::exhaustive::assert_all_schedules;
    use wb_graph::generators;

    #[test]
    fn simasync_promotes_everywhere_with_same_output() {
        let g = generators::gnp(6, 0.5, &mut rand::rngs::mock::StepRng::new(7, 11));
        for target in Model::ALL {
            let p = Promote::new(EchoId, target);
            assert_eq!(p.model(), target);
            for adv_seed in 0..3 {
                let report = run(&p, &g, &mut RandomAdversary::new(adv_seed));
                assert_eq!(
                    report.outcome,
                    Outcome::Success(vec![1, 2, 3, 4, 5, 6]),
                    "{target}"
                );
            }
        }
    }

    #[test]
    fn simsync_to_async_forces_identity_order() {
        let g = generators::path(5);
        let p = Promote::new(SeenCount, Model::Async);
        // The sequential-activation construction leaves the adversary no
        // choice: compare against the native SIMSYNC run under min-ID.
        let native = run(&SeenCount, &g, &mut MinIdAdversary);
        let promoted = run(&p, &g, &mut MaxIdAdversary);
        assert_eq!(promoted.write_order, vec![1, 2, 3, 4, 5]);
        match (&promoted.outcome, &native.outcome) {
            (Outcome::Success(a), Outcome::Success(b)) => assert_eq!(a, b),
            _ => panic!("expected success"),
        }
    }

    #[test]
    fn simsync_to_sync_is_transparent() {
        let g = generators::path(4);
        let p = Promote::new(SeenCount, Model::Sync);
        let a = run(&p, &g, &mut MinIdAdversary);
        let b = run(&SeenCount, &g, &mut MinIdAdversary);
        match (a.outcome, b.outcome) {
            (Outcome::Success(x), Outcome::Success(y)) => assert_eq!(x, y),
            _ => panic!("expected success"),
        }
    }

    #[test]
    fn async_to_sync_preserves_frozen_semantics() {
        let g = generators::path(4);
        let p = Promote::new(FrozenSeenCount, Model::Sync);
        // Even under a SYNC engine (compose at write time), the promoted
        // protocol must write the activation-time message: seen = 0 for all.
        let report = run(&p, &g, &mut MaxIdAdversary);
        let out = report.outcome.unwrap();
        assert!(out.iter().all(|&(_, seen)| seen == 0), "{out:?}");
    }

    #[test]
    fn chain_promoted_to_itself_is_identity() {
        let g = generators::path(4);
        let p = Promote::new(Chain, Model::Sync);
        let report = run(&p, &g, &mut MaxIdAdversary);
        assert_eq!(report.write_order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn promotion_exhaustive_on_all_schedules() {
        let g = generators::path(4);
        for target in [Model::SimSync, Model::Async, Model::Sync] {
            let p = Promote::new(EchoId, target);
            assert_all_schedules(&p, &g, 100, |out| out == &vec![1, 2, 3, 4]);
        }
    }

    #[test]
    #[should_panic(expected = "cannot demote")]
    fn demotion_is_rejected() {
        Promote::new(Chain, Model::SimAsync);
    }
}
