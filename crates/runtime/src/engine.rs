//! The round loop of the whiteboard machine.
//!
//! Each round: (1) every awake node may become active (free models poll
//! `wants_to_activate`; simultaneous models activated everyone up front); in
//! asynchronous models the node's message is frozen at this moment; (2) the
//! adversary picks one active node; (3) its message — frozen, or composed now
//! in synchronous models — is appended to the board and the node terminates;
//! (4) surviving nodes observe the new entry.
//!
//! Differences from the paper's letter, none observable: the paper has a
//! written node terminate one round *after* its message appears; since a
//! written node can never be picked again ("no message of node v_j appears on
//! W" is required for writing) nor act on anything, we terminate it
//! immediately. Round indices shift by one; the set of reachable boards,
//! outputs and deadlocks is identical.

use crate::adversary::Adversary;
use crate::board::Whiteboard;
use crate::model::Model;
use crate::protocol::{LocalView, Node, Protocol};
use std::sync::Arc;
use wb_graph::{Graph, NodeId};
use wb_math::BitVec;

/// Terminal result of an execution.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Outcome<O> {
    /// All nodes terminated; the output function was applied to the final
    /// board (a *successful configuration*).
    Success(O),
    /// No node is active but some never wrote (a *corrupted configuration* /
    /// deadlock).
    Deadlock {
        /// Nodes still awake when the system stalled.
        awake: Vec<NodeId>,
    },
}

impl<O> Outcome<O> {
    /// The success value, panicking on deadlock.
    pub fn unwrap(self) -> O {
        match self {
            Outcome::Success(o) => o,
            Outcome::Deadlock { awake } => panic!("deadlock with awake nodes {awake:?}"),
        }
    }

    /// Whether the run reached a successful configuration.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success(_))
    }
}

/// Full record of one execution.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Success with output, or deadlock.
    pub outcome: Outcome<O>,
    /// Writers in write order (length = number of rounds executed). Includes
    /// the rounds whose write was dropped by a fault — the schedule is the
    /// adversary's full pick sequence; [`Self::crashed`] marks the casualties.
    pub write_order: Vec<NodeId>,
    /// The final whiteboard (message-size ledger included).
    pub board: Whiteboard,
    /// Nodes whose single write was dropped by a fault
    /// ([`Engine::step_crash`]), in crash order. Empty for fault-free runs.
    pub crashed: Vec<NodeId>,
}

impl<O> RunReport<O> {
    /// Largest message written, in bits.
    pub fn max_message_bits(&self) -> usize {
        self.board.max_message_bits()
    }

    /// Total bits on the final board.
    pub fn total_bits(&self) -> usize {
        self.board.total_bits()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Awake,
    Active,
    Terminated,
}

/// A canonical, write-order-oblivious snapshot of a configuration.
///
/// The encoding covers everything that determines a configuration's future
/// behavior for *order-oblivious* protocols (see
/// [`crate::exhaustive::DedupPolicy`]): the per-node statuses, every frozen
/// (activation-time) message, and the board entries **sorted by writer** —
/// well-defined because the one-write rule makes writers unique. The write
/// order itself is deliberately excluded: two schedule prefixes that
/// permute into the same configuration compare equal, which is exactly what
/// lets the schedule explorer collapse the `n!` tree into the DAG of
/// distinct configurations.
///
/// Snapshots are exact (full encodings, not hashes), so deduplication can
/// never merge two genuinely different configurations. The streaming
/// [`Fingerprint`] is the probabilistic counterpart: same encoding order,
/// no intermediate buffer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalState(Vec<u64>);

impl CanonicalState {
    /// Size of the encoding in 64-bit words (for memory accounting).
    pub fn words(&self) -> usize {
        self.0.len()
    }

    /// A shard key derived from the encoding itself, so orbit-canonical
    /// exact keys shard consistently no matter which orbit member was
    /// probed (the explorer's striped seen-set needs key → shard to be a
    /// pure function of the key).
    pub(crate) fn shard_key(&self) -> u64 {
        let mut digest = wb_math::hash::Digest128::new();
        for &word in &self.0 {
            digest.put(word);
        }
        (digest.finish() >> 64) as u64
    }
}

/// A 128-bit streaming digest of the canonical configuration encoding.
///
/// Two independent 64-bit mixing streams are fed the exact word sequence of
/// [`CanonicalState`] (same order, same length framing), so equal canonical
/// states always produce equal fingerprints, and the probe builds no
/// intermediate buffer — computing one performs **zero heap allocations**
/// (pinned by the `alloc_regression` integration test). Distinct states
/// collide with probability ~`q²/2¹²⁹` after `q` probes (birthday bound over
/// 128 bits, assuming the mixers behave like independent random functions) —
/// about 10⁻²⁰ for a billion-state exploration. For certified runs,
/// [`crate::exhaustive::DedupPolicy::Exact`] keeps the full encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The digest as a single 128-bit value.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// The high 64 bits — what the striped seen-set uses to pick a shard.
    pub fn shard_key(&self) -> u64 {
        (self.0 >> 64) as u64
    }
}

/// Where the canonical encoding streams its words: a buffer (exact
/// snapshots) or the fingerprint mixers. One encoder, two consumers — the
/// two dedup representations can never drift apart.
trait CanonicalSink {
    fn put(&mut self, word: u64);
}

impl CanonicalSink for Vec<u64> {
    #[inline]
    fn put(&mut self, word: u64) {
        self.push(word);
    }
}

/// The canonical-encoding words streamed into [`wb_math::hash::Digest128`].
/// The digest construction lives in `wb-math` because it is part of the
/// certificate format: the independent verifier (`wb-verify`) recomputes
/// these fingerprints from its own re-implementation of the encoding, and
/// the two must agree bit for bit. Word throughput is two multiplies per
/// stream-pair — the probe runs at memory speed on typical configurations.
struct FingerprintSink(wb_math::hash::Digest128);

impl FingerprintSink {
    fn new() -> Self {
        FingerprintSink(wb_math::hash::Digest128::new())
    }

    fn finish(self) -> Fingerprint {
        Fingerprint(self.0.finish())
    }
}

impl CanonicalSink for FingerprintSink {
    #[inline]
    fn put(&mut self, word: u64) {
        self.0.put(word);
    }
}

/// One recorded mutation of an [`Engine`], undone in reverse order by
/// [`Engine::undo`]. Recording happens only while a [`StepToken`] is
/// outstanding, so plain runs pay nothing.
enum UndoOp<N> {
    /// `status[i]` held this value.
    Status(usize, Status),
    /// `frozen[i]` held this value.
    Frozen(usize, Option<BitVec>),
    /// `nodes[i]` held this state (saved before a mutating callback).
    Node(usize, N),
    /// A board/write-order push (synchronous models: the message was
    /// composed at write time, nothing to restore beyond the pop).
    Write,
    /// A board/write-order push whose message came out of `frozen[i]`
    /// (asynchronous models): the popped message moves back into the freeze
    /// slot, so no message is ever cloned for the log.
    WriteRefreeze(usize),
    /// A crashed write ([`Engine::step_crash`]): the pick went into both
    /// `write_order` and `crashed` but never onto the board, so undo pops
    /// both (status/frozen/node restoration ride the ops above).
    Crash,
}

/// Checkpoint returned by [`Engine::step_token`]; hand it back to
/// [`Engine::undo`] (restore) or [`Engine::commit`] (accept). Tokens nest
/// and must be resolved newest-first, like a stack of savepoints.
#[derive(Debug)]
#[must_use = "a step token must be resolved via undo() or commit()"]
pub struct StepToken {
    mark: usize,
}

/// The stepwise machine. Most callers use [`run`]; the exhaustive executor
/// drives `Engine` directly, branching via [`Engine::step_token`] /
/// [`Engine::undo`] and cloning only the states that survive dedup.
pub struct Engine<'a, P: Protocol> {
    protocol: &'a P,
    model: Model,
    budget: u32,
    /// Immutable after construction and shared between clones: a branch
    /// point copies a pointer, not `n` neighbor lists.
    views: Arc<[LocalView]>,
    nodes: Vec<P::Node>,
    status: Vec<Status>,
    frozen: Vec<Option<BitVec>>,
    board: Whiteboard,
    write_order: Vec<NodeId>,
    /// Nodes whose write was dropped by [`Self::step_crash`], in crash order.
    crashed: Vec<NodeId>,
    /// Delta journal; only written while `tokens > 0`.
    undo: Vec<UndoOp<P::Node>>,
    /// Outstanding step tokens.
    tokens: u32,
}

impl<'a, P: Protocol> Clone for Engine<'a, P> {
    fn clone(&self) -> Self {
        Engine {
            protocol: self.protocol,
            model: self.model,
            budget: self.budget,
            views: Arc::clone(&self.views),
            nodes: self.nodes.clone(),
            status: self.status.clone(),
            frozen: self.frozen.clone(),
            board: self.board.clone(),
            write_order: self.write_order.clone(),
            crashed: self.crashed.clone(),
            // A clone is a fresh branch point: it does not inherit the
            // original's outstanding savepoints.
            undo: Vec::new(),
            tokens: 0,
        }
    }
}

impl<'a, P: Protocol> Engine<'a, P> {
    /// Initialize the machine on `g`: spawn one node per vertex; in
    /// simultaneous models activate everyone (freezing messages in
    /// `SIMASYNC`, where `compose` precedes every observation).
    pub fn new(protocol: &'a P, g: &Graph) -> Self {
        let n = g.n();
        assert!(n >= 1, "whiteboard protocols need at least one node");
        let model = protocol.model();
        let views: Arc<[LocalView]> = LocalView::all_of(g).into();
        let mut nodes: Vec<P::Node> = views.iter().map(|v| protocol.spawn(v)).collect();
        let mut frozen: Vec<Option<BitVec>> = vec![None; n];
        let status = if model.is_simultaneous() {
            if model.is_asynchronous() {
                for (i, node) in nodes.iter_mut().enumerate() {
                    frozen[i] = Some(node.compose(&views[i]));
                }
            }
            vec![Status::Active; n]
        } else {
            vec![Status::Awake; n]
        };
        Engine {
            protocol,
            model,
            budget: protocol.budget_bits(n),
            views,
            nodes,
            status,
            frozen,
            board: Whiteboard::with_capacity(n),
            write_order: Vec::with_capacity(n),
            crashed: Vec::new(),
            undo: Vec::new(),
            tokens: 0,
        }
    }

    /// Whether step/activation deltas are being journaled.
    #[inline]
    fn recording(&self) -> bool {
        self.tokens > 0
    }

    /// Open a savepoint: every mutation made by subsequent
    /// [`Self::step`]/[`Self::activation_phase`] calls is journaled until the
    /// token is resolved with [`Self::undo`] or [`Self::commit`]. This is how
    /// the exhaustive executors branch without cloning: step → recurse →
    /// undo, on one engine. While no token is outstanding the journal is
    /// inert and plain runs pay nothing.
    pub fn step_token(&mut self) -> StepToken {
        if self.tokens == 0 && self.undo.capacity() == 0 {
            // One step journals at most ~2n ops (status + node per survivor
            // plus the write); reserve once so hot expansion loops do not
            // regrow the journal from empty.
            self.undo.reserve(2 * self.nodes.len() + 8);
        }
        self.tokens += 1;
        StepToken {
            mark: self.undo.len(),
        }
    }

    /// Roll the engine back to the state it had when `token` was issued.
    /// Tokens must be resolved newest-first (LIFO).
    pub fn undo(&mut self, token: StepToken) {
        assert!(self.tokens > 0, "undo without an outstanding step token");
        assert!(
            token.mark <= self.undo.len(),
            "step tokens must be resolved newest-first"
        );
        self.tokens -= 1;
        while self.undo.len() > token.mark {
            match self.undo.pop().expect("loop guard") {
                UndoOp::Status(i, s) => self.status[i] = s,
                UndoOp::Frozen(i, f) => self.frozen[i] = f,
                UndoOp::Node(i, n) => self.nodes[i] = n,
                UndoOp::Write => {
                    self.board.pop().expect("journaled write has a board entry");
                    self.write_order.pop();
                }
                UndoOp::WriteRefreeze(i) => {
                    let entry = self.board.pop().expect("journaled write has a board entry");
                    self.write_order.pop();
                    self.frozen[i] = Some(entry.msg);
                }
                UndoOp::Crash => {
                    self.write_order.pop();
                    self.crashed.pop();
                }
            }
        }
    }

    /// Accept every change recorded under `token` and drop the journal.
    /// Only valid for the outermost token (the journal below it would
    /// otherwise be left inconsistent for enclosing savepoints).
    pub fn commit(&mut self, token: StepToken) {
        assert_eq!(
            self.tokens, 1,
            "commit is only valid for the outermost step token"
        );
        debug_assert_eq!(token.mark, 0);
        let _ = token;
        self.tokens = 0;
        self.undo.clear();
    }

    /// Poll all awake nodes' activation predicates (free models). Must be
    /// called once per round, before [`Self::active_set`]/[`Self::step`].
    pub fn activation_phase(&mut self) {
        if self.model.is_simultaneous() {
            return;
        }
        let recording = self.recording();
        for i in 0..self.nodes.len() {
            if self.status[i] != Status::Awake {
                continue;
            }
            if recording {
                // `wants_to_activate` takes `&mut self` (promotion adapters
                // cache their composed message there), so the polled node
                // must be journaled even when it declines.
                self.undo.push(UndoOp::Node(i, self.nodes[i].clone()));
            }
            if self.nodes[i].wants_to_activate(&self.views[i]) {
                if recording {
                    self.undo.push(UndoOp::Status(i, Status::Awake));
                }
                self.status[i] = Status::Active;
                if self.model.is_asynchronous() {
                    // "nodes create their final messages as soon as they
                    // become active" — freeze now.
                    let msg = self.nodes[i].compose(&self.views[i]);
                    if recording {
                        self.undo.push(UndoOp::Frozen(i, self.frozen[i].take()));
                    }
                    self.frozen[i] = Some(msg);
                }
            }
        }
    }

    /// Currently active node IDs, ascending.
    pub fn active_set(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.active_set_into(&mut out);
        out
    }

    /// Fill `buf` with the currently active node IDs, ascending. The
    /// reusable-buffer form of [`Self::active_set`]: a Monte Carlo campaign
    /// runs millions of trials, and one `Vec` allocation per round is the
    /// difference between memory-speed trials and allocator-bound ones.
    pub fn active_set_into(&self, buf: &mut Vec<NodeId>) {
        buf.clear();
        buf.extend(
            self.status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Active)
                .map(|(i, _)| i as NodeId + 1),
        );
    }

    /// Whether any node is currently active (no allocation, unlike
    /// [`Self::active_set`]).
    pub fn has_active(&self) -> bool {
        self.status.iter().any(|s| *s == Status::Active)
    }

    /// Number of currently active nodes (no allocation).
    pub fn active_count(&self) -> usize {
        self.status.iter().filter(|s| **s == Status::Active).count()
    }

    /// Whether node `id` is currently active (the explorer iterates IDs and
    /// re-checks instead of materializing [`Self::active_set`]).
    pub(crate) fn is_active(&self, id: NodeId) -> bool {
        self.status[id as usize - 1] == Status::Active
    }

    /// Number of nodes.
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The board so far.
    pub fn board(&self) -> &Whiteboard {
        &self.board
    }

    /// The adversary's picks so far, in write order.
    pub fn write_order(&self) -> &[NodeId] {
        &self.write_order
    }

    /// Stream the canonical configuration encoding into `sink`: statuses
    /// (packed 2 bits per node), frozen messages in node order, then board
    /// entries in writer order (via the board's persistent writer index —
    /// no sort), every message length-framed so the encoding is
    /// unambiguous. This single walker feeds both [`Self::canonical_state`]
    /// and [`Self::canonical_fingerprint`], which therefore can never
    /// disagree on the encoding.
    fn encode_canonical<S: CanonicalSink>(&self, sink: &mut S) {
        // Statuses, packed 2 bits per node.
        let mut acc = 0u64;
        let mut filled = 0u32;
        for s in &self.status {
            let code = match s {
                Status::Awake => 0u64,
                Status::Active => 1,
                Status::Terminated => 2,
            };
            acc |= code << filled;
            filled += 2;
            if filled == 64 {
                sink.put(acc);
                acc = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            sink.put(acc);
        }
        // Frozen (activation-time) messages: a presence bitmap per 64 nodes,
        // then the occupied slots in node order, length-framed. Two states
        // with the same board but different freeze points must not merge;
        // synchronous models (never any frozen slot) pay one word per 64
        // nodes instead of one per node.
        let mut mask = 0u64;
        let mut bit = 0u32;
        for f in &self.frozen {
            if f.is_some() {
                mask |= 1 << bit;
            }
            bit += 1;
            if bit == 64 {
                sink.put(mask);
                mask = 0;
                bit = 0;
            }
        }
        if bit > 0 {
            sink.put(mask);
        }
        for f in self.frozen.iter().flatten() {
            sink.put(f.len() as u64);
            for &w in f.as_words() {
                sink.put(w);
            }
        }
        // Board entries in writer order (writers are unique: one write per
        // node).
        sink.put(self.board.len() as u64);
        for e in self.board.entries_by_writer() {
            sink.put(u64::from(e.writer));
            sink.put(e.msg.len() as u64);
            for &w in e.msg.as_words() {
                sink.put(w);
            }
        }
    }

    /// Exact canonical snapshot of the current configuration (see
    /// [`CanonicalState`]). Cost is `O(n + board bits/64)`; no node state is
    /// inspected — node state is a deterministic function of the observed
    /// prefix, so for order-oblivious protocols the snapshot determines it.
    pub fn canonical_state(&self) -> CanonicalState {
        let mut words = Vec::with_capacity(
            self.nodes.len() / 16 + 3 * self.board.len() + self.frozen.len() + 4,
        );
        self.encode_canonical(&mut words);
        CanonicalState(words)
    }

    /// 128-bit streaming digest of the canonical encoding (see
    /// [`Fingerprint`]): same word sequence as [`Self::canonical_state`],
    /// but fed straight into two mixers — no intermediate buffer, no heap
    /// allocation. This is the default dedup probe of the schedule explorer.
    pub fn canonical_fingerprint(&self) -> Fingerprint {
        let mut sink = FingerprintSink::new();
        self.encode_canonical(&mut sink);
        sink.finish()
    }

    /// Stream the canonical encoding of the configuration *relabeled* by a
    /// graph automorphism: `fwd[v - 1]` is the new ID of old node `v` and
    /// `inv` is the inverse map. The output is exactly what
    /// [`Self::encode_canonical`] would produce on the relabeled execution
    /// (statuses and frozen slots permuted, board entries re-sorted by new
    /// writer, embedded IDs rewritten via [`Protocol::relabel_message`]), so
    /// the symmetry quotient can take a minimum over the automorphism group
    /// without ever materializing permuted engines. Only meaningful when the
    /// protocol is [`Protocol::equivariant`].
    fn encode_canonical_permuted<S: CanonicalSink>(
        &self,
        fwd: &[NodeId],
        inv: &[NodeId],
        sink: &mut S,
    ) {
        let n = self.nodes.len();
        // Statuses of the relabeled configuration, packed 2 bits per node.
        let mut acc = 0u64;
        let mut filled = 0u32;
        for j in 0..n {
            let code = match self.status[inv[j] as usize - 1] {
                Status::Awake => 0u64,
                Status::Active => 1,
                Status::Terminated => 2,
            };
            acc |= code << filled;
            filled += 2;
            if filled == 64 {
                sink.put(acc);
                acc = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            sink.put(acc);
        }
        // Frozen slots, permuted: presence bitmap then contents in (new)
        // node order.
        let mut mask = 0u64;
        let mut bit = 0u32;
        for j in 0..n {
            if self.frozen[inv[j] as usize - 1].is_some() {
                mask |= 1 << bit;
            }
            bit += 1;
            if bit == 64 {
                sink.put(mask);
                mask = 0;
                bit = 0;
            }
        }
        if bit > 0 {
            sink.put(mask);
        }
        for j in 0..n {
            if let Some(f) = &self.frozen[inv[j] as usize - 1] {
                let msg = self.protocol.relabel_message(n, f, fwd);
                sink.put(msg.len() as u64);
                for &w in msg.as_words() {
                    sink.put(w);
                }
            }
        }
        // Board entries sorted by *new* writer: writers stay unique under a
        // permutation, so bucketing by new ID replaces the sort.
        let mut by_new_writer: Vec<Option<&crate::board::Entry>> = vec![None; n];
        for e in self.board.entries() {
            by_new_writer[fwd[e.writer as usize - 1] as usize - 1] = Some(e);
        }
        sink.put(self.board.len() as u64);
        for (slot, e) in by_new_writer.iter().enumerate() {
            if let Some(e) = e {
                let msg = self.protocol.relabel_message(n, &e.msg, fwd);
                sink.put(slot as u64 + 1);
                sink.put(msg.len() as u64);
                for &w in msg.as_words() {
                    sink.put(w);
                }
            }
        }
    }

    /// Fingerprint of the configuration relabeled by `fwd`/`inv` (see
    /// [`Self::encode_canonical_permuted`]).
    pub(crate) fn permuted_fingerprint(&self, fwd: &[NodeId], inv: &[NodeId]) -> Fingerprint {
        let mut sink = FingerprintSink::new();
        self.encode_canonical_permuted(fwd, inv, &mut sink);
        sink.finish()
    }

    /// Exact canonical snapshot of the configuration relabeled by
    /// `fwd`/`inv` (see [`Self::encode_canonical_permuted`]).
    pub(crate) fn permuted_state(&self, fwd: &[NodeId], inv: &[NodeId]) -> CanonicalState {
        let mut words = Vec::with_capacity(
            self.nodes.len() / 16 + 3 * self.board.len() + self.frozen.len() + 4,
        );
        self.encode_canonical_permuted(fwd, inv, &mut words);
        CanonicalState(words)
    }

    /// Snapshot the terminal configuration *relabeled* by the automorphism
    /// `fwd` into a report: writers and casualties mapped through `fwd`,
    /// message IDs rewritten via [`Protocol::relabel_message`], and the
    /// outcome recomputed on the relabeled board. The symmetry quotient uses
    /// this to emit the terminals of orbit siblings it never expands.
    pub(crate) fn permuted_report(&self, fwd: &[NodeId]) -> RunReport<P::Output> {
        let n = self.nodes.len();
        let board = Whiteboard::from_messages(self.board.entries().iter().map(|e| {
            (
                fwd[e.writer as usize - 1],
                self.protocol.relabel_message(n, &e.msg, fwd),
            )
        }));
        let outcome = if self.is_complete() {
            Outcome::Success(self.protocol.output(n, &board))
        } else {
            let mut awake: Vec<NodeId> = self
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s != Status::Terminated)
                .map(|(i, _)| fwd[i])
                .collect();
            awake.sort_unstable();
            Outcome::Deadlock { awake }
        };
        RunReport {
            outcome,
            write_order: self
                .write_order
                .iter()
                .map(|&v| fwd[v as usize - 1])
                .collect(),
            board,
            crashed: self.crashed.iter().map(|&v| fwd[v as usize - 1]).collect(),
        }
    }

    /// Execute one write: `pick` (which must be active) writes its message,
    /// terminates, and all surviving nodes observe the new entry.
    pub fn step(&mut self, pick: NodeId) {
        self.step_unobserved(pick);
        self.deliver_last_entry();
    }

    /// Whether this engine runs a simultaneous model (the schedule explorer
    /// uses this to pick the write-only probe path).
    pub(crate) fn is_simultaneous(&self) -> bool {
        self.model.is_simultaneous()
    }

    /// The write half of [`Self::step`]: `pick` writes and terminates, but
    /// **no node observes the new entry yet**. The configuration encoding
    /// (statuses, frozen messages, board) is already final after this call —
    /// observation only mutates private node state — so the schedule
    /// explorer probes dedup on the cheap write-only state and pays for the
    /// observation fan-out ([`Self::deliver_last_entry`]) only on children
    /// that survive. Callers must deliver (or undo) before the next write.
    pub(crate) fn step_unobserved(&mut self, pick: NodeId) {
        let i = pick as usize - 1;
        assert_eq!(
            self.status[i],
            Status::Active,
            "adversary picked non-active node {pick}"
        );
        let recording = self.recording();
        let msg = if self.model.is_asynchronous() {
            // The frozen message moves onto the board; `WriteRefreeze`
            // moves it back on undo, so nothing is cloned here.
            self.frozen[i]
                .take()
                .expect("asynchronous node has no frozen message")
        } else {
            if recording {
                // `compose` takes `&mut self`; journal the pre-compose state.
                self.undo.push(UndoOp::Node(i, self.nodes[i].clone()));
            }
            self.nodes[i].compose(&self.views[i])
        };
        assert!(
            !msg.is_empty(),
            "node {pick} produced the empty word; a write must change the board"
        );
        assert!(
            msg.len() <= self.budget as usize,
            "node {pick} wrote {} bits, exceeding the declared budget of {} bits",
            msg.len(),
            self.budget
        );
        if recording {
            self.undo.push(UndoOp::Status(i, self.status[i]));
        }
        self.status[i] = Status::Terminated;
        self.board.push(pick, msg);
        self.write_order.push(pick);
        if recording {
            self.undo.push(if self.model.is_asynchronous() {
                UndoOp::WriteRefreeze(i)
            } else {
                UndoOp::Write
            });
        }
    }

    /// Execute one **crashed** write: `pick` (which must be active) composes
    /// its message exactly as in [`Self::step`] — a malformed message is a
    /// protocol bug whether or not the write then dies — but the message is
    /// dropped instead of reaching the board, and the node terminates
    /// silently. No observation fan-out happens: the board is unchanged, so
    /// no other node can distinguish "v crashed" from "v was never
    /// scheduled" until the run ends. The pick is appended to both
    /// [`Self::write_order`] (it consumed a schedule slot) and
    /// [`Self::crashed`], and is journaled under an outstanding
    /// [`StepToken`] just like a surviving write, so the exhaustive explorer
    /// can branch over *which* writes die.
    pub fn step_crash(&mut self, pick: NodeId) {
        let i = pick as usize - 1;
        assert_eq!(
            self.status[i],
            Status::Active,
            "adversary crashed non-active node {pick}"
        );
        let recording = self.recording();
        let msg = if self.model.is_asynchronous() {
            self.frozen[i]
                .take()
                .expect("asynchronous node has no frozen message")
        } else {
            if recording {
                self.undo.push(UndoOp::Node(i, self.nodes[i].clone()));
            }
            self.nodes[i].compose(&self.views[i])
        };
        assert!(
            !msg.is_empty(),
            "node {pick} produced the empty word; a write must change the board"
        );
        assert!(
            msg.len() <= self.budget as usize,
            "node {pick} wrote {} bits, exceeding the declared budget of {} bits",
            msg.len(),
            self.budget
        );
        if recording {
            if self.model.is_asynchronous() {
                // The frozen message was consumed by the crash; undo must
                // refreeze it.
                self.undo.push(UndoOp::Frozen(i, Some(msg)));
            }
            self.undo.push(UndoOp::Status(i, self.status[i]));
        }
        self.status[i] = Status::Terminated;
        self.write_order.push(pick);
        self.crashed.push(pick);
        if recording {
            self.undo.push(UndoOp::Crash);
        }
    }

    /// Nodes whose write was dropped by [`Self::step_crash`], in crash
    /// order. Empty for fault-free runs. A crashed node is exactly a node
    /// that is terminated but absent from the board, so this set is
    /// recoverable from the canonical configuration encoding — which is why
    /// faulted exploration needs no encoding change.
    pub fn crashed(&self) -> &[NodeId] {
        &self.crashed
    }

    /// Number of crashed writes so far (the explorer's spent fault budget).
    pub fn crashed_count(&self) -> usize {
        self.crashed.len()
    }

    /// The observation half of [`Self::step`]: every surviving node observes
    /// the most recent board entry.
    pub(crate) fn deliver_last_entry(&mut self) {
        let recording = self.recording();
        let seq = self.board.len() - 1;
        // Deliver straight out of the board (disjoint field borrows): the
        // observation fan-out clones nothing.
        let entry = self.board.entry(seq);
        let writer = entry.writer;
        let entry_msg = &entry.msg;
        for j in 0..self.nodes.len() {
            match self.status[j] {
                Status::Terminated => {}
                // An active asynchronous node's message is frozen; later
                // observations cannot influence it, so skip delivery.
                Status::Active if self.model.is_asynchronous() => {}
                _ => {
                    if recording {
                        self.undo.push(UndoOp::Node(j, self.nodes[j].clone()));
                    }
                    self.nodes[j].observe(&self.views[j], seq, writer, entry_msg)
                }
            }
        }
    }

    /// Whether every node has terminated.
    pub fn is_complete(&self) -> bool {
        self.status.iter().all(|s| *s == Status::Terminated)
    }

    /// Classify the current configuration: success with the decoded output,
    /// or deadlock with the still-awake nodes.
    fn outcome(&self) -> Outcome<P::Output> {
        if self.is_complete() {
            Outcome::Success(self.protocol.output(self.views.len(), &self.board))
        } else {
            Outcome::Deadlock {
                awake: self
                    .status
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s != Status::Terminated)
                    .map(|(i, _)| i as NodeId + 1)
                    .collect(),
            }
        }
    }

    /// Snapshot the current terminal configuration into a report without
    /// consuming the engine (call when the active set is empty). The
    /// exhaustive executors use this at leaves so they can undo back to the
    /// parent afterwards; [`Self::finish`] is the consuming form.
    pub fn report(&self) -> RunReport<P::Output> {
        RunReport {
            outcome: self.outcome(),
            write_order: self.write_order.clone(),
            board: self.board.clone(),
            crashed: self.crashed.clone(),
        }
    }

    /// Consume the engine into a report (call when the active set is empty).
    pub fn finish(self) -> RunReport<P::Output> {
        RunReport {
            outcome: self.outcome(),
            write_order: self.write_order,
            board: self.board,
            crashed: self.crashed,
        }
    }
}

/// Run `protocol` on `g` to completion under `adversary`.
pub fn run<P: Protocol, A: Adversary + ?Sized>(
    protocol: &P,
    g: &Graph,
    adversary: &mut A,
) -> RunReport<P::Output> {
    let mut engine = Engine::new(protocol, g);
    let mut active = Vec::with_capacity(g.n());
    loop {
        engine.activation_phase();
        engine.active_set_into(&mut active);
        if active.is_empty() {
            return engine.finish();
        }
        let pick = adversary.pick(&active, engine.board());
        engine.step(pick);
    }
}

/// One round of an execution timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRow {
    /// Round number (1-based; one write per round).
    pub round: usize,
    /// How many nodes were active when the adversary chose.
    pub active_before: usize,
    /// The node whose message was written.
    pub writer: NodeId,
    /// That message's length in bits.
    pub message_bits: usize,
}

/// Like [`run`], additionally recording a per-round timeline — useful for the
/// CLI, the examples, and for inspecting certificate-driven activation waves
/// (e.g. BFS layers opening all at once).
pub fn run_traced<P: Protocol, A: Adversary + ?Sized>(
    protocol: &P,
    g: &Graph,
    adversary: &mut A,
) -> (RunReport<P::Output>, Vec<TraceRow>) {
    let mut engine = Engine::new(protocol, g);
    let mut trace = Vec::with_capacity(g.n());
    loop {
        engine.activation_phase();
        let active = engine.active_set();
        if active.is_empty() {
            return (engine.finish(), trace);
        }
        let pick = adversary.pick(&active, engine.board());
        engine.step(pick);
        trace.push(TraceRow {
            round: trace.len() + 1,
            active_before: active.len(),
            writer: pick,
            message_bits: engine.board().entry(engine.board().len() - 1).msg.len(),
        });
    }
}

#[cfg(test)]
pub(crate) mod toys {
    //! Tiny protocols exercising each model's semantics; shared with the
    //! adapter and exhaustive tests.
    use super::*;
    use wb_math::{id_bits, BitReader, BitWriter};

    /// SIMASYNC: everyone writes its ID; output = sorted IDs from the board.
    pub struct EchoId;

    #[derive(Clone)]
    pub struct EchoNode {
        id: NodeId,
    }

    impl Node for EchoNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
            // SIMASYNC nodes never observe; reaching here under promotion is
            // fine because compose was cached at spawn.
        }
        fn compose(&mut self, view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(self.id as u64, id_bits(view.n));
            w.finish()
        }
    }

    impl Protocol for EchoId {
        type Node = EchoNode;
        type Output = Vec<NodeId>;
        fn model(&self) -> Model {
            Model::SimAsync
        }
        fn budget_bits(&self, n: usize) -> u32 {
            id_bits(n)
        }
        fn spawn(&self, view: &LocalView) -> EchoNode {
            EchoNode { id: view.id }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Vec<NodeId> {
            let mut ids: Vec<NodeId> = board
                .entries()
                .iter()
                .map(|e| BitReader::new(&e.msg).read_bits(id_bits(n)) as NodeId)
                .collect();
            ids.sort_unstable();
            ids
        }
    }

    /// SIMSYNC: message = (id, number of messages observed so far). Output:
    /// `(id, rank)` pairs in write order.
    pub struct SeenCount;

    #[derive(Clone, Default)]
    pub struct SeenNode {
        id: NodeId,
        seen: u64,
    }

    impl Node for SeenNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
            self.seen += 1;
        }
        fn compose(&mut self, view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(self.id as u64, id_bits(view.n));
            w.write_bits(self.seen, id_bits(view.n) + 1);
            w.finish()
        }
    }

    impl Protocol for SeenCount {
        type Node = SeenNode;
        type Output = Vec<(NodeId, u64)>;
        fn model(&self) -> Model {
            Model::SimSync
        }
        fn budget_bits(&self, n: usize) -> u32 {
            2 * id_bits(n) + 1
        }
        fn spawn(&self, view: &LocalView) -> SeenNode {
            SeenNode {
                id: view.id,
                seen: 0,
            }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
            board
                .entries()
                .iter()
                .map(|e| {
                    let mut r = BitReader::new(&e.msg);
                    let id = r.read_bits(id_bits(n)) as NodeId;
                    let seen = r.read_bits(id_bits(n) + 1);
                    (id, seen)
                })
                .collect()
        }
    }

    /// Same message function as [`SeenCount`] but declared ASYNC with
    /// immediate activation: everyone freezes `seen = 0` in round 1. The
    /// contrast with `SeenCount` is exactly the SIMSYNC/ASYNC semantic split.
    pub struct FrozenSeenCount;

    impl Protocol for FrozenSeenCount {
        type Node = SeenNode;
        type Output = Vec<(NodeId, u64)>;
        fn model(&self) -> Model {
            Model::Async
        }
        fn budget_bits(&self, n: usize) -> u32 {
            2 * id_bits(n) + 1
        }
        fn spawn(&self, view: &LocalView) -> SeenNode {
            SeenNode {
                id: view.id,
                seen: 0,
            }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
            SeenCount.output(n, board)
        }
    }

    /// SYNC, free: node `v_i` activates once `i−1` messages are on the board,
    /// forcing the write order `v_1, …, v_n` against any adversary.
    pub struct Chain;

    #[derive(Clone)]
    pub struct ChainNode {
        id: NodeId,
        seen: usize,
    }

    impl Node for ChainNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
            self.seen += 1;
        }
        fn wants_to_activate(&mut self, _view: &LocalView) -> bool {
            self.seen == self.id as usize - 1
        }
        fn compose(&mut self, view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(self.id as u64, id_bits(view.n));
            w.finish()
        }
    }

    impl Protocol for Chain {
        type Node = ChainNode;
        type Output = Vec<NodeId>;
        fn model(&self) -> Model {
            Model::Sync
        }
        fn budget_bits(&self, n: usize) -> u32 {
            id_bits(n)
        }
        fn spawn(&self, view: &LocalView) -> ChainNode {
            ChainNode {
                id: view.id,
                seen: 0,
            }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Vec<NodeId> {
            board
                .entries()
                .iter()
                .map(|e| BitReader::new(&e.msg).read_bits(id_bits(n)) as NodeId)
                .collect()
        }
    }

    /// Free protocol whose nodes never activate: guaranteed deadlock.
    pub struct NeverActivate;

    #[derive(Clone)]
    pub struct InertNode;

    impl Node for InertNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {}
        fn wants_to_activate(&mut self, _view: &LocalView) -> bool {
            false
        }
        fn compose(&mut self, _view: &LocalView) -> BitVec {
            unreachable!("never active")
        }
    }

    impl Protocol for NeverActivate {
        type Node = InertNode;
        type Output = ();
        fn model(&self) -> Model {
            Model::Sync
        }
        fn budget_bits(&self, _n: usize) -> u32 {
            1
        }
        fn spawn(&self, _view: &LocalView) -> InertNode {
            InertNode
        }
        fn output(&self, _n: usize, _board: &Whiteboard) {}
    }

    /// Declares a 1-bit budget but writes 5 bits: must trip the engine.
    pub struct BudgetBuster;

    #[derive(Clone)]
    pub struct BustNode;

    impl Node for BustNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {}
        fn compose(&mut self, _view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(0b10110, 5);
            w.finish()
        }
    }

    impl Protocol for BudgetBuster {
        type Node = BustNode;
        type Output = ();
        fn model(&self) -> Model {
            Model::SimAsync
        }
        fn budget_bits(&self, _n: usize) -> u32 {
            1
        }
        fn spawn(&self, _view: &LocalView) -> BustNode {
            BustNode
        }
        fn output(&self, _n: usize, _board: &Whiteboard) {}
    }
}

#[cfg(test)]
mod tests {
    use super::toys::*;
    use super::*;
    use crate::adversary::{MaxIdAdversary, MinIdAdversary, PriorityAdversary, RandomAdversary};
    use wb_graph::generators;

    fn path(n: usize) -> Graph {
        generators::path(n)
    }

    #[test]
    fn echo_succeeds_under_any_adversary() {
        let g = path(5);
        for report in [
            run(&EchoId, &g, &mut MinIdAdversary),
            run(&EchoId, &g, &mut MaxIdAdversary),
            run(&EchoId, &g, &mut RandomAdversary::new(1)),
            run(&EchoId, &g, &mut PriorityAdversary::random(5, 9)),
        ] {
            assert_eq!(report.outcome, Outcome::Success(vec![1, 2, 3, 4, 5]));
            assert_eq!(report.write_order.len(), 5);
            assert_eq!(report.max_message_bits(), 3);
            assert_eq!(report.total_bits(), 15);
        }
    }

    #[test]
    fn simsync_sees_growing_board() {
        let g = path(4);
        let report = run(&SeenCount, &g, &mut MinIdAdversary);
        let out = report.outcome.unwrap();
        // Under min-ID: nodes 1,2,3,4 write in order, observing 0,1,2,3 prior
        // messages respectively.
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }

    #[test]
    fn async_freezes_at_activation() {
        let g = path(4);
        let report = run(&FrozenSeenCount, &g, &mut MinIdAdversary);
        let out = report.outcome.unwrap();
        // Everyone activated on the empty board: all frozen with seen = 0.
        assert_eq!(out, vec![(1, 0), (2, 0), (3, 0), (4, 0)]);
    }

    #[test]
    fn chain_forces_write_order_against_all_adversaries() {
        let g = path(6);
        for report in [
            run(&Chain, &g, &mut MinIdAdversary),
            run(&Chain, &g, &mut MaxIdAdversary),
            run(&Chain, &g, &mut RandomAdversary::new(7)),
            run(&Chain, &g, &mut PriorityAdversary::new(&[6, 5, 4, 3, 2, 1])),
        ] {
            assert_eq!(report.write_order, vec![1, 2, 3, 4, 5, 6]);
            assert_eq!(report.outcome, Outcome::Success(vec![1, 2, 3, 4, 5, 6]));
        }
    }

    #[test]
    fn deadlock_is_reported_with_awake_set() {
        let g = path(3);
        let report = run(&NeverActivate, &g, &mut MinIdAdversary);
        assert_eq!(
            report.outcome,
            Outcome::Deadlock {
                awake: vec![1, 2, 3]
            }
        );
        assert!(report.write_order.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeding the declared budget")]
    fn budget_violation_panics() {
        run(&BudgetBuster, &path(2), &mut MinIdAdversary);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_graph_rejected() {
        Engine::new(&EchoId, &Graph::empty(0));
    }

    #[test]
    #[should_panic(expected = "non-active")]
    fn stepping_non_active_node_panics() {
        let g = path(3);
        let mut engine = Engine::new(&Chain, &g);
        engine.activation_phase();
        engine.step(3); // only node 1 is active
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let g = path(5);
        let plain = run(&SeenCount, &g, &mut MinIdAdversary);
        let (traced, trace) = run_traced(&SeenCount, &g, &mut MinIdAdversary);
        assert_eq!(plain.write_order, traced.write_order);
        assert_eq!(trace.len(), 5);
        for (i, row) in trace.iter().enumerate() {
            assert_eq!(row.round, i + 1);
            assert_eq!(row.writer, traced.write_order[i]);
            // SIMSYNC: actives shrink by one per round.
            assert_eq!(row.active_before, 5 - i);
            assert!(row.message_bits > 0);
        }
    }

    #[test]
    fn traced_chain_has_singleton_active_sets() {
        let g = path(4);
        let (_, trace) = run_traced(&Chain, &g, &mut MaxIdAdversary);
        assert!(trace.iter().all(|r| r.active_before == 1));
    }

    #[test]
    fn single_node_graph_runs() {
        let g = Graph::empty(1);
        let report = run(&EchoId, &g, &mut MinIdAdversary);
        assert_eq!(report.outcome, Outcome::Success(vec![1]));
    }

    /// Full observable state of an engine, for exact undo comparisons.
    fn observable<P: Protocol>(e: &Engine<P>) -> (CanonicalState, Vec<NodeId>, Whiteboard) {
        (
            e.canonical_state(),
            e.write_order().to_vec(),
            e.board().clone(),
        )
    }

    #[test]
    fn undo_restores_single_step_exactly() {
        for drive_activation in [false, true] {
            let g = path(4);
            let mut engine = Engine::new(&SeenCount, &g);
            engine.activation_phase();
            let before = observable(&engine);
            let fp_before = engine.canonical_fingerprint();
            let token = engine.step_token();
            engine.step(2);
            if drive_activation {
                engine.activation_phase();
            }
            assert_ne!(before.0, engine.canonical_state());
            engine.undo(token);
            assert_eq!(before, observable(&engine));
            assert_eq!(fp_before, engine.canonical_fingerprint());
            // The restored engine still runs to the same outcome.
            let mut adv = MinIdAdversary;
            loop {
                engine.activation_phase();
                let active = engine.active_set();
                if active.is_empty() {
                    break;
                }
                let pick = adv.pick(&active, engine.board());
                engine.step(pick);
            }
            assert_eq!(
                engine.finish().outcome,
                run(&SeenCount, &g, &mut MinIdAdversary).outcome
            );
        }
    }

    #[test]
    fn undo_tokens_nest_lifo() {
        let g = path(5);
        let mut engine = Engine::new(&EchoId, &g);
        engine.activation_phase();
        let s0 = observable(&engine);
        let t1 = engine.step_token();
        engine.step(3);
        engine.activation_phase();
        let s1 = observable(&engine);
        let t2 = engine.step_token();
        engine.step(1);
        engine.activation_phase();
        engine.undo(t2);
        assert_eq!(s1, observable(&engine));
        engine.undo(t1);
        assert_eq!(s0, observable(&engine));
    }

    #[test]
    fn undo_restores_async_freeze_slots() {
        // FrozenSeenCount is ASYNC with immediate activation: stepping moves
        // a frozen message onto the board; undo must move it back.
        let g = path(3);
        let mut engine = Engine::new(&FrozenSeenCount, &g);
        engine.activation_phase();
        let before = observable(&engine);
        let token = engine.step_token();
        engine.step(2);
        engine.activation_phase();
        engine.undo(token);
        assert_eq!(before, observable(&engine));
        // The refrozen message is still writable.
        engine.step(2);
        assert_eq!(engine.board().len(), 1);
    }

    #[test]
    fn undo_restores_free_model_activation() {
        // Chain (SYNC, free): stepping node 1 activates node 2 in the next
        // activation phase; undo must re-sleep it and roll back the polled
        // node states.
        let g = path(4);
        let mut engine = Engine::new(&Chain, &g);
        engine.activation_phase();
        assert_eq!(engine.active_set(), vec![1]);
        let before = observable(&engine);
        let token = engine.step_token();
        engine.step(1);
        engine.activation_phase();
        assert_eq!(engine.active_set(), vec![2]);
        engine.undo(token);
        assert_eq!(before, observable(&engine));
        assert_eq!(engine.active_set(), vec![1]);
        // Replaying after the undo still forces the chain order.
        for pick in 1..=4 {
            engine.step(pick);
            engine.activation_phase();
        }
        assert_eq!(engine.finish().outcome, Outcome::Success(vec![1, 2, 3, 4]));
    }

    #[test]
    fn commit_accepts_the_branch() {
        let g = path(3);
        let mut engine = Engine::new(&EchoId, &g);
        engine.activation_phase();
        let token = engine.step_token();
        engine.step(2);
        let after = observable(&engine);
        engine.commit(token);
        assert_eq!(after, observable(&engine));
        // A fresh token still works after commit.
        let token = engine.step_token();
        engine.step(1);
        engine.undo(token);
        assert_eq!(after, observable(&engine));
    }

    #[test]
    #[should_panic(expected = "without an outstanding step token")]
    fn undo_without_token_panics() {
        let g = path(2);
        let mut engine = Engine::new(&EchoId, &g);
        engine.activation_phase();
        let token = engine.step_token();
        engine.undo(token);
        let stale = StepToken { mark: 0 };
        engine.undo(stale);
    }

    #[test]
    fn fingerprint_agrees_with_canonical_equality() {
        // Drive EchoId (SIMASYNC) to a handful of configurations: equal
        // canonical states ⇔ equal fingerprints on permuted prefixes, and
        // all distinct states get distinct fingerprints here.
        let g = path(4);
        let drive = |order: &[NodeId]| {
            let mut e = Engine::new(&EchoId, &g);
            e.activation_phase();
            for &v in order {
                e.step(v);
                e.activation_phase();
            }
            (e.canonical_state(), e.canonical_fingerprint())
        };
        let (c12, f12) = drive(&[1, 2]);
        let (c21, f21) = drive(&[2, 1]);
        let (c13, f13) = drive(&[1, 3]);
        assert_eq!(c12, c21, "permuted prefixes reach one configuration");
        assert_eq!(f12, f21, "equal canonical states ⇒ equal fingerprints");
        assert_ne!(c12, c13);
        assert_ne!(f12, f13, "distinct states should not collide");
        assert_ne!(f12.shard_key(), 0, "shard key mixes the high bits");
    }

    #[test]
    fn unrecorded_runs_keep_an_empty_journal() {
        let g = path(4);
        let mut engine = Engine::new(&SeenCount, &g);
        engine.activation_phase();
        engine.step(1);
        engine.step(2);
        assert_eq!(engine.undo.len(), 0, "no token, no journal");
        let token = engine.step_token();
        engine.step(3);
        assert!(engine.undo.len() > 0);
        engine.undo(token);
        assert_eq!(engine.undo.len(), 0);
    }

    #[test]
    fn clones_do_not_inherit_savepoints() {
        let g = path(3);
        let mut engine = Engine::new(&EchoId, &g);
        engine.activation_phase();
        let _token = engine.step_token();
        engine.step(1);
        let branch = engine.clone();
        assert_eq!(branch.tokens, 0);
        assert!(branch.undo.is_empty());
        assert_eq!(branch.canonical_state(), engine.canonical_state());
    }

    #[test]
    fn outcome_unwrap_panics_on_deadlock() {
        let outcome: Outcome<()> = Outcome::Deadlock { awake: vec![2] };
        assert!(!outcome.is_success());
        let r = std::panic::catch_unwind(|| outcome.unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn crash_drops_the_write_and_terminates_the_node() {
        let g = path(3);
        let mut engine = Engine::new(&EchoId, &g);
        engine.activation_phase();
        engine.step_crash(2);
        assert_eq!(engine.board().len(), 0, "a crashed write never lands");
        assert_eq!(engine.write_order(), &[2]);
        assert_eq!(engine.crashed(), &[2]);
        assert_eq!(engine.crashed_count(), 1);
        engine.step(1);
        engine.step(3);
        assert!(engine.is_complete());
        let report = engine.finish();
        assert_eq!(report.outcome, Outcome::Success(vec![1, 3]));
        assert_eq!(report.write_order, vec![2, 1, 3]);
        assert_eq!(report.crashed, vec![2]);
    }

    #[test]
    fn crash_is_visible_in_the_canonical_encoding() {
        // "2 crashed" and "2 wrote" are different configurations (board
        // differs); "2 crashed" and "2 not yet scheduled" differ in status.
        let g = path(3);
        let mut crashed = Engine::new(&EchoId, &g);
        crashed.activation_phase();
        crashed.step_crash(2);
        let mut wrote = Engine::new(&EchoId, &g);
        wrote.activation_phase();
        wrote.step(2);
        let mut fresh = Engine::new(&EchoId, &g);
        fresh.activation_phase();
        assert_ne!(crashed.canonical_state(), wrote.canonical_state());
        assert_ne!(crashed.canonical_state(), fresh.canonical_state());
        assert_ne!(
            crashed.canonical_fingerprint(),
            wrote.canonical_fingerprint()
        );
    }

    #[test]
    fn undo_restores_a_crashed_sync_step_exactly() {
        let g = path(4);
        let mut engine = Engine::new(&SeenCount, &g);
        engine.activation_phase();
        let before = observable(&engine);
        let token = engine.step_token();
        engine.step_crash(3);
        engine.activation_phase();
        assert_ne!(before.0, engine.canonical_state());
        engine.undo(token);
        assert_eq!(before, observable(&engine));
        assert_eq!(engine.crashed_count(), 0);
        // The restored node still writes normally.
        engine.step(3);
        assert_eq!(engine.board().len(), 1);
    }

    #[test]
    fn undo_refreezes_a_crashed_async_message() {
        // FrozenSeenCount is ASYNC: the crash consumes the frozen message;
        // undo must put it back so the node can still write.
        let g = path(3);
        let mut engine = Engine::new(&FrozenSeenCount, &g);
        engine.activation_phase();
        let before = observable(&engine);
        let token = engine.step_token();
        engine.step_crash(2);
        engine.undo(token);
        assert_eq!(before, observable(&engine));
        engine.step(2);
        assert_eq!(engine.board().len(), 1);
    }

    #[test]
    fn crash_in_a_free_model_can_deadlock_downstream_waiters() {
        // Chain node 2 activates only after one message is on the board;
        // crashing node 1 erases that message forever.
        let g = path(3);
        let mut engine = Engine::new(&Chain, &g);
        engine.activation_phase();
        assert_eq!(engine.active_set(), vec![1]);
        engine.step_crash(1);
        engine.activation_phase();
        assert!(!engine.has_active(), "node 2 never sees a message");
        let report = engine.finish();
        assert_eq!(report.outcome, Outcome::Deadlock { awake: vec![2, 3] });
        assert_eq!(report.crashed, vec![1]);
    }

    #[test]
    #[should_panic(expected = "crashed non-active node")]
    fn crashing_a_non_active_node_panics() {
        let g = path(3);
        let mut engine = Engine::new(&Chain, &g);
        engine.activation_phase();
        engine.step_crash(3); // only node 1 is active
    }

    #[test]
    #[should_panic(expected = "exceeding the declared budget")]
    fn crashed_writes_still_enforce_the_budget() {
        let g = path(2);
        let mut engine = Engine::new(&BudgetBuster, &g);
        engine.activation_phase();
        engine.step_crash(1);
    }
}
