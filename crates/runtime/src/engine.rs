//! The round loop of the whiteboard machine.
//!
//! Each round: (1) every awake node may become active (free models poll
//! `wants_to_activate`; simultaneous models activated everyone up front); in
//! asynchronous models the node's message is frozen at this moment; (2) the
//! adversary picks one active node; (3) its message — frozen, or composed now
//! in synchronous models — is appended to the board and the node terminates;
//! (4) surviving nodes observe the new entry.
//!
//! Differences from the paper's letter, none observable: the paper has a
//! written node terminate one round *after* its message appears; since a
//! written node can never be picked again ("no message of node v_j appears on
//! W" is required for writing) nor act on anything, we terminate it
//! immediately. Round indices shift by one; the set of reachable boards,
//! outputs and deadlocks is identical.

use crate::adversary::Adversary;
use crate::board::Whiteboard;
use crate::model::Model;
use crate::protocol::{LocalView, Node, Protocol};
use wb_graph::{Graph, NodeId};
use wb_math::BitVec;

/// Terminal result of an execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<O> {
    /// All nodes terminated; the output function was applied to the final
    /// board (a *successful configuration*).
    Success(O),
    /// No node is active but some never wrote (a *corrupted configuration* /
    /// deadlock).
    Deadlock {
        /// Nodes still awake when the system stalled.
        awake: Vec<NodeId>,
    },
}

impl<O> Outcome<O> {
    /// The success value, panicking on deadlock.
    pub fn unwrap(self) -> O {
        match self {
            Outcome::Success(o) => o,
            Outcome::Deadlock { awake } => panic!("deadlock with awake nodes {awake:?}"),
        }
    }

    /// Whether the run reached a successful configuration.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success(_))
    }
}

/// Full record of one execution.
#[derive(Clone, Debug)]
pub struct RunReport<O> {
    /// Success with output, or deadlock.
    pub outcome: Outcome<O>,
    /// Writers in write order (length = number of rounds executed).
    pub write_order: Vec<NodeId>,
    /// The final whiteboard (message-size ledger included).
    pub board: Whiteboard,
}

impl<O> RunReport<O> {
    /// Largest message written, in bits.
    pub fn max_message_bits(&self) -> usize {
        self.board.max_message_bits()
    }

    /// Total bits on the final board.
    pub fn total_bits(&self) -> usize {
        self.board.total_bits()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Awake,
    Active,
    Terminated,
}

/// A canonical, write-order-oblivious snapshot of a configuration.
///
/// The encoding covers everything that determines a configuration's future
/// behavior for *order-oblivious* protocols (see
/// [`crate::exhaustive::DedupPolicy`]): the per-node statuses, every frozen
/// (activation-time) message, and the board entries **sorted by writer** —
/// well-defined because the one-write rule makes writers unique. The write
/// order itself is deliberately excluded: two schedule prefixes that
/// permute into the same configuration compare equal, which is exactly what
/// lets the schedule explorer collapse the `n!` tree into the DAG of
/// distinct configurations.
///
/// Snapshots are exact (full encodings, not hashes), so deduplication can
/// never merge two genuinely different configurations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalState(Vec<u64>);

impl CanonicalState {
    /// Size of the encoding in 64-bit words (for memory accounting).
    pub fn words(&self) -> usize {
        self.0.len()
    }
}

/// The stepwise machine. Most callers use [`run`]; the exhaustive executor
/// drives `Engine` directly, cloning it at branch points.
pub struct Engine<'a, P: Protocol> {
    protocol: &'a P,
    model: Model,
    budget: u32,
    views: Vec<LocalView>,
    nodes: Vec<P::Node>,
    status: Vec<Status>,
    frozen: Vec<Option<BitVec>>,
    board: Whiteboard,
    write_order: Vec<NodeId>,
}

impl<'a, P: Protocol> Clone for Engine<'a, P> {
    fn clone(&self) -> Self {
        Engine {
            protocol: self.protocol,
            model: self.model,
            budget: self.budget,
            views: self.views.clone(),
            nodes: self.nodes.clone(),
            status: self.status.clone(),
            frozen: self.frozen.clone(),
            board: self.board.clone(),
            write_order: self.write_order.clone(),
        }
    }
}

impl<'a, P: Protocol> Engine<'a, P> {
    /// Initialize the machine on `g`: spawn one node per vertex; in
    /// simultaneous models activate everyone (freezing messages in
    /// `SIMASYNC`, where `compose` precedes every observation).
    pub fn new(protocol: &'a P, g: &Graph) -> Self {
        let n = g.n();
        assert!(n >= 1, "whiteboard protocols need at least one node");
        let model = protocol.model();
        let views = LocalView::all_of(g);
        let mut nodes: Vec<P::Node> = views.iter().map(|v| protocol.spawn(v)).collect();
        let mut frozen: Vec<Option<BitVec>> = vec![None; n];
        let status = if model.is_simultaneous() {
            if model.is_asynchronous() {
                for (i, node) in nodes.iter_mut().enumerate() {
                    frozen[i] = Some(node.compose(&views[i]));
                }
            }
            vec![Status::Active; n]
        } else {
            vec![Status::Awake; n]
        };
        Engine {
            protocol,
            model,
            budget: protocol.budget_bits(n),
            views,
            nodes,
            status,
            frozen,
            board: Whiteboard::new(),
            write_order: Vec::with_capacity(n),
        }
    }

    /// Poll all awake nodes' activation predicates (free models). Must be
    /// called once per round, before [`Self::active_set`]/[`Self::step`].
    pub fn activation_phase(&mut self) {
        if self.model.is_simultaneous() {
            return;
        }
        for i in 0..self.nodes.len() {
            if self.status[i] == Status::Awake && self.nodes[i].wants_to_activate(&self.views[i]) {
                self.status[i] = Status::Active;
                if self.model.is_asynchronous() {
                    // "nodes create their final messages as soon as they
                    // become active" — freeze now.
                    self.frozen[i] = Some(self.nodes[i].compose(&self.views[i]));
                }
            }
        }
    }

    /// Currently active node IDs, ascending.
    pub fn active_set(&self) -> Vec<NodeId> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Active)
            .map(|(i, _)| i as NodeId + 1)
            .collect()
    }

    /// The board so far.
    pub fn board(&self) -> &Whiteboard {
        &self.board
    }

    /// The adversary's picks so far, in write order.
    pub fn write_order(&self) -> &[NodeId] {
        &self.write_order
    }

    /// Cheap canonical snapshot of the current configuration (see
    /// [`CanonicalState`]). Cost is `O(n + board bits/64)`; no node state is
    /// inspected — node state is a deterministic function of the observed
    /// prefix, so for order-oblivious protocols the snapshot determines it.
    pub fn canonical_state(&self) -> CanonicalState {
        let n = self.nodes.len();
        let mut words = Vec::with_capacity(n / 16 + 2 * self.board.len() + 4);
        // Statuses, packed 2 bits per node.
        let mut acc = 0u64;
        let mut filled = 0u32;
        for s in &self.status {
            let code = match s {
                Status::Awake => 0u64,
                Status::Active => 1,
                Status::Terminated => 2,
            };
            acc |= code << filled;
            filled += 2;
            if filled == 64 {
                words.push(acc);
                acc = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            words.push(acc);
        }
        // Frozen (activation-time) messages, in node order. Two states with
        // the same board but different freeze points must not merge.
        for f in &self.frozen {
            match f {
                None => words.push(u64::MAX),
                Some(bv) => {
                    words.push(bv.len() as u64);
                    words.extend_from_slice(bv.as_words());
                }
            }
        }
        // Board entries sorted by writer (writers are unique: one write per
        // node), each length-framed so the encoding is unambiguous.
        let mut by_writer: Vec<&crate::board::Entry> = self.board.entries().iter().collect();
        by_writer.sort_unstable_by_key(|e| e.writer);
        words.push(by_writer.len() as u64);
        for e in by_writer {
            words.push(u64::from(e.writer));
            words.push(e.msg.len() as u64);
            words.extend_from_slice(e.msg.as_words());
        }
        CanonicalState(words)
    }

    /// Execute one write: `pick` (which must be active) writes its message,
    /// terminates, and all surviving nodes observe the new entry.
    pub fn step(&mut self, pick: NodeId) {
        let i = pick as usize - 1;
        assert_eq!(
            self.status[i],
            Status::Active,
            "adversary picked non-active node {pick}"
        );
        let msg = if self.model.is_asynchronous() {
            self.frozen[i]
                .take()
                .expect("asynchronous node has no frozen message")
        } else {
            self.nodes[i].compose(&self.views[i])
        };
        assert!(
            !msg.is_empty(),
            "node {pick} produced the empty word; a write must change the board"
        );
        assert!(
            msg.len() <= self.budget as usize,
            "node {pick} wrote {} bits, exceeding the declared budget of {} bits",
            msg.len(),
            self.budget
        );
        self.status[i] = Status::Terminated;
        self.board.push(pick, msg);
        self.write_order.push(pick);
        let seq = self.board.len() - 1;
        let entry_msg = self.board.entry(seq).msg.clone();
        for j in 0..self.nodes.len() {
            match self.status[j] {
                Status::Terminated => {}
                // An active asynchronous node's message is frozen; later
                // observations cannot influence it, so skip delivery.
                Status::Active if self.model.is_asynchronous() => {}
                _ => self.nodes[j].observe(&self.views[j], seq, pick, &entry_msg),
            }
        }
    }

    /// Whether every node has terminated.
    pub fn is_complete(&self) -> bool {
        self.status.iter().all(|s| *s == Status::Terminated)
    }

    /// Consume the engine into a report (call when the active set is empty).
    pub fn finish(self) -> RunReport<P::Output> {
        let outcome = if self.is_complete() {
            Outcome::Success(self.protocol.output(self.views.len(), &self.board))
        } else {
            Outcome::Deadlock {
                awake: self
                    .status
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s != Status::Terminated)
                    .map(|(i, _)| i as NodeId + 1)
                    .collect(),
            }
        };
        RunReport {
            outcome,
            write_order: self.write_order,
            board: self.board,
        }
    }
}

/// Run `protocol` on `g` to completion under `adversary`.
pub fn run<P: Protocol, A: Adversary + ?Sized>(
    protocol: &P,
    g: &Graph,
    adversary: &mut A,
) -> RunReport<P::Output> {
    let mut engine = Engine::new(protocol, g);
    loop {
        engine.activation_phase();
        let active = engine.active_set();
        if active.is_empty() {
            return engine.finish();
        }
        let pick = adversary.pick(&active, engine.board());
        engine.step(pick);
    }
}

/// One round of an execution timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRow {
    /// Round number (1-based; one write per round).
    pub round: usize,
    /// How many nodes were active when the adversary chose.
    pub active_before: usize,
    /// The node whose message was written.
    pub writer: NodeId,
    /// That message's length in bits.
    pub message_bits: usize,
}

/// Like [`run`], additionally recording a per-round timeline — useful for the
/// CLI, the examples, and for inspecting certificate-driven activation waves
/// (e.g. BFS layers opening all at once).
pub fn run_traced<P: Protocol, A: Adversary + ?Sized>(
    protocol: &P,
    g: &Graph,
    adversary: &mut A,
) -> (RunReport<P::Output>, Vec<TraceRow>) {
    let mut engine = Engine::new(protocol, g);
    let mut trace = Vec::with_capacity(g.n());
    loop {
        engine.activation_phase();
        let active = engine.active_set();
        if active.is_empty() {
            return (engine.finish(), trace);
        }
        let pick = adversary.pick(&active, engine.board());
        engine.step(pick);
        trace.push(TraceRow {
            round: trace.len() + 1,
            active_before: active.len(),
            writer: pick,
            message_bits: engine.board().entry(engine.board().len() - 1).msg.len(),
        });
    }
}

#[cfg(test)]
pub(crate) mod toys {
    //! Tiny protocols exercising each model's semantics; shared with the
    //! adapter and exhaustive tests.
    use super::*;
    use wb_math::{id_bits, BitReader, BitWriter};

    /// SIMASYNC: everyone writes its ID; output = sorted IDs from the board.
    pub struct EchoId;

    #[derive(Clone)]
    pub struct EchoNode {
        id: NodeId,
    }

    impl Node for EchoNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
            // SIMASYNC nodes never observe; reaching here under promotion is
            // fine because compose was cached at spawn.
        }
        fn compose(&mut self, view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(self.id as u64, id_bits(view.n));
            w.finish()
        }
    }

    impl Protocol for EchoId {
        type Node = EchoNode;
        type Output = Vec<NodeId>;
        fn model(&self) -> Model {
            Model::SimAsync
        }
        fn budget_bits(&self, n: usize) -> u32 {
            id_bits(n)
        }
        fn spawn(&self, view: &LocalView) -> EchoNode {
            EchoNode { id: view.id }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Vec<NodeId> {
            let mut ids: Vec<NodeId> = board
                .entries()
                .iter()
                .map(|e| BitReader::new(&e.msg).read_bits(id_bits(n)) as NodeId)
                .collect();
            ids.sort_unstable();
            ids
        }
    }

    /// SIMSYNC: message = (id, number of messages observed so far). Output:
    /// `(id, rank)` pairs in write order.
    pub struct SeenCount;

    #[derive(Clone, Default)]
    pub struct SeenNode {
        id: NodeId,
        seen: u64,
    }

    impl Node for SeenNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
            self.seen += 1;
        }
        fn compose(&mut self, view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(self.id as u64, id_bits(view.n));
            w.write_bits(self.seen, id_bits(view.n) + 1);
            w.finish()
        }
    }

    impl Protocol for SeenCount {
        type Node = SeenNode;
        type Output = Vec<(NodeId, u64)>;
        fn model(&self) -> Model {
            Model::SimSync
        }
        fn budget_bits(&self, n: usize) -> u32 {
            2 * id_bits(n) + 1
        }
        fn spawn(&self, view: &LocalView) -> SeenNode {
            SeenNode {
                id: view.id,
                seen: 0,
            }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
            board
                .entries()
                .iter()
                .map(|e| {
                    let mut r = BitReader::new(&e.msg);
                    let id = r.read_bits(id_bits(n)) as NodeId;
                    let seen = r.read_bits(id_bits(n) + 1);
                    (id, seen)
                })
                .collect()
        }
    }

    /// Same message function as [`SeenCount`] but declared ASYNC with
    /// immediate activation: everyone freezes `seen = 0` in round 1. The
    /// contrast with `SeenCount` is exactly the SIMSYNC/ASYNC semantic split.
    pub struct FrozenSeenCount;

    impl Protocol for FrozenSeenCount {
        type Node = SeenNode;
        type Output = Vec<(NodeId, u64)>;
        fn model(&self) -> Model {
            Model::Async
        }
        fn budget_bits(&self, n: usize) -> u32 {
            2 * id_bits(n) + 1
        }
        fn spawn(&self, view: &LocalView) -> SeenNode {
            SeenNode {
                id: view.id,
                seen: 0,
            }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
            SeenCount.output(n, board)
        }
    }

    /// SYNC, free: node `v_i` activates once `i−1` messages are on the board,
    /// forcing the write order `v_1, …, v_n` against any adversary.
    pub struct Chain;

    #[derive(Clone)]
    pub struct ChainNode {
        id: NodeId,
        seen: usize,
    }

    impl Node for ChainNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
            self.seen += 1;
        }
        fn wants_to_activate(&mut self, _view: &LocalView) -> bool {
            self.seen == self.id as usize - 1
        }
        fn compose(&mut self, view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(self.id as u64, id_bits(view.n));
            w.finish()
        }
    }

    impl Protocol for Chain {
        type Node = ChainNode;
        type Output = Vec<NodeId>;
        fn model(&self) -> Model {
            Model::Sync
        }
        fn budget_bits(&self, n: usize) -> u32 {
            id_bits(n)
        }
        fn spawn(&self, view: &LocalView) -> ChainNode {
            ChainNode {
                id: view.id,
                seen: 0,
            }
        }
        fn output(&self, n: usize, board: &Whiteboard) -> Vec<NodeId> {
            board
                .entries()
                .iter()
                .map(|e| BitReader::new(&e.msg).read_bits(id_bits(n)) as NodeId)
                .collect()
        }
    }

    /// Free protocol whose nodes never activate: guaranteed deadlock.
    pub struct NeverActivate;

    #[derive(Clone)]
    pub struct InertNode;

    impl Node for InertNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {}
        fn wants_to_activate(&mut self, _view: &LocalView) -> bool {
            false
        }
        fn compose(&mut self, _view: &LocalView) -> BitVec {
            unreachable!("never active")
        }
    }

    impl Protocol for NeverActivate {
        type Node = InertNode;
        type Output = ();
        fn model(&self) -> Model {
            Model::Sync
        }
        fn budget_bits(&self, _n: usize) -> u32 {
            1
        }
        fn spawn(&self, _view: &LocalView) -> InertNode {
            InertNode
        }
        fn output(&self, _n: usize, _board: &Whiteboard) {}
    }

    /// Declares a 1-bit budget but writes 5 bits: must trip the engine.
    pub struct BudgetBuster;

    #[derive(Clone)]
    pub struct BustNode;

    impl Node for BustNode {
        fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {}
        fn compose(&mut self, _view: &LocalView) -> BitVec {
            let mut w = BitWriter::new();
            w.write_bits(0b10110, 5);
            w.finish()
        }
    }

    impl Protocol for BudgetBuster {
        type Node = BustNode;
        type Output = ();
        fn model(&self) -> Model {
            Model::SimAsync
        }
        fn budget_bits(&self, _n: usize) -> u32 {
            1
        }
        fn spawn(&self, _view: &LocalView) -> BustNode {
            BustNode
        }
        fn output(&self, _n: usize, _board: &Whiteboard) {}
    }
}

#[cfg(test)]
mod tests {
    use super::toys::*;
    use super::*;
    use crate::adversary::{MaxIdAdversary, MinIdAdversary, PriorityAdversary, RandomAdversary};
    use wb_graph::generators;

    fn path(n: usize) -> Graph {
        generators::path(n)
    }

    #[test]
    fn echo_succeeds_under_any_adversary() {
        let g = path(5);
        for report in [
            run(&EchoId, &g, &mut MinIdAdversary),
            run(&EchoId, &g, &mut MaxIdAdversary),
            run(&EchoId, &g, &mut RandomAdversary::new(1)),
            run(&EchoId, &g, &mut PriorityAdversary::random(5, 9)),
        ] {
            assert_eq!(report.outcome, Outcome::Success(vec![1, 2, 3, 4, 5]));
            assert_eq!(report.write_order.len(), 5);
            assert_eq!(report.max_message_bits(), 3);
            assert_eq!(report.total_bits(), 15);
        }
    }

    #[test]
    fn simsync_sees_growing_board() {
        let g = path(4);
        let report = run(&SeenCount, &g, &mut MinIdAdversary);
        let out = report.outcome.unwrap();
        // Under min-ID: nodes 1,2,3,4 write in order, observing 0,1,2,3 prior
        // messages respectively.
        assert_eq!(out, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }

    #[test]
    fn async_freezes_at_activation() {
        let g = path(4);
        let report = run(&FrozenSeenCount, &g, &mut MinIdAdversary);
        let out = report.outcome.unwrap();
        // Everyone activated on the empty board: all frozen with seen = 0.
        assert_eq!(out, vec![(1, 0), (2, 0), (3, 0), (4, 0)]);
    }

    #[test]
    fn chain_forces_write_order_against_all_adversaries() {
        let g = path(6);
        for report in [
            run(&Chain, &g, &mut MinIdAdversary),
            run(&Chain, &g, &mut MaxIdAdversary),
            run(&Chain, &g, &mut RandomAdversary::new(7)),
            run(&Chain, &g, &mut PriorityAdversary::new(&[6, 5, 4, 3, 2, 1])),
        ] {
            assert_eq!(report.write_order, vec![1, 2, 3, 4, 5, 6]);
            assert_eq!(report.outcome, Outcome::Success(vec![1, 2, 3, 4, 5, 6]));
        }
    }

    #[test]
    fn deadlock_is_reported_with_awake_set() {
        let g = path(3);
        let report = run(&NeverActivate, &g, &mut MinIdAdversary);
        assert_eq!(
            report.outcome,
            Outcome::Deadlock {
                awake: vec![1, 2, 3]
            }
        );
        assert!(report.write_order.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeding the declared budget")]
    fn budget_violation_panics() {
        run(&BudgetBuster, &path(2), &mut MinIdAdversary);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_graph_rejected() {
        Engine::new(&EchoId, &Graph::empty(0));
    }

    #[test]
    #[should_panic(expected = "non-active")]
    fn stepping_non_active_node_panics() {
        let g = path(3);
        let mut engine = Engine::new(&Chain, &g);
        engine.activation_phase();
        engine.step(3); // only node 1 is active
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let g = path(5);
        let plain = run(&SeenCount, &g, &mut MinIdAdversary);
        let (traced, trace) = run_traced(&SeenCount, &g, &mut MinIdAdversary);
        assert_eq!(plain.write_order, traced.write_order);
        assert_eq!(trace.len(), 5);
        for (i, row) in trace.iter().enumerate() {
            assert_eq!(row.round, i + 1);
            assert_eq!(row.writer, traced.write_order[i]);
            // SIMSYNC: actives shrink by one per round.
            assert_eq!(row.active_before, 5 - i);
            assert!(row.message_bits > 0);
        }
    }

    #[test]
    fn traced_chain_has_singleton_active_sets() {
        let g = path(4);
        let (_, trace) = run_traced(&Chain, &g, &mut MaxIdAdversary);
        assert!(trace.iter().all(|r| r.active_before == 1));
    }

    #[test]
    fn single_node_graph_runs() {
        let g = Graph::empty(1);
        let report = run(&EchoId, &g, &mut MinIdAdversary);
        assert_eq!(report.outcome, Outcome::Success(vec![1]));
    }

    #[test]
    fn outcome_unwrap_panics_on_deadlock() {
        let outcome: Outcome<()> = Outcome::Deadlock { awake: vec![2] };
        assert!(!outcome.is_success());
        let r = std::panic::catch_unwind(|| outcome.unwrap());
        assert!(r.is_err());
    }
}
