//! Model checking: run a protocol under **every** adversary choice sequence.
//!
//! The paper's positive results are universally quantified over adversaries
//! ("no matter the order chosen by the adversary"). For small instances the
//! quantifier is finite: at each round the adversary picks one of the active
//! nodes, so the choice tree has at most `n!` leaves. This module walks that
//! tree exhaustively (depth-first, cloning the engine at branch points) and
//! hands every leaf's [`RunReport`] to a callback.

use crate::engine::{Engine, RunReport};
use crate::protocol::Protocol;
use wb_graph::Graph;

/// Walk every schedule of `protocol` on `g`, calling `visit` with each leaf
/// report. Returns the number of schedules explored.
///
/// Panics if more than `max_schedules` leaves would be produced — an
/// incomplete exhaustive check must never masquerade as a complete one.
pub fn for_each_schedule<P, F>(protocol: &P, g: &Graph, max_schedules: u64, mut visit: F) -> u64
where
    P: Protocol,
    F: FnMut(&RunReport<P::Output>),
{
    let mut count = 0u64;
    let mut engine = Engine::new(protocol, g);
    engine.activation_phase();
    dfs(engine, max_schedules, &mut count, &mut visit);
    count
}

fn dfs<P, F>(engine: Engine<'_, P>, cap: u64, count: &mut u64, visit: &mut F)
where
    P: Protocol,
    F: FnMut(&RunReport<P::Output>),
{
    let active = engine.active_set();
    if active.is_empty() {
        *count += 1;
        assert!(
            *count <= cap,
            "exhaustive schedule exploration exceeded the cap of {cap}; \
             shrink the instance or raise the cap"
        );
        visit(&engine.finish());
        return;
    }
    for &pick in &active {
        let mut branch = engine.clone();
        branch.step(pick);
        branch.activation_phase();
        dfs(branch, cap, count, visit);
    }
}

/// Assert `pred` on the output of **every** schedule; panics with the failing
/// write order otherwise (deadlocks always fail — protocols whose spec allows
/// deadlock should use [`find_failing_schedule`] instead). Returns the number
/// of schedules checked.
pub fn assert_all_schedules<P, F>(protocol: &P, g: &Graph, max_schedules: u64, mut pred: F) -> u64
where
    P: Protocol,
    F: FnMut(&P::Output) -> bool,
{
    for_each_schedule(protocol, g, max_schedules, |report| match &report.outcome {
        crate::engine::Outcome::Success(out) => {
            assert!(
                pred(out),
                "predicate failed for write order {:?} on {:?}",
                report.write_order,
                g
            );
        }
        crate::engine::Outcome::Deadlock { awake } => {
            panic!(
                "deadlock (awake {:?}) under write order {:?} on {:?}",
                awake, report.write_order, g
            );
        }
    })
}

/// Search for a schedule whose outcome violates `pred` (deadlocks count as
/// violations). Returns the adversary's write order as a counterexample, or
/// `None` if all schedules (up to `max_schedules`) satisfy the predicate.
///
/// This is the "attack" direction of model checking: where
/// [`assert_all_schedules`] certifies a positive theorem,
/// `find_failing_schedule` *exhibits* the bad run behind a negative one
/// (e.g. the adversary defeating a protocol run outside its model).
pub fn find_failing_schedule<P, F>(
    protocol: &P,
    g: &Graph,
    max_schedules: u64,
    mut pred: F,
) -> Option<Vec<wb_graph::NodeId>>
where
    P: Protocol,
    F: FnMut(&crate::engine::Outcome<P::Output>) -> bool,
{
    let mut found = None;
    for_each_schedule(protocol, g, max_schedules, |report| {
        if found.is_none() && !pred(&report.outcome) {
            found = Some(report.write_order.clone());
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::toys::*;
    use crate::engine::Outcome;
    use wb_graph::generators;

    #[test]
    fn echo_explores_factorially_many_schedules() {
        let g = generators::path(4);
        let mut orders = std::collections::HashSet::new();
        let count = for_each_schedule(&EchoId, &g, 100, |report| {
            assert_eq!(report.outcome, Outcome::Success(vec![1, 2, 3, 4]));
            orders.insert(report.write_order.clone());
        });
        assert_eq!(count, 24);
        assert_eq!(orders.len(), 24, "all 4! write orders distinct");
    }

    #[test]
    fn chain_has_single_schedule() {
        let g = generators::path(5);
        let count = for_each_schedule(&Chain, &g, 100, |report| {
            assert_eq!(report.write_order, vec![1, 2, 3, 4, 5]);
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn simsync_outputs_depend_on_schedule() {
        let g = generators::path(3);
        let mut outputs = std::collections::HashSet::new();
        for_each_schedule(&SeenCount, &g, 100, |report| match &report.outcome {
            Outcome::Success(out) => {
                outputs.insert(out.clone());
            }
            _ => panic!("unexpected deadlock"),
        });
        // Ranks are always 0,1,2 but the id sequence varies: 6 outputs.
        assert_eq!(outputs.len(), 6);
        for out in &outputs {
            assert_eq!(
                out.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
        }
    }

    #[test]
    fn assert_all_schedules_counts() {
        let g = generators::path(3);
        let count = assert_all_schedules(&EchoId, &g, 100, |out| out == &vec![1, 2, 3]);
        assert_eq!(count, 6);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn assert_all_schedules_flags_deadlock() {
        assert_all_schedules(&NeverActivate, &generators::path(2), 10, |_| true);
    }

    #[test]
    #[should_panic(expected = "exceeded the cap")]
    fn cap_is_enforced() {
        for_each_schedule(&EchoId, &generators::path(5), 10, |_| {});
    }

    #[test]
    fn find_failing_schedule_returns_none_for_correct_protocols() {
        let g = generators::path(3);
        let found = find_failing_schedule(&EchoId, &g, 100, |o| match o {
            Outcome::Success(ids) => ids == &vec![1, 2, 3],
            _ => false,
        });
        assert_eq!(found, None);
    }

    #[test]
    fn find_failing_schedule_exhibits_deadlocks() {
        let g = generators::path(2);
        let found = find_failing_schedule(&NeverActivate, &g, 100, |o| {
            matches!(o, Outcome::Success(()))
        });
        assert_eq!(found, Some(vec![]), "deadlock happens before any write");
    }

    #[test]
    fn find_failing_schedule_pinpoints_order_dependent_outputs() {
        // SeenCount's output depends on the order: ask for the min-ID
        // transcript and get a counterexample order back otherwise.
        let g = generators::path(3);
        let found = find_failing_schedule(&SeenCount, &g, 100, |o| match o {
            Outcome::Success(rows) => rows.iter().map(|&(id, _)| id).eq(1..=3),
            _ => false,
        });
        let order = found.expect("non-identity orders exist");
        assert_ne!(order, vec![1, 2, 3]);
    }
}
