//! Model checking: run a protocol under **every** adversary choice sequence.
//!
//! The paper's positive results are universally quantified over adversaries
//! ("no matter the order chosen by the adversary"). For small instances the
//! quantifier is finite: at each round the adversary picks one of the active
//! nodes, so the choice tree has at most `n!` leaves — most of them redundant
//! interleavings reaching identical configurations.
//!
//! Two executors make the quantifier executable:
//!
//! - The **schedule-space explorer** ([`explore`] / [`explore_parallel`] /
//!   [`assert_explored`]) — an iterative worklist over a frontier of
//!   configurations. Children are generated clone-free: the expander opens a
//!   savepoint ([`Engine::step_token`]), steps, probes the seen-set, and
//!   undoes — only children that survive deduplication are cloned into the
//!   next frontier, so the per-child cost is `O(changed bytes)` instead of
//!   `O(engine size)`. Deduplication streams the canonical configuration
//!   encoding into a 128-bit [`Engine::canonical_fingerprint`] by default
//!   ([`DedupPolicy::Canonical`]), with exact full-encoding snapshots kept as
//!   a verification mode ([`DedupPolicy::Exact`]); the seen-set is striped by
//!   fingerprint prefix (`wb_par::StripedSet`) so the parallel explorer
//!   inserts without funneling through one lock. On simultaneous models the
//!   `n!` tree collapses to its DAG of distinct configurations (`2^n` states
//!   instead of `n!` paths for a write-order-oblivious protocol). The result
//!   is a structured [`ExplorationReport`] — schedules, distinct states,
//!   dedup ratio, cap status, and a witness schedule per failure — never a
//!   panic mid-walk.
//! - The **naive recursive DFS** ([`for_each_schedule`]) — walks all leaves
//!   of the schedule tree on a single engine via step → recurse → undo. It
//!   scales factorially but assumes nothing about the protocol, so it is the
//!   correctness anchor: the explorer is cross-checked against it on small
//!   instances (see the tests here and `tests/differential.rs`).
//!
//! # When is deduplication sound?
//!
//! Canonical dedup ([`DedupPolicy::Canonical`] / [`DedupPolicy::Exact`])
//! merges configurations with equal (statuses, frozen messages, board
//! *sorted by writer*). That is sound — preserves the exact set of reachable
//! terminal outcomes — iff the protocol is **order-oblivious**: node state
//! and the output function may depend on the board only through its content,
//! not through the arrival order of the observed prefix. All problem
//! protocols in this repository qualify (their outputs are graphs, sets,
//! forests or counts decoded per-entry), and order-sensitive information
//! that ends up inside message bits (e.g. a "messages seen so far" counter)
//! keeps states apart automatically, because the board content then differs.
//! Two classes genuinely need [`DedupPolicy::Off`] (or the naive DFS):
//! protocols that hide order in private node state without ever writing it,
//! and protocols whose *output is a transcript* — a function of the board's
//! write order even when the content is order-free (the `FrozenSeenCount`
//! toy: every message is `(id, 0)`, but the output lists them in write
//! order, so one merged configuration stands for 24 distinct transcripts).
//! The `canonical_dedup_is_lossy_for_transcript_outputs` test pins this
//! boundary.
//!
//! # Fingerprints vs exact snapshots
//!
//! [`DedupPolicy::Canonical`] probes a 128-bit streaming digest of the
//! canonical encoding: two states merge only if both digest streams agree,
//! which a genuinely different pair does with probability ~`q²/2¹²⁹` over a
//! `q`-state walk — negligible against hardware fault rates for any
//! exploration that fits in memory. The probe allocates nothing and stores
//! 16 bytes per state instead of the whole encoding. [`DedupPolicy::Exact`]
//! keeps the full encodings (collision-free by construction) as the escape
//! hatch for certified runs; `tests/differential.rs` checks the two modes
//! reach identical state counts and outcome sets on every labeled graph up
//! to `n = 5` under all four models.

use crate::engine::{CanonicalState, Engine, Outcome, RunReport};
use crate::fault::FaultPlan;
use crate::model::Model;
use crate::protocol::{Commutativity, Protocol};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use wb_graph::{Graph, NodeId};
use wb_par::{MaskMerge, PassthroughBuildHasher, StripedMap, StripedSet};

// ---------------------------------------------------------------------------
// Explorer configuration and report
// ---------------------------------------------------------------------------

/// How the explorer recognizes already-visited configurations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DedupPolicy {
    /// Merge canonically equal configurations, probed via the streaming
    /// 128-bit [`Engine::canonical_fingerprint`] — the default: no
    /// allocation per probe, 16 bytes stored per state, collision
    /// probability ~`q²/2¹²⁹`. Sound for order-oblivious protocols — the
    /// module docs spell out the condition.
    #[default]
    Canonical,
    /// Merge canonically equal configurations keyed by the full
    /// [`Engine::canonical_state`] encoding: collision-free by
    /// construction, at `O(state)` memory per entry. The verification mode
    /// backing the fingerprint differential tests.
    Exact,
    /// No merging: every schedule prefix is its own state and every leaf of
    /// the `n!` tree is visited. Always sound; factorially slower.
    Off,
}

/// Which sound state-space reductions the explorer layers on top of
/// deduplication. Reductions change *how much work* the walk does, never
/// *what it concludes*: terminal outcomes, terminal counts, and failure
/// verdicts are identical to [`ReductionPolicy::Off`] (pinned by
/// `tests/reduction.rs` on every labeled graph up to `n = 5`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReductionPolicy {
    /// No reduction — the default, byte-identical to builds that predate
    /// this field.
    #[default]
    Off,
    /// Sleep-set dynamic partial-order reduction: skip the second half of
    /// commuting write pairs, as declared by [`Protocol::commutes`] and
    /// refined per model (see the module docs). Self-disables (recorded in
    /// [`ReductionStats::dpor_active`]) when the protocol declares
    /// [`Commutativity::None`], when `n > 64`, or when dedup is off.
    Dpor,
    /// Automorphism quotient: canonicalize every configuration over the
    /// graph automorphisms fixing [`Protocol::pinned_nodes`] before the
    /// seen-set probe, so one orbit representative stands for the whole
    /// orbit. Requires [`Protocol::equivariant`]; terminal orbits are
    /// re-expanded so the outcome multiset still matches the unreduced walk.
    Symmetry,
    /// Both reductions composed.
    DporSymmetry,
}

impl ReductionPolicy {
    /// Whether the policy asks for sleep-set DPOR.
    pub fn wants_dpor(self) -> bool {
        matches!(self, ReductionPolicy::Dpor | ReductionPolicy::DporSymmetry)
    }

    /// Whether the policy asks for the automorphism quotient.
    pub fn wants_symmetry(self) -> bool {
        matches!(
            self,
            ReductionPolicy::Symmetry | ReductionPolicy::DporSymmetry
        )
    }
}

impl FromStr for ReductionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(ReductionPolicy::Off),
            "dpor" => Ok(ReductionPolicy::Dpor),
            "symmetry" => Ok(ReductionPolicy::Symmetry),
            "dpor+symmetry" | "symmetry+dpor" => Ok(ReductionPolicy::DporSymmetry),
            other => Err(format!(
                "unknown reduction policy `{other}` (expected off|dpor|symmetry|dpor+symmetry)"
            )),
        }
    }
}

impl fmt::Display for ReductionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReductionPolicy::Off => "off",
            ReductionPolicy::Dpor => "dpor",
            ReductionPolicy::Symmetry => "symmetry",
            ReductionPolicy::DporSymmetry => "dpor+symmetry",
        })
    }
}

/// Per-technique accounting of what a reduction avoided, attached to
/// [`ExplorationReport::reduction`] whenever the policy is not `Off`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// The requested policy.
    pub policy: ReductionPolicy,
    /// Whether DPOR actually armed (requested *and* the protocol declares a
    /// usable independence relation, `n ≤ 64`, dedup on).
    pub dpor_active: bool,
    /// Whether the automorphism quotient actually armed (requested *and*
    /// the protocol is equivariant, dedup on, and the pinned stabilizer was
    /// enumerated completely with order > 1).
    pub symmetry_active: bool,
    /// Order of the automorphism group used (identity included); 0 when
    /// symmetry is inactive.
    pub group_order: u64,
    /// Transitions never generated because their pick was in the sleep set.
    pub sleep_skipped: u64,
    /// Terminal configurations reported via orbit expansion instead of
    /// being explored separately.
    pub orbit_terminals: u64,
    /// Frontier re-expansions forced by a sleep-set wake-up (a state was
    /// revisited with a strictly smaller sleep set).
    pub reexpansions: u64,
}

/// Tuning knobs for [`explore`]. The defaults explore up to a million
/// distinct states with fingerprinted canonical dedup.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Cap on distinct configurations discovered; exceeding it sets
    /// [`ExplorationReport::truncated`] instead of panicking.
    pub max_states: u64,
    /// Bound on the frontier (configurations awaiting expansion); overflow
    /// also sets `truncated`.
    pub max_frontier: usize,
    /// State-merging policy.
    pub dedup: DedupPolicy,
    /// Fault plan to quantify over: at every pick with remaining budget the
    /// explorer additionally branches into "this write dies"
    /// ([`Engine::step_crash`]), so the walk covers every choice of which
    /// ≤ `f` writes are lost on top of every write order. `None` — and any
    /// [`FaultPlan::is_inert`] plan — explores exactly the fault-free space,
    /// byte-identical to a build without this field.
    pub faults: Option<FaultPlan>,
    /// Sound state-space reductions (sleep-set DPOR and/or the automorphism
    /// quotient). Reductions piggyback on the seen-set, so they silently
    /// stay off under [`DedupPolicy::Off`] — the report's
    /// [`ExplorationReport::reduction`] block records what actually armed.
    pub reduction: ReductionPolicy,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 1 << 20,
            max_frontier: 1 << 16,
            dedup: DedupPolicy::Canonical,
            faults: None,
            reduction: ReductionPolicy::Off,
        }
    }
}

impl ExploreConfig {
    /// Default config with a different state cap.
    pub fn with_max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Default config with a different frontier bound.
    pub fn with_max_frontier(mut self, max_frontier: usize) -> Self {
        self.max_frontier = max_frontier;
        self
    }

    /// Select a state-merging policy.
    pub fn with_dedup(mut self, dedup: DedupPolicy) -> Self {
        self.dedup = dedup;
        self
    }

    /// Exact-snapshot dedup (collision-free verification mode).
    pub fn exact(self) -> Self {
        self.with_dedup(DedupPolicy::Exact)
    }

    /// Disable state merging (always sound, factorially slower).
    pub fn without_dedup(self) -> Self {
        self.with_dedup(DedupPolicy::Off)
    }

    /// Quantify over a fault plan (see [`ExploreConfig::faults`]).
    pub fn with_faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Select a state-space reduction policy (see [`ReductionPolicy`]).
    pub fn with_reduction(mut self, reduction: ReductionPolicy) -> Self {
        self.reduction = reduction;
        self
    }

    /// The effective fault budget: 0 when no plan is set or the plan is
    /// inert — exactly the condition for taking the fault-free fast path.
    pub fn fault_budget(&self) -> usize {
        self.faults.map(|p| p.budget()).unwrap_or(0)
    }
}

/// A terminal configuration that violated the caller's predicate, with the
/// adversary's write order as the replayable counterexample.
#[derive(Clone, Debug)]
pub struct ScheduleFailure<O> {
    /// The adversary's picks, in order — feed to
    /// [`crate::adversary::ScheduleAdversary`] to replay the run (crashed
    /// picks included; [`Self::died`] marks which of them to replay via
    /// [`Engine::step_crash`]).
    pub schedule: Vec<NodeId>,
    /// Picks whose write was dropped by the fault plan, in crash order.
    /// Empty for fault-free explorations.
    pub died: Vec<NodeId>,
    /// What the run ended in.
    pub outcome: Outcome<O>,
}

/// Structured result of a schedule-space exploration.
#[derive(Clone, Debug)]
pub struct ExplorationReport<O> {
    /// Distinct configurations discovered (root, internal, and terminal).
    pub distinct_states: u64,
    /// Distinct terminal configurations reached and checked.
    pub terminals: u64,
    /// Transitions that landed on an already-discovered configuration. With
    /// [`DedupPolicy::Off`] this is always 0.
    pub merged: u64,
    /// Whether a cap (`max_states` / `max_frontier`) cut the walk short. A
    /// truncated exploration is a partial result, never a proof.
    pub truncated: bool,
    /// High-water mark of the frontier.
    pub peak_frontier: usize,
    /// One outcome per distinct terminal *configuration*. Different
    /// configurations may produce equal outputs, so this can contain
    /// duplicates — set-ify before counting outcomes. Sequential
    /// exploration yields deterministic discovery order; the parallel
    /// explorer yields a deterministic *multiset* (racing duplicates may be
    /// attributed to either parent).
    pub outcomes: Vec<Outcome<O>>,
    /// Terminal configurations whose outcome failed the predicate, each with
    /// a witness schedule.
    pub failures: Vec<ScheduleFailure<O>>,
    /// Reduction accounting: `Some` exactly when the config asked for a
    /// policy other than [`ReductionPolicy::Off`] (so default explorations
    /// stay byte-identical to builds that predate reductions).
    pub reduction: Option<ReductionStats>,
}

impl<O> ExplorationReport<O> {
    /// Whether the exploration is both complete and failure-free.
    pub fn passed(&self) -> bool {
        !self.truncated && self.failures.is_empty()
    }

    /// Configurations generated by the walk: every probed transition target,
    /// whether it survived (`distinct_states`) or merged. This is the
    /// quantity reductions shrink — distinct states and outcomes stay put.
    pub fn generated(&self) -> u64 {
        self.distinct_states + self.merged
    }

    /// Transitions explored per distinct state — how much of the schedule
    /// tree collapsed. 1.0 means no sharing; `k` means each state was
    /// reached `k` ways on average. An empty exploration (zero states)
    /// reports 1.0 rather than dividing by zero.
    pub fn dedup_ratio(&self) -> f64 {
        if self.distinct_states == 0 {
            return 1.0;
        }
        (self.distinct_states + self.merged) as f64 / self.distinct_states as f64
    }

    /// Distinct states discovered per second of wall time. Guards both
    /// degenerate corners — zero states and a zero (or negative, or NaN)
    /// duration — by reporting 0.0 instead of an infinity or NaN, so the
    /// value is always safe to serialize into the JSON reports the CLI and
    /// benchmark binaries emit.
    pub fn states_per_sec(&self, wall_sec: f64) -> f64 {
        if self.distinct_states == 0 || !(wall_sec > 0.0) {
            return 0.0;
        }
        self.distinct_states as f64 / wall_sec
    }
}

// ---------------------------------------------------------------------------
// The worklist explorer
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Reductions: independence masks and the automorphism quotient
// ---------------------------------------------------------------------------

/// Enumeration cap for the pinned automorphism stabilizer: `|S₈| = 40320`,
/// enough for every benchmark family (clique-9 pins down to `8!`) while
/// bounding per-probe canonicalization work. A capped enumeration is *not a
/// group* (it is not closed under composition), and quotienting by a
/// non-group is unsound — so exceeding the cap disarms symmetry entirely
/// instead of using the partial set.
const AUT_CAP: usize = 40_320;

/// One automorphism as a forward/inverse relabeling pair
/// (`fwd[v-1]` = new ID of old node `v`).
struct PermPair {
    fwd: Vec<NodeId>,
    inv: Vec<NodeId>,
}

/// The non-identity elements of the pinned automorphism stabilizer.
struct SymQuotient {
    perms: Vec<PermPair>,
    /// Group order, identity included.
    order: u64,
}

/// Everything the expanders need to apply the configured reductions; built
/// once per exploration. Both parts are `None` when the corresponding
/// technique did not arm (policy off, protocol ineligible, dedup off).
struct Reduction {
    /// `indep[u-1]` = bitmask of nodes whose writes commute with `u`'s
    /// (bit `v-1` = node `v`). Present iff sleep-set DPOR armed.
    indep: Option<Vec<u64>>,
    /// Present iff the automorphism quotient armed.
    sym: Option<SymQuotient>,
    /// Whether dedup keys are exact snapshots (orbit members must then be
    /// compared by full state, not by fingerprint).
    exact: bool,
}

impl Reduction {
    /// An inert reduction: the explorer behaves exactly as if the policy
    /// were [`ReductionPolicy::Off`].
    fn inert(config: &ExploreConfig) -> Self {
        Reduction {
            indep: None,
            sym: None,
            exact: config.dedup == DedupPolicy::Exact,
        }
    }

    /// Derive the independence relation and automorphism quotient for this
    /// exploration, arming each technique only when it is sound:
    ///
    /// - DPOR needs a declared commutativity class, `n ≤ 64` (sleep sets are
    ///   node bitmasks), and dedup on (pruned transitions are exactly the
    ///   ones that would have merged — without a seen-set the equivalence
    ///   argument collapses).
    /// - Under `SIMASYNC` every message is frozen at time 0 and delivery is
    ///   skipped, so the configuration is a function of the written/crashed
    ///   *sets*: commutativity upgrades to [`Commutativity::All`] no matter
    ///   what the protocol declares.
    /// - Under `ASYNC` a common neighbor `w` of non-adjacent `u, v` freezes
    ///   its message at whichever write activates it first, so `u` and `v`
    ///   only commute when they also share no neighbor (distance > 2).
    /// - Symmetry needs equivariance, dedup on, and a completely enumerated
    ///   stabilizer of order > 1.
    fn build<P: Protocol>(protocol: &P, g: &Graph, config: &ExploreConfig) -> Self {
        let mut red = Reduction::inert(config);
        let policy = config.reduction;
        if policy == ReductionPolicy::Off || config.dedup == DedupPolicy::Off {
            return red;
        }
        let n = g.n();
        if policy.wants_dpor() && n <= 64 {
            let commutes = match protocol.model() {
                Model::SimAsync => Commutativity::All,
                _ => protocol.commutes(),
            };
            if commutes != Commutativity::None {
                let distance_two_dependent = protocol.model() == Model::Async;
                let masks = (1..=n as NodeId)
                    .map(|u| {
                        let mut mask = 0u64;
                        for v in 1..=n as NodeId {
                            let independent = v != u
                                && match commutes {
                                    Commutativity::All => true,
                                    Commutativity::NonAdjacent => {
                                        !g.has_edge(u, v)
                                            && (!distance_two_dependent
                                                || (1..=n as NodeId).all(|w| {
                                                    !(g.has_edge(u, w) && g.has_edge(v, w))
                                                }))
                                    }
                                    Commutativity::None => unreachable!(),
                                };
                            if independent {
                                mask |= 1u64 << (v - 1);
                            }
                        }
                        mask
                    })
                    .collect();
                red.indep = Some(masks);
            }
        }
        if policy.wants_symmetry() && protocol.equivariant() {
            let group = wb_graph::automorphism::stabilizer(g, &protocol.pinned_nodes(), AUT_CAP);
            if group.complete() && group.order() > 1 {
                let perms = group.elements()[1..]
                    .iter()
                    .map(|fwd| {
                        let mut inv = vec![0 as NodeId; fwd.len()];
                        for (i, &img) in fwd.iter().enumerate() {
                            inv[img as usize - 1] = (i + 1) as NodeId;
                        }
                        PermPair {
                            fwd: fwd.clone(),
                            inv,
                        }
                    })
                    .collect();
                red.sym = Some(SymQuotient {
                    perms,
                    order: group.order(),
                });
            }
        }
        red
    }

    /// Orbit-canonical fingerprint: the minimum over the automorphism group
    /// of the relabeled configuration's fingerprint, plus the minimizing
    /// permutation (`None` = identity) so sleep masks can be carried into
    /// the canonical frame. Without symmetry this is the plain fingerprint.
    fn fp_key<P: Protocol>(&self, engine: &Engine<P>) -> (u128, Option<&PermPair>) {
        let mut best = engine.canonical_fingerprint().as_u128();
        let mut best_perm = None;
        if let Some(sym) = &self.sym {
            for pp in &sym.perms {
                let fp = engine.permuted_fingerprint(&pp.fwd, &pp.inv).as_u128();
                if fp < best {
                    best = fp;
                    best_perm = Some(pp);
                }
            }
        }
        (best, best_perm)
    }

    /// Orbit-canonical exact key: lexicographically minimal relabeled
    /// canonical encoding (collision-free counterpart of [`Self::fp_key`]).
    fn exact_key<P: Protocol>(&self, engine: &Engine<P>) -> (CanonicalState, Option<&PermPair>) {
        let mut best = engine.canonical_state();
        let mut best_perm = None;
        if let Some(sym) = &self.sym {
            for pp in &sym.perms {
                let state = engine.permuted_state(&pp.fwd, &pp.inv);
                if state < best {
                    best = state;
                    best_perm = Some(pp);
                }
            }
        }
        (best, best_perm)
    }

    /// Relabel a node bitmask through a permutation (bit `v-1` → bit
    /// `perm[v-1]-1`).
    fn map_mask(mask: u64, perm: &[NodeId]) -> u64 {
        let mut out = 0u64;
        let mut rest = mask;
        while rest != 0 {
            let bit = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            out |= 1u64 << (perm[bit] - 1);
        }
        out
    }
}

/// A sleep mask in the arriving engine's labeling, mapped into the canonical
/// frame the seen-map stores masks in.
fn to_canonical_frame(sleep: u64, perm: Option<&PermPair>) -> u64 {
    match perm {
        Some(pp) => Reduction::map_mask(sleep, &pp.fwd),
        None => sleep,
    }
}

/// Result of probing the seen structure with one configuration.
enum Probe {
    /// First visit.
    New,
    /// Already seen, nothing left to do under it.
    Merge,
    /// Already seen, but this arrival's sleep set exposes picks (arrival
    /// frame) the earlier visits never explored: re-expand restricted to
    /// them.
    Wake(u64),
}

fn probe_from_insert(new: bool) -> Probe {
    if new {
        Probe::New
    } else {
        Probe::Merge
    }
}

fn probe_from_merge(merge: MaskMerge, perm: Option<&PermPair>) -> Probe {
    match merge {
        MaskMerge::Inserted => Probe::New,
        MaskMerge::Subset => Probe::Merge,
        MaskMerge::Shrunk(woken) => Probe::Wake(match perm {
            Some(pp) => Reduction::map_mask(woken, &pp.inv),
            None => woken,
        }),
    }
}

/// Probe-and-insert interface over the seen-set, so the sequential explorer
/// can use an unsynchronized set (no lock on the hottest operation) while
/// the parallel explorer shares a striped one. `red` canonicalizes the key
/// over the automorphism quotient; `sleep` is this arrival's sleep mask
/// (ignored by the plain set variants, intersected into the stored mask by
/// the sleep-map variants DPOR uses).
trait SeenProbe {
    /// Record the engine's current configuration.
    fn probe<P: Protocol>(&self, engine: &Engine<P>, red: &Reduction, sleep: u64) -> Probe;
}

/// The shared seen structure, striped by key prefix so concurrent workers
/// rarely contend for the same lock. The `*Sleep` map variants are chosen
/// only when DPOR armed; otherwise the plain sets keep the pre-reduction
/// path byte-identical.
enum SharedSeen {
    /// Fingerprints are already uniformly mixed, so the shards hash them
    /// with the pass-through hasher instead of SipHash.
    Fingerprint(StripedSet<u128, PassthroughBuildHasher>),
    Exact(StripedSet<CanonicalState>),
    FingerprintSleep(StripedMap<u128, PassthroughBuildHasher>),
    ExactSleep(StripedMap<CanonicalState>),
    Off,
}

impl SharedSeen {
    fn new(policy: DedupPolicy, shards: usize, sleep_sets: bool) -> Self {
        match (policy, sleep_sets) {
            (DedupPolicy::Canonical, false) => SharedSeen::Fingerprint(StripedSet::new(shards)),
            (DedupPolicy::Canonical, true) => SharedSeen::FingerprintSleep(StripedMap::new(shards)),
            (DedupPolicy::Exact, false) => SharedSeen::Exact(StripedSet::new(shards)),
            (DedupPolicy::Exact, true) => SharedSeen::ExactSleep(StripedMap::new(shards)),
            (DedupPolicy::Off, _) => SharedSeen::Off,
        }
    }
}

impl SeenProbe for SharedSeen {
    fn probe<P: Protocol>(&self, engine: &Engine<P>, red: &Reduction, sleep: u64) -> Probe {
        match self {
            SharedSeen::Fingerprint(set) => {
                let (key, _) = red.fp_key(engine);
                probe_from_insert(set.insert((key >> 64) as u64, key))
            }
            SharedSeen::Exact(set) => {
                let (state, _) = red.exact_key(engine);
                let shard = state.shard_key();
                probe_from_insert(set.insert(shard, state))
            }
            SharedSeen::FingerprintSleep(map) => {
                let (key, perm) = red.fp_key(engine);
                let arrival = to_canonical_frame(sleep, perm);
                probe_from_merge(map.intersect((key >> 64) as u64, key, arrival), perm)
            }
            SharedSeen::ExactSleep(map) => {
                let (state, perm) = red.exact_key(engine);
                let shard = state.shard_key();
                let arrival = to_canonical_frame(sleep, perm);
                probe_from_merge(map.intersect(shard, state, arrival), perm)
            }
            SharedSeen::Off => Probe::New,
        }
    }
}

/// [`wb_par::StripedMap::intersect`] for the unsynchronized maps.
fn local_intersect<K: Eq + std::hash::Hash, H: std::hash::BuildHasher>(
    map: &mut std::collections::HashMap<K, u64, H>,
    key: K,
    arrival: u64,
) -> MaskMerge {
    use std::collections::hash_map::Entry;
    match map.entry(key) {
        Entry::Vacant(slot) => {
            slot.insert(arrival);
            MaskMerge::Inserted
        }
        Entry::Occupied(mut slot) => {
            let old = *slot.get();
            let new = old & arrival;
            if new == old {
                MaskMerge::Subset
            } else {
                slot.insert(new);
                MaskMerge::Shrunk(old & !arrival)
            }
        }
    }
}

/// Single-threaded seen structure: same variants, no mutex on the probe path.
enum LocalSeenInner {
    Fingerprint(std::collections::HashSet<u128, PassthroughBuildHasher>),
    Exact(std::collections::HashSet<CanonicalState>),
    FingerprintSleep(std::collections::HashMap<u128, u64, PassthroughBuildHasher>),
    ExactSleep(std::collections::HashMap<CanonicalState, u64>),
    Off,
}

struct LocalSeen(std::cell::RefCell<LocalSeenInner>);

impl LocalSeen {
    fn new(policy: DedupPolicy, sleep_sets: bool) -> Self {
        LocalSeen(std::cell::RefCell::new(match (policy, sleep_sets) {
            (DedupPolicy::Canonical, false) => {
                LocalSeenInner::Fingerprint(std::collections::HashSet::default())
            }
            (DedupPolicy::Canonical, true) => {
                LocalSeenInner::FingerprintSleep(std::collections::HashMap::default())
            }
            (DedupPolicy::Exact, false) => LocalSeenInner::Exact(std::collections::HashSet::new()),
            (DedupPolicy::Exact, true) => {
                LocalSeenInner::ExactSleep(std::collections::HashMap::new())
            }
            (DedupPolicy::Off, _) => LocalSeenInner::Off,
        }))
    }
}

impl SeenProbe for LocalSeen {
    fn probe<P: Protocol>(&self, engine: &Engine<P>, red: &Reduction, sleep: u64) -> Probe {
        match &mut *self.0.borrow_mut() {
            LocalSeenInner::Fingerprint(set) => probe_from_insert(set.insert(red.fp_key(engine).0)),
            LocalSeenInner::Exact(set) => probe_from_insert(set.insert(red.exact_key(engine).0)),
            LocalSeenInner::FingerprintSleep(map) => {
                let (key, perm) = red.fp_key(engine);
                probe_from_merge(
                    local_intersect(map, key, to_canonical_frame(sleep, perm)),
                    perm,
                )
            }
            LocalSeenInner::ExactSleep(map) => {
                let (state, perm) = red.exact_key(engine);
                probe_from_merge(
                    local_intersect(map, state, to_canonical_frame(sleep, perm)),
                    perm,
                )
            }
            LocalSeenInner::Off => Probe::New,
        }
    }
}

/// Shared exploration counters (atomics so parallel expansions record
/// without a lock; the totals are set semantics and therefore deterministic
/// even under races).
struct Progress {
    /// Distinct configurations discovered, root included.
    distinct: AtomicU64,
    /// Transitions that merged into an already-seen configuration.
    merged: AtomicU64,
    /// Reduction accounting (see [`ReductionStats`]).
    sleep_skipped: AtomicU64,
    orbit_terminals: AtomicU64,
    reexpansions: AtomicU64,
    /// Raised when `max_states` is exceeded; expanders drain quickly.
    stop: AtomicBool,
    max_states: u64,
}

/// What the expander should do with a probed child.
enum Admit {
    /// New state under the cap: process it.
    Expand,
    /// Merged, terminal-after-cap, or over the cap: drop it.
    Skip,
    /// Seen before, but with picks still unexplored: re-expand restricted
    /// to the woken mask (arrival frame).
    Reexpand(u64),
}

impl Progress {
    fn new(max_states: u64) -> Self {
        Progress {
            distinct: AtomicU64::new(1), // the root
            merged: AtomicU64::new(0),
            sleep_skipped: AtomicU64::new(0),
            orbit_terminals: AtomicU64::new(0),
            reexpansions: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            max_states,
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Record one probed transition and decide the child's fate.
    fn record(&self, probe: Probe) -> Admit {
        match probe {
            Probe::New => {
                let total = self.distinct.fetch_add(1, Ordering::Relaxed) + 1;
                if total > self.max_states {
                    self.stop.store(true, Ordering::Relaxed);
                    Admit::Skip
                } else {
                    Admit::Expand
                }
            }
            Probe::Merge => {
                self.merged.fetch_add(1, Ordering::Relaxed);
                Admit::Skip
            }
            Probe::Wake(woken) => {
                self.merged.fetch_add(1, Ordering::Relaxed);
                Admit::Reexpand(woken)
            }
        }
    }
}

/// A frontier entry: a post-activation engine plus its DPOR context. `sleep`
/// is the sleep mask (bit `v-1` set = node `v`'s transitions are covered by
/// a sibling branch); `restrict` narrows a wake-up re-expansion to the
/// freshly woken picks (`u64::MAX` for ordinary expansions). Both stay
/// `0`/`MAX` when DPOR is off, making this a plain engine wrapper.
struct Pending<'a, P: Protocol> {
    engine: Engine<'a, P>,
    sleep: u64,
    restrict: u64,
}

impl<'a, P: Protocol> Pending<'a, P> {
    fn root(engine: Engine<'a, P>) -> Self {
        Pending {
            engine,
            sleep: 0,
            restrict: u64::MAX,
        }
    }
}

/// A deduplication-surviving child of one expanded configuration.
enum Child<'a, P: Protocol> {
    /// Terminal: snapshot report.
    Leaf(RunReport<P::Output>),
    /// Non-terminal: awaiting a frontier slot.
    Interior(Pending<'a, P>),
}

/// One frontier state expanded into its children (only the survivors of
/// deduplication — merged children are discarded inside [`expand_into`]
/// without ever being cloned). Used by the parallel explorer; the
/// sequential explorer feeds children straight into the merge instead.
struct Expansion<'a, P: Protocol> {
    /// Terminal children: snapshot reports.
    leaves: Vec<RunReport<P::Output>>,
    /// Non-terminal children awaiting a frontier slot.
    interior: Vec<Pending<'a, P>>,
}

/// Report a terminal configuration, expanding its orbit when the symmetry
/// quotient is armed: the quotient merged every orbit member into the
/// representative that got probed, but the unreduced walk would have
/// reported each member as its own terminal — so the siblings are emitted
/// as relabeled reports (deduplicated within the orbit, since stabilizer
/// elements map the configuration to itself). Equivariance guarantees each
/// sibling is genuinely reachable, via the relabeled schedule the report
/// carries.
fn emit_leaf<'a, P, V>(engine: &Engine<'a, P>, red: &Reduction, progress: &Progress, visit: &mut V)
where
    P: Protocol,
    V: FnMut(Child<'a, P>),
{
    visit(Child::Leaf(engine.report()));
    let Some(sym) = &red.sym else { return };
    if red.exact {
        let mut orbit = std::collections::HashSet::new();
        orbit.insert(engine.canonical_state());
        for pp in &sym.perms {
            if orbit.insert(engine.permuted_state(&pp.fwd, &pp.inv)) {
                progress.orbit_terminals.fetch_add(1, Ordering::Relaxed);
                visit(Child::Leaf(engine.permuted_report(&pp.fwd)));
            }
        }
    } else {
        let mut orbit = std::collections::HashSet::new();
        orbit.insert(engine.canonical_fingerprint().as_u128());
        for pp in &sym.perms {
            if orbit.insert(engine.permuted_fingerprint(&pp.fwd, &pp.inv).as_u128()) {
                progress.orbit_terminals.fetch_add(1, Ordering::Relaxed);
                visit(Child::Leaf(engine.permuted_report(&pp.fwd)));
            }
        }
    }
}

/// Expand one configuration clone-free: for every active pick, open a
/// savepoint, step + run the next activation phase, probe the seen-set, and
/// undo. Only unseen interior children are cloned (and the final one simply
/// keeps the stepped engine — the parent is spent anyway); every survivor
/// is handed to `visit`. The engine in the frontier is always
/// post-activation.
///
/// On simultaneous models the probe is **write-only**: the canonical
/// encoding (statuses, frozen messages, board) is final right after the
/// write, the activation phase is a no-op, and observation only mutates
/// private node state — so merged and terminal children skip the whole
/// observation fan-out, and only surviving interior children pay for
/// delivery. Free models observe before the activation phase as usual.
fn expand_into<'a, P, S, V>(
    pending: Pending<'a, P>,
    seen: &S,
    progress: &Progress,
    red: &Reduction,
    visit: &mut V,
) where
    P: Protocol,
    S: SeenProbe,
    V: FnMut(Child<'a, P>),
{
    let Pending {
        mut engine,
        sleep,
        restrict,
    } = pending;
    let dpor = red.indep.is_some();
    let indep = red.indep.as_deref().unwrap_or(&[]);
    // Iterate IDs and re-check activity instead of materializing the active
    // set: the undo after each child restores exactly the statuses this
    // loop started from, so the walked picks equal `active_set()` — minus
    // one Vec allocation per expanded state.
    let n = engine.node_count() as NodeId;
    let n_allowed = if dpor {
        (1..=n)
            .filter(|&p| {
                let bit = 1u64 << (p - 1);
                engine.is_active(p) && restrict & bit != 0 && sleep & bit == 0
            })
            .count()
    } else {
        engine.active_count()
    };
    let simultaneous = engine.is_simultaneous();
    // Picks expanded so far this round, as a mask: a later pick's child may
    // sleep on them exactly when they are independent of it.
    let mut explored = 0u64;
    let mut walked = 0;
    for pick in 1..=n {
        if !engine.is_active(pick) {
            continue;
        }
        if dpor {
            let bit = 1u64 << (pick - 1);
            if restrict & bit == 0 {
                continue;
            }
            if sleep & bit != 0 {
                if restrict == u64::MAX {
                    progress.sleep_skipped.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
        }
        if progress.stopped() {
            break;
        }
        walked += 1;
        let last = walked == n_allowed;
        let child_sleep = if dpor {
            (sleep | explored) & indep[pick as usize - 1]
        } else {
            0
        };
        let token = engine.step_token();
        if simultaneous {
            engine.step_unobserved(pick);
            match progress.record(seen.probe(&engine, red, child_sleep)) {
                Admit::Expand => {
                    if !engine.has_active() {
                        // Terminal: the report reads only board + write
                        // order, so the undelivered observations are
                        // irrelevant.
                        emit_leaf(&engine, red, progress, visit);
                    } else if last {
                        engine.deliver_last_entry();
                        engine.commit(token);
                        visit(Child::Interior(Pending {
                            engine,
                            sleep: child_sleep,
                            restrict: u64::MAX,
                        }));
                        return;
                    } else {
                        engine.deliver_last_entry();
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: u64::MAX,
                        }));
                    }
                }
                Admit::Reexpand(woken) => {
                    if engine.has_active() {
                        progress.reexpansions.fetch_add(1, Ordering::Relaxed);
                        engine.deliver_last_entry();
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: woken,
                        }));
                    }
                }
                Admit::Skip => {}
            }
        } else {
            engine.step(pick);
            engine.activation_phase();
            match progress.record(seen.probe(&engine, red, child_sleep)) {
                Admit::Expand => {
                    if !engine.has_active() {
                        emit_leaf(&engine, red, progress, visit);
                    } else if last {
                        engine.commit(token);
                        visit(Child::Interior(Pending {
                            engine,
                            sleep: child_sleep,
                            restrict: u64::MAX,
                        }));
                        return;
                    } else {
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: u64::MAX,
                        }));
                    }
                }
                Admit::Reexpand(woken) => {
                    if engine.has_active() {
                        progress.reexpansions.fetch_add(1, Ordering::Relaxed);
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: woken,
                        }));
                    }
                }
                Admit::Skip => {}
            }
        }
        engine.undo(token);
        if dpor {
            explored |= 1u64 << (pick - 1);
        }
    }
}

/// Expand one configuration under a fault budget `f > 0`: every active pick
/// branches into its surviving write *and* (budget permitting) its crashed
/// write ([`Engine::step_crash`]). Same savepoint/probe/undo discipline as
/// [`expand_into`]; survivors are always cloned (no keep-the-engine
/// optimization — each pick has up to two children, so the parent is never
/// known-spent before the loop ends).
fn expand_into_faulted<'a, P, S, V>(
    pending: Pending<'a, P>,
    f: usize,
    seen: &S,
    progress: &Progress,
    red: &Reduction,
    visit: &mut V,
) where
    P: Protocol,
    S: SeenProbe,
    V: FnMut(Child<'a, P>),
{
    let Pending {
        mut engine,
        sleep,
        restrict,
    } = pending;
    let dpor = red.indep.is_some();
    let indep = red.indep.as_deref().unwrap_or(&[]);
    let simultaneous = engine.is_simultaneous();
    let can_crash = engine.crashed_count() < f;
    // A sleeping pick skips *both* of its branches: crash(v) writes nothing,
    // so it commutes with at least everything write(v) commutes with, and
    // reordering it never changes how much crash budget remains.
    let mut explored = 0u64;
    for pick in 1..=engine.node_count() as NodeId {
        if !engine.is_active(pick) {
            continue;
        }
        if dpor {
            let bit = 1u64 << (pick - 1);
            if restrict & bit == 0 {
                continue;
            }
            if sleep & bit != 0 {
                if restrict == u64::MAX {
                    progress.sleep_skipped.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
        }
        if progress.stopped() {
            break;
        }
        let child_sleep = if dpor {
            (sleep | explored) & indep[pick as usize - 1]
        } else {
            0
        };
        // Branch 1: the write survives.
        let token = engine.step_token();
        if simultaneous {
            engine.step_unobserved(pick);
            match progress.record(seen.probe(&engine, red, child_sleep)) {
                Admit::Expand => {
                    if !engine.has_active() {
                        emit_leaf(&engine, red, progress, visit);
                    } else {
                        engine.deliver_last_entry();
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: u64::MAX,
                        }));
                    }
                }
                Admit::Reexpand(woken) => {
                    if engine.has_active() {
                        progress.reexpansions.fetch_add(1, Ordering::Relaxed);
                        engine.deliver_last_entry();
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: woken,
                        }));
                    }
                }
                Admit::Skip => {}
            }
        } else {
            engine.step(pick);
            engine.activation_phase();
            match progress.record(seen.probe(&engine, red, child_sleep)) {
                Admit::Expand => {
                    if !engine.has_active() {
                        emit_leaf(&engine, red, progress, visit);
                    } else {
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: u64::MAX,
                        }));
                    }
                }
                Admit::Reexpand(woken) => {
                    if engine.has_active() {
                        progress.reexpansions.fetch_add(1, Ordering::Relaxed);
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: woken,
                        }));
                    }
                }
                Admit::Skip => {}
            }
        }
        engine.undo(token);
        // Branch 2: the write dies (no board entry, so no delivery; the
        // activation phase is a no-op under simultaneous models).
        if can_crash && !progress.stopped() {
            let token = engine.step_token();
            engine.step_crash(pick);
            engine.activation_phase();
            match progress.record(seen.probe(&engine, red, child_sleep)) {
                Admit::Expand => {
                    if !engine.has_active() {
                        emit_leaf(&engine, red, progress, visit);
                    } else {
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: u64::MAX,
                        }));
                    }
                }
                Admit::Reexpand(woken) => {
                    if engine.has_active() {
                        progress.reexpansions.fetch_add(1, Ordering::Relaxed);
                        visit(Child::Interior(Pending {
                            engine: engine.clone(),
                            sleep: child_sleep,
                            restrict: woken,
                        }));
                    }
                }
                Admit::Skip => {}
            }
            engine.undo(token);
        }
        if dpor {
            explored |= 1u64 << (pick - 1);
        }
    }
}

/// Walk the schedule space of `protocol` on `g` sequentially, applying
/// `check` to every distinct terminal outcome. Failing terminals are
/// recorded with their witness schedule; nothing panics (cf.
/// [`assert_explored`]).
///
/// The fault-free form of [`explore_with`]: `check` sees outcomes only.
/// `config.faults` is still honored — deadlocks or degraded outputs a fault
/// plan introduces reach `check` like any other outcome, just without the
/// casualty list.
pub fn explore<P, C>(
    protocol: &P,
    g: &Graph,
    config: &ExploreConfig,
    check: C,
) -> ExplorationReport<P::Output>
where
    P: Protocol,
    P::Output: Clone,
    C: Fn(&Outcome<P::Output>) -> bool,
{
    explore_with(protocol, g, config, move |outcome, _died| check(outcome))
}

/// Like [`explore`], but `check` is fault-aware: it receives each terminal
/// outcome **and** the list of nodes whose write died on the way there
/// (empty for fault-free runs), so registry oracles can judge what remains
/// computable under `f` crashes.
pub fn explore_with<P, C>(
    protocol: &P,
    g: &Graph,
    config: &ExploreConfig,
    check: C,
) -> ExplorationReport<P::Output>
where
    P: Protocol,
    P::Output: Clone,
    C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool,
{
    let red = Reduction::build(protocol, g, config);
    let seen = LocalSeen::new(config.dedup, red.indep.is_some());
    let f = config.fault_budget();
    explore_impl(
        protocol,
        g,
        config,
        &check,
        &seen,
        &red,
        |frontier, seen, progress, red, report, check_leaf, max_frontier| {
            // Children merge straight into the report/next frontier — no
            // intermediate expansion buffers on the sequential path.
            let mut next: Vec<Pending<P>> = Vec::new();
            let mut overflow = false;
            for pending in frontier {
                let mut visit = |child| match child {
                    Child::Leaf(run) => check_leaf(report, run),
                    Child::Interior(p) => {
                        if next.len() >= max_frontier {
                            overflow = true;
                        } else {
                            next.push(p);
                        }
                    }
                };
                if f == 0 {
                    expand_into(pending, seen, progress, red, &mut visit);
                } else {
                    expand_into_faulted(pending, f, seen, progress, red, &mut visit);
                }
                if overflow {
                    report.truncated = true;
                    break;
                }
            }
            next
        },
    )
}

/// Like [`explore`], but fanning each frontier generation out across threads
/// with `wb_par::par_map_vec`, deduplicating through the striped seen-set
/// without a global lock. State, terminal, and merge counts — and the
/// multiset of outcomes — are identical to the sequential walk; only the
/// discovery *order* (hence which witness schedule represents a racing
/// duplicate) may differ.
pub fn explore_parallel<P, C>(
    protocol: &P,
    g: &Graph,
    config: &ExploreConfig,
    check: C,
) -> ExplorationReport<P::Output>
where
    P: Protocol + Sync,
    P::Node: Send + Sync,
    P::Output: Clone + Send,
    C: Fn(&Outcome<P::Output>) -> bool,
{
    explore_parallel_with(protocol, g, config, move |outcome, _died| check(outcome))
}

/// The fault-aware form of [`explore_parallel`] (see [`explore_with`]).
pub fn explore_parallel_with<P, C>(
    protocol: &P,
    g: &Graph,
    config: &ExploreConfig,
    check: C,
) -> ExplorationReport<P::Output>
where
    P: Protocol + Sync,
    P::Node: Send + Sync,
    P::Output: Clone + Send,
    C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool,
{
    let red = Reduction::build(protocol, g, config);
    let seen = SharedSeen::new(config.dedup, 4 * wb_par::num_threads(), red.indep.is_some());
    let f = config.fault_budget();
    explore_impl(
        protocol,
        g,
        config,
        &check,
        &seen,
        &red,
        |frontier, seen, progress, red, report, check_leaf, max_frontier| {
            let expansions = wb_par::par_map_vec(frontier, |p| {
                let mut exp = Expansion {
                    leaves: Vec::new(),
                    interior: Vec::new(),
                };
                let mut visit = |child| match child {
                    Child::Leaf(run) => exp.leaves.push(run),
                    Child::Interior(pending) => exp.interior.push(pending),
                };
                if f == 0 {
                    expand_into(p, seen, progress, red, &mut visit);
                } else {
                    expand_into_faulted(p, f, seen, progress, red, &mut visit);
                }
                exp
            });
            let mut next: Vec<Pending<P>> = Vec::new();
            'merge: for exp in expansions {
                for run in exp.leaves {
                    check_leaf(report, run);
                }
                for pending in exp.interior {
                    if next.len() >= max_frontier {
                        report.truncated = true;
                        break 'merge;
                    }
                    next.push(pending);
                }
            }
            next
        },
    )
}

fn explore_impl<'a, P, C, S, F>(
    protocol: &'a P,
    g: &Graph,
    config: &ExploreConfig,
    check: &C,
    seen: &S,
    red: &Reduction,
    run_generation: F,
) -> ExplorationReport<P::Output>
where
    P: Protocol,
    P::Output: Clone,
    C: Fn(&Outcome<P::Output>, &[NodeId]) -> bool,
    S: SeenProbe,
    F: for<'s> Fn(
        Vec<Pending<'a, P>>,
        &'s S,
        &'s Progress,
        &'s Reduction,
        &'s mut ExplorationReport<P::Output>,
        &'s dyn Fn(&mut ExplorationReport<P::Output>, RunReport<P::Output>),
        usize,
    ) -> Vec<Pending<'a, P>>,
{
    let stats = (config.reduction != ReductionPolicy::Off).then(|| ReductionStats {
        policy: config.reduction,
        dpor_active: red.indep.is_some(),
        symmetry_active: red.sym.is_some(),
        group_order: red.sym.as_ref().map(|s| s.order).unwrap_or(0),
        sleep_skipped: 0,
        orbit_terminals: 0,
        reexpansions: 0,
    });
    let mut report = ExplorationReport {
        distinct_states: 1, // the root
        terminals: 0,
        merged: 0,
        truncated: false,
        peak_frontier: 0,
        outcomes: Vec::new(),
        failures: Vec::new(),
        reduction: stats,
    };
    if config.max_states == 0 || config.max_frontier == 0 {
        // A zero cap admits nothing — not even the root. Report an
        // immediately-truncated empty exploration (`passed()` is false)
        // instead of panicking or accidentally walking anything.
        report.distinct_states = 0;
        report.truncated = true;
        return report;
    }
    let progress = Progress::new(config.max_states);
    let check_leaf = |report: &mut ExplorationReport<P::Output>, run: RunReport<P::Output>| {
        report.terminals += 1;
        if !check(&run.outcome, &run.crashed) {
            report.failures.push(ScheduleFailure {
                schedule: run.write_order,
                died: run.crashed,
                outcome: run.outcome.clone(),
            });
        }
        report.outcomes.push(run.outcome);
    };

    let mut root = Engine::new(protocol, g);
    root.activation_phase();
    seen.probe(&root, red, 0); // pre-counted by Progress::new
    if !root.has_active() {
        // The root is its own orbit (an equivariant protocol's initial
        // configuration is fixed by every pinned automorphism), so no orbit
        // expansion is needed here.
        check_leaf(&mut report, root.finish());
        return report;
    }

    let mut frontier = vec![Pending::root(root)];
    while !frontier.is_empty() && !report.truncated {
        report.peak_frontier = report.peak_frontier.max(frontier.len());
        frontier = run_generation(
            frontier,
            seen,
            &progress,
            red,
            &mut report,
            &check_leaf,
            config.max_frontier,
        );
        if progress.stopped() {
            report.truncated = true;
        }
    }
    report.distinct_states = progress.distinct.load(Ordering::Relaxed);
    report.merged = progress.merged.load(Ordering::Relaxed);
    if let Some(stats) = &mut report.reduction {
        stats.sleep_skipped = progress.sleep_skipped.load(Ordering::Relaxed);
        stats.orbit_terminals = progress.orbit_terminals.load(Ordering::Relaxed);
        stats.reexpansions = progress.reexpansions.load(Ordering::Relaxed);
    }
    report
}

/// Explore with [`explore`] and panic — with the witness write order — if
/// any terminal configuration deadlocks or fails `pred`, or if a cap
/// truncated the walk. Returns the report otherwise. This is the
/// assert-style entry point the protocol test suites use.
pub fn assert_explored<P, C>(
    protocol: &P,
    g: &Graph,
    config: &ExploreConfig,
    pred: C,
) -> ExplorationReport<P::Output>
where
    P: Protocol,
    P::Output: Clone + std::fmt::Debug,
    C: Fn(&P::Output) -> bool,
{
    let report = explore(protocol, g, config, |outcome| match outcome {
        Outcome::Success(out) => pred(out),
        Outcome::Deadlock { .. } => false,
    });
    if let Some(failure) = report.failures.first() {
        match &failure.outcome {
            Outcome::Success(out) => panic!(
                "predicate failed for write order {:?} on {:?}: output {:?} ({} failing terminal(s) of {})",
                failure.schedule,
                g,
                out,
                report.failures.len(),
                report.terminals,
            ),
            Outcome::Deadlock { awake } => panic!(
                "deadlock (awake {:?}) under write order {:?} on {:?}",
                awake, failure.schedule, g
            ),
        }
    }
    assert!(
        !report.truncated,
        "schedule exploration truncated at {} states (frontier peak {}); \
         raise max_states/max_frontier or shrink the instance",
        report.distinct_states, report.peak_frontier
    );
    report
}

// ---------------------------------------------------------------------------
// The naive recursive DFS (correctness anchor)
// ---------------------------------------------------------------------------

/// Result of a naive DFS walk (see [`for_each_schedule`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NaiveReport {
    /// Leaves visited (complete schedules handed to the callback).
    pub schedules: u64,
    /// Tree nodes visited, leaves included — the explorer's
    /// `distinct_states` counterpart for measuring dedup wins.
    pub states: u64,
    /// Whether more than `max_schedules` leaves exist; the walk stopped
    /// after handing `max_schedules` of them to the callback.
    pub truncated: bool,
}

/// Walk every schedule of `protocol` on `g` depth-first, calling `visit`
/// with each leaf report. The whole walk runs on **one** engine via the
/// undo log (step → recurse → undo); nothing is cloned at branch points.
///
/// Stops after `max_schedules` leaves and reports `truncated` instead of
/// panicking, so partial exploration is usable; [`assert_all_schedules`]
/// keeps the strict behavior. This path assumes nothing about the protocol
/// (no dedup) and anchors the explorer's correctness.
pub fn for_each_schedule<P, F>(
    protocol: &P,
    g: &Graph,
    max_schedules: u64,
    mut visit: F,
) -> NaiveReport
where
    P: Protocol,
    F: FnMut(&RunReport<P::Output>),
{
    let mut report = NaiveReport::default();
    let mut engine = Engine::new(protocol, g);
    engine.activation_phase();
    dfs(&mut engine, max_schedules, &mut report, &mut visit);
    report
}

fn dfs<P, F>(engine: &mut Engine<'_, P>, cap: u64, report: &mut NaiveReport, visit: &mut F)
where
    P: Protocol,
    F: FnMut(&RunReport<P::Output>),
{
    if report.truncated {
        return;
    }
    report.states += 1;
    let active = engine.active_set();
    if active.is_empty() {
        if report.schedules == cap {
            report.truncated = true;
            return;
        }
        report.schedules += 1;
        visit(&engine.report());
        return;
    }
    for &pick in &active {
        let token = engine.step_token();
        engine.step(pick);
        engine.activation_phase();
        dfs(engine, cap, report, visit);
        engine.undo(token);
        if report.truncated {
            return;
        }
    }
}

/// Assert `pred` on the output of **every** schedule; panics with the failing
/// write order otherwise (deadlocks always fail — protocols whose spec allows
/// deadlock should use [`find_failing_schedule`] instead), and panics if the
/// walk exceeded the cap — an incomplete exhaustive check must never
/// masquerade as a complete one. Returns the number of schedules checked.
pub fn assert_all_schedules<P, F>(protocol: &P, g: &Graph, max_schedules: u64, mut pred: F) -> u64
where
    P: Protocol,
    F: FnMut(&P::Output) -> bool,
{
    let report = for_each_schedule(protocol, g, max_schedules, |report| match &report.outcome {
        Outcome::Success(out) => {
            assert!(
                pred(out),
                "predicate failed for write order {:?} on {:?}",
                report.write_order,
                g
            );
        }
        Outcome::Deadlock { awake } => {
            panic!(
                "deadlock (awake {:?}) under write order {:?} on {:?}",
                awake, report.write_order, g
            );
        }
    });
    assert!(
        !report.truncated,
        "exhaustive schedule exploration exceeded the cap of {max_schedules}; \
         shrink the instance or raise the cap"
    );
    report.schedules
}

/// Search for a schedule whose outcome violates `pred` (deadlocks count as
/// violations). Returns the adversary's write order as a counterexample, or
/// `None` if all schedules (up to `max_schedules`; a truncated search can
/// miss later counterexamples) satisfy the predicate.
///
/// This is the "attack" direction of model checking: where
/// [`assert_all_schedules`] certifies a positive theorem,
/// `find_failing_schedule` *exhibits* the bad run behind a negative one
/// (e.g. the adversary defeating a protocol run outside its model).
pub fn find_failing_schedule<P, F>(
    protocol: &P,
    g: &Graph,
    max_schedules: u64,
    mut pred: F,
) -> Option<Vec<NodeId>>
where
    P: Protocol,
    F: FnMut(&Outcome<P::Output>) -> bool,
{
    let mut found = None;
    for_each_schedule(protocol, g, max_schedules, |report| {
        if found.is_none() && !pred(&report.outcome) {
            found = Some(report.write_order.clone());
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::toys::*;
    use crate::engine::Outcome;
    use std::collections::HashSet;
    use std::hash::Hash;

    use wb_graph::generators;

    /// Set of leaf outcomes from the naive DFS, keyed on the real
    /// `Eq + Hash` outcome values (not their Debug rendering).
    fn naive_outcome_set<P: Protocol>(p: &P, g: &Graph) -> HashSet<Outcome<P::Output>>
    where
        P::Output: Clone + Eq + Hash,
    {
        let mut out = HashSet::new();
        let report = for_each_schedule(p, g, 1_000_000, |r| {
            out.insert(r.outcome.clone());
        });
        assert!(!report.truncated);
        out
    }

    fn explorer_outcome_set<O: Clone + Eq + Hash>(
        report: &ExplorationReport<O>,
    ) -> HashSet<Outcome<O>> {
        report.outcomes.iter().cloned().collect()
    }

    /// Multiset of outcomes, order-insensitively comparable (the parallel
    /// explorer does not promise discovery order).
    fn outcome_multiset<O: std::fmt::Debug>(report: &ExplorationReport<O>) -> Vec<String> {
        let mut v: Vec<String> = report.outcomes.iter().map(|o| format!("{o:?}")).collect();
        v.sort();
        v
    }

    #[test]
    fn empty_report_rate_fields_are_finite() {
        // A report with zero states/zero duration must never emit NaN or an
        // infinity (the CLI serializes these fields into JSON verbatim).
        let report: ExplorationReport<()> = ExplorationReport {
            distinct_states: 0,
            terminals: 0,
            merged: 0,
            truncated: false,
            peak_frontier: 0,
            outcomes: Vec::new(),
            failures: Vec::new(),
            reduction: None,
        };
        assert_eq!(report.dedup_ratio(), 1.0);
        assert_eq!(report.states_per_sec(0.0), 0.0);
        assert_eq!(report.states_per_sec(-1.0), 0.0);
        assert_eq!(report.states_per_sec(f64::NAN), 0.0);
        assert!(report.dedup_ratio().is_finite());
        // A populated report with a zero-duration wall clock is guarded too.
        let populated: ExplorationReport<()> = ExplorationReport {
            distinct_states: 10,
            merged: 5,
            ..report
        };
        assert_eq!(populated.states_per_sec(0.0), 0.0);
        assert_eq!(populated.states_per_sec(2.0), 5.0);
        assert_eq!(populated.dedup_ratio(), 1.5);
    }

    #[test]
    fn echo_explores_factorially_many_schedules() {
        let g = generators::path(4);
        let mut orders = HashSet::new();
        let report = for_each_schedule(&EchoId, &g, 100, |report| {
            assert_eq!(report.outcome, Outcome::Success(vec![1, 2, 3, 4]));
            orders.insert(report.write_order.clone());
        });
        assert_eq!(report.schedules, 24);
        assert!(!report.truncated);
        // Tree nodes: sum over k of 4!/(4-k)! = 1 + 4 + 12 + 24 + 24.
        assert_eq!(report.states, 65);
        assert_eq!(orders.len(), 24, "all 4! write orders distinct");
    }

    #[test]
    fn explorer_collapses_simultaneous_tree_to_subset_dag() {
        // EchoId is SIMASYNC: configurations are determined by the set of
        // written nodes, so the 65-node naive tree collapses to 2^4 states
        // — under the fingerprint probe and under exact snapshots alike.
        let g = generators::path(4);
        for config in [ExploreConfig::default(), ExploreConfig::default().exact()] {
            let report = explore(&EchoId, &g, &config, |o| {
                *o == Outcome::Success(vec![1, 2, 3, 4])
            });
            assert!(report.passed());
            assert_eq!(report.distinct_states, 16);
            assert_eq!(report.terminals, 1, "one distinct final configuration");
            // Every lattice edge was generated: sum over k of C(4,k)·(4-k) =
            // 32 transitions, 15 of them discovering a new state (root
            // excluded).
            assert_eq!(report.merged, 32 - 15);
            assert!(report.dedup_ratio() > 2.0);
        }
    }

    #[test]
    fn explorer_without_dedup_matches_naive_tree() {
        let g = generators::path(4);
        let config = ExploreConfig::default().without_dedup();
        let report = explore(&EchoId, &g, &config, |o| {
            *o == Outcome::Success(vec![1, 2, 3, 4])
        });
        assert!(report.passed());
        assert_eq!(report.merged, 0);
        assert_eq!(report.terminals, 24, "all 4! schedules reach a leaf");
        assert_eq!(report.distinct_states, 65, "same tree as the naive DFS");
    }

    #[test]
    fn explorer_and_naive_agree_on_order_dependent_outputs() {
        // SeenCount writes its observation count into the message, so the
        // board content keeps order-dependent states apart and dedup stays
        // exact: 6 distinct outputs on a 3-node instance, same as naive.
        let g = generators::path(3);
        let naive = naive_outcome_set(&SeenCount, &g);
        assert_eq!(naive.len(), 6);
        for (label, report) in [
            (
                "fingerprint",
                explore(&SeenCount, &g, &ExploreConfig::default(), |_| true),
            ),
            (
                "exact",
                explore(&SeenCount, &g, &ExploreConfig::default().exact(), |_| true),
            ),
            (
                "off",
                explore(
                    &SeenCount,
                    &g,
                    &ExploreConfig::default().without_dedup(),
                    |_| true,
                ),
            ),
            (
                "parallel",
                explore_parallel(&SeenCount, &g, &ExploreConfig::default(), |_| true),
            ),
        ] {
            assert_eq!(explorer_outcome_set(&report), naive, "{label}");
        }
    }

    #[test]
    fn explorer_agrees_with_naive_across_models_and_toys() {
        let g = generators::path(4);
        let cfg = ExploreConfig::default();
        // Order-oblivious outputs: canonical dedup preserves the outcome set.
        assert_eq!(
            explorer_outcome_set(&explore(&EchoId, &g, &cfg, |_| true)),
            naive_outcome_set(&EchoId, &g)
        );
        assert_eq!(
            explorer_outcome_set(&explore(&SeenCount, &g, &cfg, |_| true)),
            naive_outcome_set(&SeenCount, &g)
        );
        assert_eq!(
            explorer_outcome_set(&explore(&Chain, &g, &cfg, |_| true)),
            naive_outcome_set(&Chain, &g)
        );
        // Transcript-valued output: exact only with dedup off (see below).
        let off = ExploreConfig::default().without_dedup();
        assert_eq!(
            explorer_outcome_set(&explore(&FrozenSeenCount, &g, &off, |_| true)),
            naive_outcome_set(&FrozenSeenCount, &g)
        );
    }

    #[test]
    fn fingerprint_and_exact_dedup_agree_on_toys() {
        // The differential core of the fingerprint claim, on every toy: the
        // streaming 128-bit probe must discover exactly the states the
        // collision-free snapshots do.
        let g = generators::path(4);
        let fp_cfg = ExploreConfig::default();
        let exact_cfg = ExploreConfig::default().exact();
        macro_rules! check {
            ($p:expr) => {{
                let fp = explore(&$p, &g, &fp_cfg, |_| true);
                let exact = explore(&$p, &g, &exact_cfg, |_| true);
                assert_eq!(fp.distinct_states, exact.distinct_states);
                assert_eq!(fp.terminals, exact.terminals);
                assert_eq!(fp.merged, exact.merged);
                assert_eq!(fp.peak_frontier, exact.peak_frontier);
                assert_eq!(outcome_multiset(&fp), outcome_multiset(&exact));
            }};
        }
        check!(EchoId);
        check!(SeenCount);
        check!(FrozenSeenCount);
        check!(Chain);
    }

    #[test]
    fn canonical_dedup_is_lossy_for_transcript_outputs() {
        // FrozenSeenCount freezes `(id, 0)` for everyone, so all 4! leaf
        // boards carry the same *content* in different write orders — and
        // its output is the transcript of that order. Canonical dedup
        // (content-keyed) therefore collapses all of them into one terminal:
        // the documented soundness boundary, not a bug.
        let g = generators::path(4);
        let naive = naive_outcome_set(&FrozenSeenCount, &g);
        assert_eq!(naive.len(), 24, "one transcript per write order");
        let canonical = explore(&FrozenSeenCount, &g, &ExploreConfig::default(), |_| true);
        assert_eq!(canonical.terminals, 1, "all transcripts merged");
        let off = explore(
            &FrozenSeenCount,
            &g,
            &ExploreConfig::default().without_dedup(),
            |_| true,
        );
        assert_eq!(explorer_outcome_set(&off), naive, "Off recovers exactness");
    }

    #[test]
    fn parallel_explorer_matches_sequential() {
        // Identical counts and outcome multisets; discovery order is not
        // promised by the parallel walk (racing duplicates may be
        // attributed to either parent), so compare order-insensitively.
        let g = generators::path(5);
        let cfg = ExploreConfig::default();
        let seq = explore(&SeenCount, &g, &cfg, |_| true);
        let par = explore_parallel(&SeenCount, &g, &cfg, |_| true);
        assert_eq!(seq.distinct_states, par.distinct_states);
        assert_eq!(seq.terminals, par.terminals);
        assert_eq!(seq.merged, par.merged);
        assert_eq!(outcome_multiset(&seq), outcome_multiset(&par));
    }

    #[test]
    fn explorer_reports_deadlock_failures_with_witness() {
        let g = generators::path(2);
        let report = explore(&NeverActivate, &g, &ExploreConfig::default(), |o| {
            o.is_success()
        });
        assert!(!report.passed());
        assert_eq!(report.terminals, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(
            report.failures[0].schedule,
            Vec::<wb_graph::NodeId>::new(),
            "deadlock happens before any write"
        );
        assert!(matches!(
            report.failures[0].outcome,
            Outcome::Deadlock { .. }
        ));
    }

    #[test]
    fn explorer_truncates_on_state_cap_without_panicking() {
        let g = generators::path(5);
        let cfg = ExploreConfig::default().without_dedup().with_max_states(10);
        let report = explore(&EchoId, &g, &cfg, |_| true);
        assert!(report.truncated);
        assert!(!report.passed());
        assert!(report.distinct_states <= 11);
    }

    #[test]
    fn explorer_truncates_on_frontier_cap_without_panicking() {
        let g = generators::path(5);
        let cfg = ExploreConfig::default()
            .without_dedup()
            .with_max_frontier(3);
        let report = explore(&EchoId, &g, &cfg, |_| true);
        assert!(report.truncated);
        assert!(report.peak_frontier <= 3);
    }

    #[test]
    fn assert_explored_returns_report_on_success() {
        let g = generators::path(3);
        let report = assert_explored(&EchoId, &g, &ExploreConfig::default(), |out| {
            out == &vec![1, 2, 3]
        });
        assert!(report.passed());
        assert_eq!(report.terminals, 1);
    }

    #[test]
    #[should_panic(expected = "predicate failed for write order")]
    fn assert_explored_panics_with_witness() {
        let g = generators::path(3);
        assert_explored(&EchoId, &g, &ExploreConfig::default(), |out| {
            out != &vec![1, 2, 3]
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn assert_explored_flags_deadlock() {
        assert_explored(
            &NeverActivate,
            &generators::path(2),
            &ExploreConfig::default(),
            |_| true,
        );
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn assert_explored_rejects_truncated_walks() {
        let cfg = ExploreConfig::default().without_dedup().with_max_states(5);
        assert_explored(&EchoId, &generators::path(5), &cfg, |_| true);
    }

    #[test]
    fn chain_has_single_schedule() {
        let g = generators::path(5);
        let report = for_each_schedule(&Chain, &g, 100, |report| {
            assert_eq!(report.write_order, vec![1, 2, 3, 4, 5]);
        });
        assert_eq!(report.schedules, 1);
        let explored = explore(&Chain, &g, &ExploreConfig::default(), |_| true);
        assert_eq!(explored.terminals, 1);
        assert_eq!(explored.merged, 0, "a forced chain has nothing to merge");
    }

    #[test]
    fn simsync_outputs_depend_on_schedule() {
        let g = generators::path(3);
        let mut outputs = HashSet::new();
        for_each_schedule(&SeenCount, &g, 100, |report| match &report.outcome {
            Outcome::Success(out) => {
                outputs.insert(out.clone());
            }
            _ => panic!("unexpected deadlock"),
        });
        // Ranks are always 0,1,2 but the id sequence varies: 6 outputs.
        assert_eq!(outputs.len(), 6);
        for out in &outputs {
            assert_eq!(
                out.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
        }
    }

    #[test]
    fn assert_all_schedules_counts() {
        let g = generators::path(3);
        let count = assert_all_schedules(&EchoId, &g, 100, |out| out == &vec![1, 2, 3]);
        assert_eq!(count, 6);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn assert_all_schedules_flags_deadlock() {
        assert_all_schedules(&NeverActivate, &generators::path(2), 10, |_| true);
    }

    #[test]
    fn for_each_schedule_reports_truncation_instead_of_panicking() {
        let mut visited = 0u64;
        let report = for_each_schedule(&EchoId, &generators::path(5), 10, |_| visited += 1);
        assert!(report.truncated);
        assert_eq!(report.schedules, 10, "exactly the cap's worth of leaves");
        assert_eq!(visited, 10);
    }

    #[test]
    #[should_panic(expected = "exceeded the cap")]
    fn assert_all_schedules_enforces_cap() {
        assert_all_schedules(&EchoId, &generators::path(5), 10, |_| true);
    }

    #[test]
    fn find_failing_schedule_returns_none_for_correct_protocols() {
        let g = generators::path(3);
        let found = find_failing_schedule(&EchoId, &g, 100, |o| match o {
            Outcome::Success(ids) => ids == &vec![1, 2, 3],
            _ => false,
        });
        assert_eq!(found, None);
    }

    #[test]
    fn find_failing_schedule_exhibits_deadlocks() {
        let g = generators::path(2);
        let found = find_failing_schedule(&NeverActivate, &g, 100, |o| {
            matches!(o, Outcome::Success(()))
        });
        assert_eq!(found, Some(vec![]), "deadlock happens before any write");
    }

    #[test]
    fn find_failing_schedule_pinpoints_order_dependent_outputs() {
        // SeenCount's output depends on the order: ask for the min-ID
        // transcript and get a counterexample order back otherwise.
        let g = generators::path(3);
        let found = find_failing_schedule(&SeenCount, &g, 100, |o| match o {
            Outcome::Success(rows) => rows.iter().map(|&(id, _)| id).eq(1..=3),
            _ => false,
        });
        let order = found.expect("non-identity orders exist");
        assert_ne!(order, vec![1, 2, 3]);
    }

    #[test]
    fn reduction_policy_parses_and_displays() {
        for (spec, policy) in [
            ("off", ReductionPolicy::Off),
            ("dpor", ReductionPolicy::Dpor),
            ("symmetry", ReductionPolicy::Symmetry),
            ("dpor+symmetry", ReductionPolicy::DporSymmetry),
        ] {
            assert_eq!(spec.parse::<ReductionPolicy>().unwrap(), policy);
            if spec != "off" {
                assert_eq!(policy.to_string(), spec);
            }
        }
        assert_eq!(
            "symmetry+dpor".parse::<ReductionPolicy>().unwrap(),
            ReductionPolicy::DporSymmetry
        );
        assert!("both".parse::<ReductionPolicy>().is_err());
    }

    #[test]
    fn zero_caps_report_immediately_truncated_empty_explorations() {
        // A zero cap must neither panic nor walk anything, and the resulting
        // empty report keeps its rate fields finite.
        for cfg in [
            ExploreConfig::default().with_max_states(0),
            ExploreConfig::default().with_max_frontier(0),
            ExploreConfig::default()
                .without_dedup()
                .with_max_states(0)
                .with_max_frontier(0),
        ] {
            for report in [
                explore(&EchoId, &generators::path(3), &cfg, |_| true),
                explore_parallel(&EchoId, &generators::path(3), &cfg, |_| true),
            ] {
                assert!(report.truncated);
                assert!(!report.passed());
                assert_eq!(report.distinct_states, 0);
                assert_eq!(report.terminals, 0);
                assert_eq!(report.generated(), 0);
                assert!(report.outcomes.is_empty());
                assert!(report.dedup_ratio().is_finite());
            }
        }
    }

    #[test]
    fn reduction_stats_are_absent_by_default_and_present_when_requested() {
        let g = generators::path(3);
        let plain = explore(&EchoId, &g, &ExploreConfig::default(), |_| true);
        assert!(plain.reduction.is_none());
        let cfg = ExploreConfig::default().with_reduction(ReductionPolicy::Dpor);
        let reduced = explore(&EchoId, &g, &cfg, |_| true);
        let stats = reduced.reduction.expect("policy != off records stats");
        assert_eq!(stats.policy, ReductionPolicy::Dpor);
        // EchoId is SIMASYNC: commutativity upgrades to All, so DPOR arms.
        assert!(stats.dpor_active);
        assert!(!stats.symmetry_active);
        assert!(stats.sleep_skipped > 0, "a path-3 walk has commuting picks");
    }

    #[test]
    fn dpor_self_disables_without_dedup_or_independence() {
        let g = generators::path(3);
        // Without dedup the sleep-set equivalence argument collapses, so
        // DPOR silently disarms and the walk matches the plain one.
        let cfg = ExploreConfig::default()
            .without_dedup()
            .with_reduction(ReductionPolicy::Dpor);
        let report = explore(&EchoId, &g, &cfg, |_| true);
        let stats = report.reduction.expect("stats still recorded");
        assert!(!stats.dpor_active);
        let plain = explore(
            &EchoId,
            &g,
            &ExploreConfig::default().without_dedup(),
            |_| true,
        );
        assert_eq!(report.distinct_states, plain.distinct_states);
        assert_eq!(report.terminals, plain.terminals);
        // SeenCount declares Commutativity::None (its state counts every
        // write), so DPOR disarms even with dedup on.
        let cfg = ExploreConfig::default().with_reduction(ReductionPolicy::Dpor);
        let report = explore(&SeenCount, &g, &cfg, |_| true);
        assert!(!report.reduction.unwrap().dpor_active);
    }

    #[test]
    fn dpor_preserves_states_terminals_and_outcomes() {
        // On SIMASYNC toys the sleep sets prune only transitions that would
        // have merged: distinct states, terminals, and outcomes are
        // identical, and the generated count drops.
        for g in [
            generators::path(4),
            generators::cycle(5),
            generators::star(5),
        ] {
            let off = explore(&EchoId, &g, &ExploreConfig::default(), |_| true);
            for policy in [ReductionPolicy::Dpor, ReductionPolicy::DporSymmetry] {
                let cfg = ExploreConfig::default().with_reduction(policy);
                let red = explore(&EchoId, &g, &cfg, |_| true);
                assert_eq!(red.distinct_states, off.distinct_states, "{g:?}");
                assert_eq!(red.terminals, off.terminals, "{g:?}");
                assert_eq!(outcome_multiset(&red), outcome_multiset(&off), "{g:?}");
                assert!(red.generated() < off.generated(), "{g:?}");
                assert!(red.merged < off.merged, "{g:?}");
            }
        }
    }

    #[test]
    fn dpor_matches_unreduced_walks_in_free_models() {
        use crate::adapt::Promote;
        // Promote<EchoId> keeps Commutativity::All in the free models (the
        // message is cached at spawn), exercising the sleep sets where
        // activation phases and freeze slots are in play.
        for target in [Model::Async, Model::Sync] {
            let p = Promote::new(EchoId, target);
            for g in [generators::path(4), generators::cycle(4)] {
                let off = explore(&p, &g, &ExploreConfig::default(), |_| true);
                let cfg = ExploreConfig::default().with_reduction(ReductionPolicy::Dpor);
                let red = explore(&p, &g, &cfg, |_| true);
                assert!(red.reduction.unwrap().dpor_active);
                assert_eq!(red.distinct_states, off.distinct_states, "{target} {g:?}");
                assert_eq!(red.terminals, off.terminals, "{target} {g:?}");
                assert_eq!(outcome_multiset(&red), outcome_multiset(&off));
            }
        }
    }

    #[test]
    fn dpor_preserves_crash_branch_coverage() {
        use crate::fault::FaultPlan;
        let g = generators::path(3);
        let base = ExploreConfig::default().with_faults(Some(FaultPlan::crash_stop(1)));
        let off = explore_with(&EchoId, &g, &base, |_, _| true);
        let cfg = base.clone().with_reduction(ReductionPolicy::Dpor);
        let red = explore_with(&EchoId, &g, &cfg, |_, _| true);
        assert_eq!(red.distinct_states, off.distinct_states);
        assert_eq!(red.terminals, off.terminals);
        assert_eq!(outcome_multiset(&red), outcome_multiset(&off));
        assert!(red.generated() <= off.generated());
    }

    #[test]
    fn parallel_dpor_matches_sequential_dpor() {
        let g = generators::path(5);
        let cfg = ExploreConfig::default().with_reduction(ReductionPolicy::Dpor);
        let seq = explore(&EchoId, &g, &cfg, |_| true);
        let par = explore_parallel(&EchoId, &g, &cfg, |_| true);
        // Merged counts may differ under races (a wake-up seen by one worker
        // may be a plain merge for another), but the state/terminal/outcome
        // view is deterministic.
        assert_eq!(seq.distinct_states, par.distinct_states);
        assert_eq!(seq.terminals, par.terminals);
        assert_eq!(outcome_multiset(&seq), outcome_multiset(&par));
    }

    #[test]
    fn inert_fault_plan_explores_identically() {
        use crate::fault::FaultPlan;
        let g = generators::path(4);
        let plain = explore(&EchoId, &g, &ExploreConfig::default(), |o| o.is_success());
        for plan in [
            None,
            Some(FaultPlan::crash_stop(0)),
            Some(FaultPlan::lossy(0)),
        ] {
            let config = ExploreConfig::default().with_faults(plan);
            let faulted = explore(&EchoId, &g, &config, |o| o.is_success());
            assert_eq!(plain.distinct_states, faulted.distinct_states);
            assert_eq!(plain.terminals, faulted.terminals);
            assert_eq!(plain.merged, faulted.merged);
            assert_eq!(outcome_multiset(&plain), outcome_multiset(&faulted));
        }
    }

    #[test]
    fn crash_branching_reaches_degraded_terminals() {
        use crate::fault::FaultPlan;
        let g = generators::path(3);
        let config = ExploreConfig::default().with_faults(Some(FaultPlan::crash_stop(1)));
        // Degraded check: the echoed list is exactly the survivors.
        let report = explore_with(&EchoId, &g, &config, |o, died| match o {
            Outcome::Success(ids) => {
                ids.len() + died.len() == 3 && ids.iter().all(|v| !died.contains(v))
            }
            Outcome::Deadlock { .. } => false,
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        // Terminals now include every ≤1-crash variant: full runs plus one
        // two-survivor terminal per victim choice.
        let outcomes = explorer_outcome_set(&report);
        assert!(outcomes.contains(&Outcome::Success(vec![1, 2, 3])));
        assert!(outcomes.contains(&Outcome::Success(vec![1, 3])));
        let plain = explore(&EchoId, &g, &ExploreConfig::default(), |o| o.is_success());
        assert!(report.distinct_states > plain.distinct_states);
        // A fault-blind check records the crashed terminals as failures, and
        // each failure names its casualty.
        let strict = explore_with(&EchoId, &g, &config, |o, _| match o {
            Outcome::Success(ids) => ids.len() == 3,
            Outcome::Deadlock { .. } => false,
        });
        assert!(!strict.failures.is_empty());
        for fail in &strict.failures {
            assert_eq!(fail.died.len(), 1, "{fail:?}");
            assert!(fail.schedule.contains(&fail.died[0]));
        }
    }

    #[test]
    fn faulted_parallel_walk_matches_sequential() {
        use crate::fault::FaultPlan;
        for plan in [FaultPlan::crash_stop(1), FaultPlan::lossy(2)] {
            let g = generators::cycle(4);
            let config = ExploreConfig::default().with_faults(Some(plan));
            let check = |o: &Outcome<Vec<NodeId>>, died: &[NodeId]| match o {
                Outcome::Success(ids) => ids.len() + died.len() == 4,
                Outcome::Deadlock { .. } => false,
            };
            let seq = explore_with(&EchoId, &g, &config, check);
            let par = explore_parallel_with(&EchoId, &g, &config, check);
            assert_eq!(seq.distinct_states, par.distinct_states);
            assert_eq!(seq.terminals, par.terminals);
            assert_eq!(seq.merged, par.merged);
            assert_eq!(outcome_multiset(&seq), outcome_multiset(&par));
        }
    }

    #[test]
    fn crash_induced_deadlocks_surface_in_free_models() {
        use crate::fault::FaultPlan;
        // Chain: node v waits for v-1's write. Crashing node 1 still
        // activates node 2 (the write happened, board content didn't), but
        // crashing under EagerChain-style dependencies can strand waiters
        // when activation reads the *board*. NeverActivate deadlocks even
        // fault-free; here we check the faulted walk classifies deadlocks
        // through the fault-aware check.
        let g = generators::path(2);
        let config = ExploreConfig::default().with_faults(Some(FaultPlan::crash_stop(1)));
        let report = explore_with(&NeverActivate, &g, &config, |o, _| o.is_success());
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, Outcome::Deadlock { .. })));
        assert!(!report.failures.is_empty());
    }
}
