//! The four computation models and their lattice (paper Table 1 / Theorem 4).

use std::fmt;

/// One of the four shared-whiteboard models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// Simultaneous + asynchronous: every node composes its message from its
    /// local view only, before observing anything. Equivalent to a one-shot
    /// "simultaneous messages" protocol.
    SimAsync,
    /// Simultaneous + synchronous: all nodes are active from the first round;
    /// the message is composed at write time and may depend on the board.
    SimSync,
    /// Free + asynchronous: nodes choose when to activate; the message is
    /// frozen at activation and written (possibly much) later.
    Async,
    /// Free + synchronous: nodes choose when to activate and compose their
    /// message at write time.
    Sync,
}

impl Model {
    /// All four models, weakest first.
    pub const ALL: [Model; 4] = [Model::SimAsync, Model::SimSync, Model::Async, Model::Sync];

    /// Whether all nodes are active from the first round.
    pub fn is_simultaneous(self) -> bool {
        matches!(self, Model::SimAsync | Model::SimSync)
    }

    /// Whether messages are frozen at activation time.
    pub fn is_asynchronous(self) -> bool {
        matches!(self, Model::SimAsync | Model::Async)
    }

    /// The ⊆ relation of Lemma 4:
    /// `SIMASYNC ⊆ SIMSYNC ⊆ ASYNC ⊆ SYNC` (a chain in this formulation —
    /// the paper proves `SIMSYNC ⊆ ASYNC` via sequential activation).
    pub fn includes(self, weaker: Model) -> bool {
        weaker.rank() <= self.rank()
    }

    fn rank(self) -> u8 {
        match self {
            Model::SimAsync => 0,
            Model::SimSync => 1,
            Model::Async => 2,
            Model::Sync => 3,
        }
    }
}

impl std::str::FromStr for Model {
    type Err = String;

    /// Parse the [`fmt::Display`] names (`SIMASYNC`, `SIMSYNC`, `ASYNC`,
    /// `SYNC`), case-insensitively — certificates store the display form.
    fn from_str(s: &str) -> Result<Model, String> {
        match s.to_ascii_uppercase().as_str() {
            "SIMASYNC" => Ok(Model::SimAsync),
            "SIMSYNC" => Ok(Model::SimSync),
            "ASYNC" => Ok(Model::Async),
            "SYNC" => Ok(Model::Sync),
            other => Err(format!("unknown model '{other}'")),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Model::SimAsync => "SIMASYNC",
            Model::SimSync => "SIMSYNC",
            Model::Async => "ASYNC",
            Model::Sync => "SYNC",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_chain() {
        assert!(Model::Sync.includes(Model::Async));
        assert!(Model::Async.includes(Model::SimSync));
        assert!(Model::SimSync.includes(Model::SimAsync));
        assert!(Model::Sync.includes(Model::SimAsync));
        assert!(!Model::SimAsync.includes(Model::SimSync));
        assert!(!Model::Async.includes(Model::Sync));
        for m in Model::ALL {
            assert!(m.includes(m));
        }
    }

    #[test]
    fn quadrant_flags() {
        assert!(Model::SimAsync.is_simultaneous() && Model::SimAsync.is_asynchronous());
        assert!(Model::SimSync.is_simultaneous() && !Model::SimSync.is_asynchronous());
        assert!(!Model::Async.is_simultaneous() && Model::Async.is_asynchronous());
        assert!(!Model::Sync.is_simultaneous() && !Model::Sync.is_asynchronous());
    }

    #[test]
    fn display_names() {
        assert_eq!(Model::SimAsync.to_string(), "SIMASYNC");
        assert_eq!(Model::Sync.to_string(), "SYNC");
    }

    #[test]
    fn parse_inverts_display() {
        for m in Model::ALL {
            assert_eq!(m.to_string().parse::<Model>(), Ok(m));
            assert_eq!(m.to_string().to_lowercase().parse::<Model>(), Ok(m));
        }
        assert!("FASYNC".parse::<Model>().is_err());
    }
}
