//! Theorem 3 / Figure 1, executable: a `SIMASYNC` TRIANGLE oracle yields a
//! `SIMASYNC` BUILD protocol for triangle-free graphs.
//!
//! The gadget `G'_{s,t}` adds node `v_{n+1}` adjacent to exactly `{v_s, v_t}`;
//! if `G` is triangle-free (in particular bipartite), `G'_{s,t}` has a
//! triangle iff `{v_s, v_t} ∈ E(G)`. Every node of the transformed protocol
//! writes the *pair* of oracle messages it would send in `G'_{·,·}` — one for
//! "not adjacent to the new node" (`m'` in the paper) and one for "adjacent"
//! (`m''`) — which costs `2·f(n+1) + O(log n)` bits. The referee then replays
//! the oracle's output function on the synthesized board of every `G'_{s,t}`
//! and reads off the edges. Combined with Lemma 3 (bipartite graphs carry
//! `(n/2)²` bits, the board only `n·f(n)`), no `o(n)`-bit oracle can exist.

use wb_graph::{Graph, NodeId};
use wb_math::{bits_for, id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Build the Figure 1 gadget `G'_{s,t}`.
pub fn fig1_gadget(g: &Graph, s: NodeId, t: NodeId) -> Graph {
    assert!(s != t);
    g.with_extra_node(&[s, t])
}

/// The Theorem 3 transformation: BUILD (on triangle-free inputs) from a
/// `SIMASYNC` TRIANGLE oracle.
#[derive(Clone, Debug)]
pub struct TriangleToBuild<P> {
    oracle: P,
}

impl<P> TriangleToBuild<P>
where
    P: Protocol<Output = bool>,
{
    /// Wrap a `SIMASYNC` triangle oracle.
    pub fn new(oracle: P) -> Self {
        assert_eq!(
            oracle.model(),
            Model::SimAsync,
            "Theorem 3 transforms SIMASYNC oracles (their messages cannot depend on the board)"
        );
        TriangleToBuild { oracle }
    }

    fn len_field_bits(&self, n: usize) -> u32 {
        bits_for(self.oracle.budget_bits(n + 1) as u64)
    }

    /// The oracle's message for a node with identifier `id` and neighborhood
    /// `neighbors` in an (n+1)-node gadget.
    fn oracle_message(&self, id: NodeId, n1: usize, neighbors: Vec<NodeId>) -> BitVec {
        let view = LocalView {
            id,
            n: n1,
            neighbors,
        };
        self.oracle.spawn(&view).compose(&view)
    }
}

/// Transformed-protocol node: writes `(ID, m', m'')`.
#[derive(Clone)]
pub struct PairNode<P> {
    oracle: P,
    len_field: u32,
}

impl<P> Node for PairNode<P>
where
    P: Protocol<Output = bool> + Clone,
{
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let n1 = view.n + 1;
        let plain = LocalView {
            id: view.id,
            n: n1,
            neighbors: view.neighbors.clone(),
        };
        let mut with_x = view.neighbors.clone();
        with_x.push(n1 as NodeId);
        let attached = LocalView {
            id: view.id,
            n: n1,
            neighbors: with_x,
        };
        let m1 = self.oracle.spawn(&plain).compose(&plain);
        let m2 = self.oracle.spawn(&attached).compose(&attached);
        let mut w = BitWriter::new();
        w.write_bits(view.id as u64, id_bits(view.n));
        w.write_bits(m1.len() as u64, self.len_field);
        w.write_bitvec(&m1);
        w.write_bits(m2.len() as u64, self.len_field);
        w.write_bitvec(&m2);
        w.finish()
    }
}

impl<P> Protocol for TriangleToBuild<P>
where
    P: Protocol<Output = bool> + Clone,
{
    type Node = PairNode<P>;
    type Output = Graph;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        // The paper's 2·f(n+1) + log n, plus two length fields.
        id_bits(n) + 2 * (self.len_field_bits(n) + self.oracle.budget_bits(n + 1))
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        PairNode {
            oracle: self.oracle.clone(),
            len_field: self.len_field_bits(view.n),
        }
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Graph {
        let len_field = self.len_field_bits(n);
        // Parse each node's (m', m'') pair.
        let mut pairs: Vec<Option<(BitVec, BitVec)>> = vec![None; n];
        for e in board.entries() {
            let mut r = BitReader::new(&e.msg);
            let id = r.read_bits(id_bits(n)) as usize;
            let l1 = r.read_bits(len_field) as usize;
            let m1 = r.read_bitvec(l1);
            let l2 = r.read_bits(len_field) as usize;
            let m2 = r.read_bitvec(l2);
            pairs[id - 1] = Some((m1, m2));
        }
        let pairs: Vec<(BitVec, BitVec)> = pairs
            .into_iter()
            .map(|p| p.expect("missing message"))
            .collect();

        let n1 = n + 1;
        let mut g = Graph::empty(n);
        for s in 1..=n as NodeId {
            for t in (s + 1)..=n as NodeId {
                // Synthesize the board the oracle would produce on G'_{s,t}.
                let x_msg = self.oracle_message(n1 as NodeId, n1, vec![s, t]);
                let board = Whiteboard::from_messages(
                    (1..=n as NodeId)
                        .map(|i| {
                            let (m1, m2) = &pairs[i as usize - 1];
                            (
                                i,
                                if i == s || i == t {
                                    m2.clone()
                                } else {
                                    m1.clone()
                                },
                            )
                        })
                        .chain(std::iter::once((n1 as NodeId, x_msg))),
                );
                if self.oracle.output(n1, &board) {
                    g.add_edge(s, t);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_core::TriangleFullRow;
    use wb_graph::{checks, generators};
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn gadget_detects_edges_on_bipartite_graphs() {
        // Figure 1's property: G'_{s,t} has a triangle ⟺ {s,t} ∈ E.
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::bipartite_fixed(5, 5, 0.4, &mut rng);
        for s in 1..=10 {
            for t in (s + 1)..=10 {
                let gadget = fig1_gadget(&g, s, t);
                assert_eq!(
                    checks::has_triangle(&gadget),
                    g.has_edge(s, t),
                    "s={s} t={t}"
                );
            }
        }
    }

    #[test]
    fn gadget_property_fails_beyond_triangle_free() {
        // On a graph that already has a triangle the equivalence breaks —
        // this is why Theorem 3 restricts to bipartite inputs.
        let g = generators::clique(3);
        let gadget = fig1_gadget(&g, 1, 2);
        assert!(checks::has_triangle(&gadget));
        let mut h = g.clone();
        h.remove_edge(1, 2);
        let gadget2 = fig1_gadget(&h, 1, 2);
        // No edge {1,2}, but the graph is not triangle-free in general…
        // (here it is, so detection is still correct; the restriction matters
        // for graphs with pre-existing triangles):
        assert!(!checks::has_triangle(&gadget2));
    }

    #[test]
    fn transformation_rebuilds_bipartite_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = TriangleToBuild::new(TriangleFullRow);
        for (a, b) in [(3usize, 4usize), (5, 5), (2, 7)] {
            let g = generators::bipartite_fixed(a, b, 0.5, &mut rng);
            let report = run(&p, &g, &mut RandomAdversary::new((a * b) as u64));
            match report.outcome {
                Outcome::Success(h) => assert_eq!(h, g),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn transformation_rebuilds_even_odd_bipartite_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = TriangleToBuild::new(TriangleFullRow);
        let g = generators::even_odd_bipartite(9, 0.4, &mut rng);
        let report = run(&p, &g, &mut RandomAdversary::new(0));
        assert_eq!(report.outcome, Outcome::Success(g));
    }

    #[test]
    fn budget_is_twice_oracle_plus_logs() {
        let p = TriangleToBuild::new(TriangleFullRow);
        let n = 12;
        let oracle_bits = TriangleFullRow.budget_bits(n + 1);
        assert!(p.budget_bits(n) >= 2 * oracle_bits);
        assert!(p.budget_bits(n) <= 2 * oracle_bits + 3 * id_bits(n) + 20);
    }
}
