//! Large-message oracle protocols used to instantiate the reductions.
//!
//! Theorems 3, 6 and 8 are of the form "a small-message oracle for P would
//! yield an impossible BUILD protocol". The transformations in this crate are
//! generic over the oracle; to *run* them end-to-end we instantiate them with
//! the `Θ(n)`-bit full-row oracles below (which trivially exist). The Lemma 3
//! sweep then shows exactly why an `o(n)`-bit oracle cannot exist: the
//! transformed protocol's board capacity falls below the family entropy.

use wb_graph::checks;
use wb_graph::{Graph, NodeId};
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// A full-adjacency-row node whose `observe` is a no-op, so it can be driven
/// by any model's engine and by the manual simulations in the reductions.
#[derive(Clone)]
pub struct FullRowNode;

impl Node for FullRowNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {}

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        w.write_bits(view.id as u64, id_bits(view.n));
        for u in 1..=view.n as NodeId {
            w.write_bool(view.is_neighbor(u));
        }
        w.finish()
    }
}

fn decode_rows(n: usize, board: &Whiteboard) -> Graph {
    let mut g = Graph::empty(n);
    for e in board.entries() {
        let mut r = BitReader::new(&e.msg);
        let id = r.read_bits(id_bits(n)) as NodeId;
        for u in 1..=n as NodeId {
            if r.read_bool() && u != id {
                g.add_edge(id, u);
            }
        }
    }
    g
}

/// `SIMASYNC[n]` rooted-MIS oracle: full rows, then a deterministic greedy MIS
/// containing the root, computed by the referee.
#[derive(Clone, Debug)]
pub struct MisFullRowOracle {
    root: NodeId,
}

impl MisFullRowOracle {
    /// Oracle answering rooted-MIS queries for `root`.
    pub fn new(root: NodeId) -> Self {
        MisFullRowOracle { root }
    }
}

impl Protocol for MisFullRowOracle {
    type Node = FullRowNode;
    type Output = Vec<NodeId>;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + n as u32
    }

    fn spawn(&self, _view: &LocalView) -> FullRowNode {
        FullRowNode
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Vec<NodeId> {
        let g = decode_rows(n, board);
        let mut set = vec![self.root];
        for v in 1..=n as NodeId {
            if v == self.root {
                continue;
            }
            if set.iter().all(|&u| !g.has_edge(u, v)) {
                set.push(v);
            }
        }
        set.sort_unstable();
        debug_assert!(checks::is_rooted_mis(&g, &set, self.root));
        set
    }
}

/// `SIMSYNC[n]` BFS oracle: full rows, then the canonical min-ID-rooted BFS
/// forest computed by the referee. (Declared SIMSYNC because Theorem 8's
/// transformation consumes a SIMSYNC oracle; the messages happen not to use
/// the board, which any SIMSYNC protocol is allowed to do.)
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsFullRowOracle;

impl Protocol for BfsFullRowOracle {
    type Node = FullRowNode;
    type Output = checks::BfsForest;

    fn model(&self) -> Model {
        Model::SimSync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + n as u32
    }

    fn spawn(&self, _view: &LocalView) -> FullRowNode {
        FullRowNode
    }

    fn output(&self, n: usize, board: &Whiteboard) -> checks::BfsForest {
        checks::bfs_forest(&decode_rows(n, board))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::generators;
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn mis_oracle_is_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..10 {
            let g = generators::gnp(20, 0.25, &mut rng);
            let root = (trial % 20 + 1) as NodeId;
            let report = run(
                &MisFullRowOracle::new(root),
                &g,
                &mut RandomAdversary::new(trial),
            );
            match report.outcome {
                Outcome::Success(set) => assert!(checks::is_rooted_mis(&g, &set, root)),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn bfs_oracle_matches_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(18, 0.2, &mut rng);
        let report = run(&BfsFullRowOracle, &g, &mut RandomAdversary::new(1));
        assert_eq!(report.outcome, Outcome::Success(checks::bfs_forest(&g)));
    }
}
