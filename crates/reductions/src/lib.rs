//! Executable lower-bound machinery: the reductions and counting arguments
//! behind every "no" cell of the paper's Table 2.
//!
//! The impossibility proofs all share one skeleton: *if problem P were
//! solvable with small messages, then BUILD on a large graph family would be
//! too* (a protocol transformation), *but the final whiteboard cannot hold
//! enough bits to distinguish that family* (Lemma 3). Both halves are code
//! here:
//!
//! - [`lemma3`] — the counting half, joining `wb_math::counting` to concrete
//!   families and message regimes;
//! - [`triangle_to_build`] — Theorem 3 / Figure 1: a `SIMASYNC` TRIANGLE
//!   oracle becomes a `SIMASYNC` BUILD protocol for triangle-free (e.g.
//!   bipartite) graphs via the `G'_{s,t}` gadget;
//! - [`mis_to_build`] — Theorem 6: a `SIMASYNC` rooted-MIS oracle becomes a
//!   BUILD protocol for *arbitrary* graphs via the `G^{(x)}_{i,j}` gadget;
//! - [`eobbfs_to_build`] — Theorem 8 / Figure 2: a `SIMSYNC` EOB-BFS oracle
//!   becomes a `SIMSYNC` BUILD protocol for even-odd-bipartite graphs via the
//!   `G_i` gadget;
//! - [`subgraph_bound`] — Theorem 9: the counting side of the
//!   `SUBGRAPH_f ∈ PSIMASYNC[f] \ PSYNC[g]` orthogonality result;
//! - [`oracles`] — large-message (`Θ(n)`-bit) oracle protocols used to
//!   *instantiate* the transformations end-to-end: the theorems say no
//!   small-message oracle exists, and running the transformation against a
//!   big-message oracle demonstrates the machinery while the Lemma 3 curve
//!   shows why shrinking the oracle is impossible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eobbfs_to_build;
pub mod lemma3;
pub mod mis_to_build;
pub mod oracles;
pub mod subgraph_bound;
pub mod triangle_to_build;

pub use lemma3::{family_log2_bits, Family};
