//! Theorem 8 / Figure 2, executable: a `SIMSYNC` EOB-BFS oracle yields a
//! `SIMSYNC` BUILD protocol for even-odd-bipartite graphs.
//!
//! **Coordinates.** The paper places the hidden graph `G` on nodes
//! `{v_2 … v_n}` (`n` odd) and builds, for each odd `3 ≤ i ≤ n`, the gadget
//! `G_i` on `{v_1} ∪ {v_2 … v_n} ∪ {v_{n+1} … v_{2n−1}}`:
//!
//! - `v_j — v_{j+n−2}` for every odd `3 ≤ j ≤ n` (an "anchor" per odd node),
//! - `v_j — v_{j+n}` for every even `2 ≤ j ≤ n−1` (an anchor per even node),
//! - `v_1 — v_{i+n−2}` (the probe: `v_1` hooks onto `v_i`'s anchor).
//!
//! Then `v_j` lies in layer 3 of the BFS tree rooted at `v_1` **iff**
//! `{v_i, v_j} ∈ E(G)`. Our API graphs are `1..h`, so the hidden graph `H`
//! (`h = n−1` nodes, `h` odd… `h` even) maps via `H`-node `u ↔ v_{u+1}`;
//! `H` is even-odd-bipartite iff the paper's `G` is.
//!
//! **The transformation.** A `V`-node's neighborhood is the same in every
//! `G_i`, so when the adversary picks it, it feeds its observed board prefix
//! into the oracle node for `v_{u+1}` and writes that oracle message —
//! *one* message serving all `n/2` gadgets. The referee extends the board:
//! the anchors' and `v_1`'s neighborhoods in each `G_i` are public, so it
//! composes their oracle messages in sequence (the oracle, being correct for
//! *every* adversary order, is in particular correct for "the real order,
//! then anchors, then `v_1`"), runs the oracle's output function, and reads
//! layer 3 of `v_1`'s tree. Lemma 3 (`2^{Ω(n²)}` EOB graphs) finishes the
//! impossibility.

use wb_graph::checks::BfsForest;
use wb_graph::{Graph, NodeId};
use wb_math::BitVec;
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Build the Figure 2 gadget `G_i` (paper coordinates) from the hidden graph
/// `H` on `h` nodes (`H`-node `u` is the paper's `v_{u+1}`); `i` is an odd
/// paper index with `3 ≤ i ≤ n`, `n = h+1`.
pub fn fig2_gadget(h_graph: &Graph, i: NodeId) -> Graph {
    let h = h_graph.n();
    let n = h + 1; // paper's n; nodes v_2..v_n host H
    assert!(
        n % 2 == 1,
        "the construction needs paper-n odd (h = {h} even)"
    );
    assert!(
        i % 2 == 1 && i >= 3 && (i as usize) <= n,
        "i must be an odd paper index in 3..=n"
    );
    let total = 2 * n - 1;
    let mut g = Graph::empty(total);
    // H's edges, shifted by +1.
    for (a, b) in h_graph.edges() {
        g.add_edge(a + 1, b + 1);
    }
    // Anchors.
    for j in (3..=n).step_by(2) {
        g.add_edge(j as NodeId, (j + n - 2) as NodeId);
    }
    for j in (2..n).step_by(2) {
        g.add_edge(j as NodeId, (j + n) as NodeId);
    }
    // The probe.
    g.add_edge(1, (i as usize + n - 2) as NodeId);
    g
}

/// Neighborhood of paper-node `v_q` in `G_i`, for the gadget nodes whose
/// neighborhoods the referee must know (`q = 1` or `q > n`). Depends only on
/// the hidden graph's size `h`, never its edges — that is the point of the
/// construction.
fn gadget_view(h: usize, i: NodeId, q: NodeId) -> LocalView {
    let n = h + 1;
    let total = 2 * n - 1;
    let q_us = q as usize;
    let mut neighbors: Vec<NodeId> = Vec::new();
    if q_us == 1 {
        neighbors.push((i as usize + n - 2) as NodeId);
    } else {
        debug_assert!(q_us > n);
        // Anchor q serves exactly one V-node: odd j = q−n+2 or even j = q−n.
        let jo = q_us + 2 - n;
        let je = q_us.wrapping_sub(n);
        if (3..=n).contains(&jo) && jo % 2 == 1 {
            neighbors.push(jo as NodeId);
        } else if (2..n).contains(&je) && je % 2 == 0 {
            neighbors.push(je as NodeId);
        }
        if q_us == i as usize + n - 2 {
            neighbors.push(1);
        }
        neighbors.sort_unstable();
    }
    LocalView {
        id: q,
        n: total,
        neighbors,
    }
}

/// Neighborhood of a `V`-node `v_{u+1}` (`u` an `H`-node) in every `G_i`.
fn v_node_view(h_view: &LocalView) -> LocalView {
    let h = h_view.n;
    let n = h + 1;
    let j = h_view.id as usize + 1; // paper index
    let mut neighbors: Vec<NodeId> = h_view.neighbors.iter().map(|&w| w + 1).collect();
    if j % 2 == 1 {
        neighbors.push((j + n - 2) as NodeId);
    } else {
        neighbors.push((j + n) as NodeId);
    }
    neighbors.sort_unstable();
    LocalView {
        id: j as NodeId,
        n: 2 * n - 1,
        neighbors,
    }
}

/// The Theorem 8 transformation: BUILD on even-odd-bipartite graphs from a
/// `SIMSYNC` BFS oracle.
#[derive(Clone, Debug)]
pub struct EobBfsToBuild<P> {
    oracle: P,
}

impl<P> EobBfsToBuild<P>
where
    P: Protocol<Output = BfsForest>,
{
    /// Wrap a `SIMSYNC` (or weaker) BFS oracle.
    pub fn new(oracle: P) -> Self {
        assert!(
            matches!(oracle.model(), Model::SimSync | Model::SimAsync),
            "Theorem 8 transforms simultaneous oracles"
        );
        EobBfsToBuild { oracle }
    }
}

/// Transformed-protocol node: an embedded oracle node for `v_{u+1}`, fed the
/// observed prefix.
#[derive(Clone)]
pub struct EobPairNode<N> {
    inner: N,
    inner_view: LocalView,
}

impl<N: Node> Node for EobPairNode<N> {
    fn observe(&mut self, _view: &LocalView, seq: usize, writer: NodeId, msg: &BitVec) {
        // Forward with the writer mapped into paper coordinates.
        self.inner.observe(&self.inner_view, seq, writer + 1, msg);
    }

    fn compose(&mut self, _view: &LocalView) -> BitVec {
        self.inner.compose(&self.inner_view)
    }
}

impl<P> Protocol for EobBfsToBuild<P>
where
    P: Protocol<Output = BfsForest>,
{
    type Node = EobPairNode<P::Node>;
    type Output = Graph;

    fn model(&self) -> Model {
        Model::SimSync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        // A' writes raw oracle messages for the (2n+1)-node gadget
        // (paper: f(2·(n+1) − 1) bits — no overhead at all).
        self.oracle.budget_bits(2 * (n + 1) - 1)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        let inner_view = v_node_view(view);
        EobPairNode {
            inner: self.oracle.spawn(&inner_view),
            inner_view,
        }
    }

    fn output(&self, h: usize, board: &Whiteboard) -> Graph {
        let n = h + 1;
        let total = 2 * n - 1;
        let mut g = Graph::empty(h);
        // The H-side prefix, in real write order, with paper writer IDs.
        let prefix: Vec<(NodeId, BitVec)> = board
            .entries()
            .iter()
            .map(|e| (e.writer + 1, e.msg.clone()))
            .collect();
        for i in (3..=n).step_by(2) {
            let i = i as NodeId;
            // Continue the run: anchors v_{n+1}..v_{2n−1}, then v_1.
            let mut entries = prefix.clone();
            let continuation: Vec<NodeId> = ((n + 1)..=total)
                .map(|q| q as NodeId)
                .chain(std::iter::once(1))
                .collect();
            for q in continuation {
                let view = gadget_view(h, i, q);
                let mut node = self.oracle.spawn(&view);
                for (seq, (writer, msg)) in entries.iter().enumerate() {
                    node.observe(&view, seq, *writer, msg);
                }
                entries.push((q, node.compose(&view)));
            }
            let full_board = Whiteboard::from_messages(entries);
            let forest = self.oracle.output(total, &full_board);
            // H-neighbors of H-node (i−1): even paper-j in layer 3 of v_1's
            // tree (trace parents to confirm the component root is v_1).
            for j in (2..=n).step_by(2) {
                let j = j as NodeId;
                if forest.layer[j as usize - 1] != 3 {
                    continue;
                }
                let mut cur = j;
                let mut root = j;
                let mut hops = 0;
                while let Some(p) = forest.parent[cur as usize - 1] {
                    root = p;
                    cur = p;
                    hops += 1;
                    if hops > total {
                        break; // malformed forest; treat as non-edge
                    }
                }
                if root == 1 {
                    g.add_edge(i - 1, j - 1);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::BfsFullRowOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, generators};
    use wb_runtime::{run, MaxIdAdversary, Outcome, RandomAdversary};

    /// Fig 2's worked example: the paper's n = 7, G on {v₂..v₇}.
    #[test]
    fn fig2_gadget_layer3_property() {
        let mut rng = StdRng::seed_from_u64(7);
        // Hidden graph H on 6 nodes (paper's v₂..v₇), even-odd bipartite,
        // connected so that BFS layers are well-defined through v₁'s tree.
        for _ in 0..10 {
            let h = generators::even_odd_bipartite_connected(6, 0.4, &mut rng);
            for i in [3 as NodeId, 5, 7] {
                let gadget = fig2_gadget(&h, i);
                assert!(checks::is_even_odd_bipartite(&gadget), "gadget stays EOB");
                let forest = checks::bfs_forest(&gadget);
                for j in [2 as NodeId, 4, 6] {
                    let expected = h.has_edge(i - 1, j - 1);
                    let in_layer3 = forest.layer[j as usize - 1] == 3;
                    assert_eq!(in_layer3, expected, "i={i} j={j} in {h:?}");
                }
            }
        }
    }

    #[test]
    fn transformation_rebuilds_eob_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = EobBfsToBuild::new(BfsFullRowOracle);
        for trial in 0..8 {
            let h = generators::even_odd_bipartite_connected(8, 0.5, &mut rng);
            let report = run(&t, &h, &mut RandomAdversary::new(trial));
            match report.outcome {
                Outcome::Success(rebuilt) => assert_eq!(rebuilt, h, "trial {trial}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn transformation_is_order_insensitive() {
        let mut rng = StdRng::seed_from_u64(13);
        let h = generators::even_odd_bipartite_connected(6, 0.5, &mut rng);
        let t = EobBfsToBuild::new(BfsFullRowOracle);
        let a = run(&t, &h, &mut MaxIdAdversary);
        let b = run(&t, &h, &mut RandomAdversary::new(99));
        match (a.outcome, b.outcome) {
            (Outcome::Success(x), Outcome::Success(y)) => {
                assert_eq!(x, h);
                assert_eq!(y, h);
            }
            _ => panic!("expected success"),
        }
    }
}
