//! Lemma 3, joined to concrete graph families.
//!
//! > Let `G` be a family of n-node graphs with `g(n)` members. If BUILD
//! > restricted to `G` is solvable in any of the four models with message
//! > size `f(n)`, then `log g(n) = O(n·f(n))`.
//!
//! [`Family`] enumerates the families the paper's proofs use; `log₂ g(n)` is
//! computed exactly and compared with the whiteboard capacity `n·f(n)`.

use wb_math::counting::{self, CapacityVerdict, MessageRegime};

/// The graph families appearing in the paper's counting arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// All labeled graphs on `n` nodes (`2^C(n,2)`).
    AllGraphs,
    /// Bipartite graphs with fixed halves `{v_1..v_{n/2}} ∪ {v_{n/2+1}..v_n}`
    /// — Theorem 3's family (`2^{(n/2)·⌈n/2⌉}`).
    BipartiteFixedHalves,
    /// Even-odd-bipartite graphs — Theorem 8's family (`2^{⌊n/2⌋·⌈n/2⌉}`).
    EvenOddBipartite,
    /// Labeled trees (Cayley: `n^{n−2}`) — the family §3.1 reconstructs, whose
    /// size is small enough that `O(log n)` messages suffice.
    LabeledTrees,
    /// Graphs whose edges all lie among the first `f` nodes — Theorem 9's
    /// family (`2^C(f,2)`).
    PrefixOnly(u64),
}

impl Family {
    /// Exact `log₂` of the family's cardinality at size `n`.
    pub fn log2_count(&self, n: u64) -> u64 {
        match *self {
            Family::AllGraphs => counting::log2_all_graphs(n),
            Family::BipartiteFixedHalves => counting::log2_bipartite_fixed(n / 2, n.div_ceil(2)),
            Family::EvenOddBipartite => counting::log2_even_odd_bipartite(n),
            Family::LabeledTrees => counting::labeled_trees(n).bits(),
            Family::PrefixOnly(f) => counting::log2_all_graphs(f.min(n)),
        }
    }

    /// Display name for reports.
    pub fn name(&self) -> String {
        match self {
            Family::AllGraphs => "all graphs".into(),
            Family::BipartiteFixedHalves => "bipartite (fixed halves)".into(),
            Family::EvenOddBipartite => "even-odd bipartite".into(),
            Family::LabeledTrees => "labeled trees".into(),
            Family::PrefixOnly(f) => format!("edges among first {f}"),
        }
    }
}

/// `log₂ |family|` at size `n` (convenience form).
pub fn family_log2_bits(family: Family, n: u64) -> u64 {
    family.log2_count(n)
}

/// Evaluate Lemma 3 for `(family, n, regime)`.
pub fn verdict(family: Family, n: u64, regime: MessageRegime) -> CapacityVerdict {
    counting::lemma3(family.log2_count(n), n, regime.bits(n))
}

/// One row of the capacity-sweep tables printed by the experiment binaries.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Number of nodes.
    pub n: u64,
    /// Family under consideration.
    pub family: Family,
    /// Message-size regime.
    pub regime: MessageRegime,
    /// The two sides of the Lemma 3 inequality.
    pub verdict: CapacityVerdict,
}

/// Cross product of families × regimes × sizes.
pub fn sweep(families: &[Family], regimes: &[MessageRegime], ns: &[u64]) -> Vec<SweepRow> {
    let mut rows = Vec::with_capacity(families.len() * regimes.len() * ns.len());
    for &family in families {
        for &regime in regimes {
            for &n in ns {
                rows.push(SweepRow {
                    n,
                    family,
                    regime,
                    verdict: verdict(family, n, regime),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_family_infeasible_at_log_n() {
        // TRIANGLE ∉ SIMASYNC[o(n)]: the bipartite family outgrows any
        // polylogarithmic whiteboard.
        for n in [512u64, 2048, 1 << 14] {
            assert!(verdict(
                Family::BipartiteFixedHalves,
                n,
                MessageRegime::LogN { c: 8 }
            )
            .impossible());
        }
    }

    #[test]
    fn theorem8_family_infeasible_at_log_n() {
        for n in [512u64, 2048] {
            assert!(
                verdict(Family::EvenOddBipartite, n, MessageRegime::LogN { c: 8 }).impossible()
            );
        }
    }

    #[test]
    fn trees_feasible_at_log_n() {
        // Consistent with Theorem 2: the forest family is reconstructible.
        for n in [64u64, 1024, 1 << 16] {
            assert!(!verdict(Family::LabeledTrees, n, MessageRegime::LogN { c: 4 }).impossible());
        }
    }

    #[test]
    fn everything_feasible_with_linear_messages() {
        for n in [16u64, 256, 4096] {
            for family in [
                Family::AllGraphs,
                Family::BipartiteFixedHalves,
                Family::EvenOddBipartite,
            ] {
                assert!(
                    !verdict(family, n, MessageRegime::Linear).impossible(),
                    "{family:?} n={n}"
                );
            }
        }
    }

    #[test]
    fn crossover_exists_for_sqrt_regime() {
        // √n-bit messages: capacity n^1.5 loses to (n/2)² once n is large.
        let small = verdict(Family::BipartiteFixedHalves, 16, MessageRegime::SqrtN);
        let large = verdict(Family::BipartiteFixedHalves, 1 << 16, MessageRegime::SqrtN);
        assert!(!small.impossible());
        assert!(large.impossible());
    }

    #[test]
    fn prefix_family_fires_only_for_large_f() {
        // Theorem 9's counting: with f = n the family beats n·g for g = o(n);
        // with f = √n it does not — the separation needs the linear regime.
        let n = 1 << 12;
        assert!(verdict(Family::PrefixOnly(n), n, MessageRegime::LogN { c: 4 }).impossible());
        assert!(!verdict(Family::PrefixOnly(64), n, MessageRegime::LogN { c: 4 }).impossible());
    }

    #[test]
    fn sweep_produces_full_grid() {
        let rows = sweep(
            &[Family::AllGraphs, Family::LabeledTrees],
            &[MessageRegime::LogN { c: 2 }, MessageRegime::Linear],
            &[8, 64],
        );
        assert_eq!(rows.len(), 8);
    }
}
