//! Theorem 9, both halves: message size and synchronization power are
//! orthogonal resources.
//!
//! Positive half (in `wb-core`): `SUBGRAPH_f ∈ PSIMASYNC[f(n)]`. Negative
//! half: a `SYNC[g]` protocol for SUBGRAPH_f would solve BUILD on the family
//! of graphs whose edges lie among `{v_1..v_{f(n)}}` (pad the remaining nodes
//! as isolated); [`PrefixBuild`] is that argument as a runnable protocol
//! wrapper, and [`separation`] is the Lemma 3 counting that rules out
//! `g = o(f)` whenever `f(n)² ≫ n·g(n)` (the regime the paper's proof
//! appeals to — at `f(n) = Θ(n)` it fires for every `g = o(n)`; for strongly
//! sublinear `f` the stated counting is *insufficient*, which EXPERIMENTS.md
//! records honestly).

use crate::lemma3::Family;
use wb_core::SubgraphPrefix;
use wb_graph::Graph;
use wb_math::counting::{lemma3, CapacityVerdict};
use wb_runtime::{LocalView, Model, Protocol, Whiteboard};

/// BUILD on the "edges only among the first `f` nodes" family, implemented by
/// running SUBGRAPH_f and padding the output with isolated nodes — the exact
/// protocol Theorem 9's impossibility argument constructs.
#[derive(Clone, Debug)]
pub struct PrefixBuild {
    inner: SubgraphPrefix,
}

impl PrefixBuild {
    /// BUILD for graphs whose edges lie among `{v_1..v_f}`.
    pub fn new(f: usize) -> Self {
        PrefixBuild {
            inner: SubgraphPrefix::new(f),
        }
    }
}

impl Protocol for PrefixBuild {
    type Node = <SubgraphPrefix as Protocol>::Node;
    type Output = Graph;

    fn model(&self) -> Model {
        self.inner.model()
    }

    fn budget_bits(&self, n: usize) -> u32 {
        self.inner.budget_bits(n)
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        self.inner.spawn(view)
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Graph {
        let prefix = self.inner.output(n, board);
        // Pad back to n nodes; the family promises no other edges exist.
        let mut g = Graph::empty(n);
        for (u, v) in prefix.edges() {
            g.add_edge(u, v);
        }
        g
    }
}

/// The Theorem 9 counting at one point: does BUILD on the prefix family
/// with `g_bits`-bit messages contradict Lemma 3?
pub fn separation(n: u64, f: u64, g_bits: u64) -> CapacityVerdict {
    lemma3(Family::PrefixOnly(f).log2_count(n), n, g_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::generators;
    use wb_math::counting::MessageRegime;
    use wb_runtime::{run, Outcome, RandomAdversary};

    fn prefix_family_instance(n: usize, f: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = generators::gnp(f, 0.5, &mut rng);
        let mut g = Graph::empty(n);
        for (u, v) in dense.edges() {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn prefix_build_reconstructs_family_members() {
        for (n, f) in [(20usize, 5usize), (30, 10), (12, 12)] {
            let g = prefix_family_instance(n, f, (n + f) as u64);
            let p = PrefixBuild::new(f);
            let report = run(&p, &g, &mut RandomAdversary::new(3));
            match report.outcome {
                Outcome::Success(h) => assert_eq!(h, g, "n={n} f={f}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn separation_fires_in_the_linear_regime() {
        // f(n) = n: any g = o(n) is ruled out.
        for n in [256u64, 4096] {
            let g_bits = MessageRegime::LogN { c: 8 }.bits(n);
            assert!(separation(n, n, g_bits).impossible(), "n={n}");
            let g_sqrt = MessageRegime::SqrtN.bits(n);
            assert!(separation(n, n, g_sqrt).impossible(), "n={n} sqrt");
        }
    }

    #[test]
    fn separation_does_not_fire_for_sublinear_f() {
        // Honest negative: with f = √n the counting bound C(f,2) ≈ n/2 is
        // below the n·g capacity for any g ≥ 1 — the paper's argument needs
        // larger f.
        let n = 1u64 << 14;
        let f = MessageRegime::SqrtN.bits(n);
        assert!(!separation(n, f, 1).impossible());
    }

    #[test]
    fn positive_side_budget_is_f_not_n() {
        let n = 100usize;
        let p = PrefixBuild::new(10);
        assert!(p.budget_bits(n) <= 10 + 7 + 1);
    }
}
