//! Theorem 6, executable: a `SIMASYNC` rooted-MIS oracle yields a `SIMASYNC`
//! BUILD protocol for **arbitrary** graphs.
//!
//! The gadget `G^{(x)}_{i,j}` adds a node `x = v_{n+1}` adjacent to everyone
//! except `v_i` and `v_j`. Then `{x, v_i, v_j}` is the unique maximal
//! independent set containing `x` iff `{v_i, v_j} ∉ E`. Since a SIMASYNC
//! node's message depends only on its neighborhood, node `v_k` sends only two
//! distinct messages across all gadgets — `m_k` ("x is not my neighbor",
//! `k ∈ {i,j}`) and `m'_k` ("x is my neighbor") — so the transformed protocol
//! writes the pair and the referee replays the oracle's output function on
//! every `G^{(x)}_{s,t}`. BUILD on all graphs from `O(n·f(n))` board bits
//! contradicts Lemma 3, hence MIS ∉ `PSIMASYNC[o(n)]`.

use wb_graph::{Graph, NodeId};
use wb_math::{bits_for, id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Build the Theorem 6 gadget `G^{(x)}_{i,j}` (x = `n+1`, non-adjacent to
/// `i`, `j`).
pub fn thm6_gadget(g: &Graph, i: NodeId, j: NodeId) -> Graph {
    assert!(i != j);
    let attach: Vec<NodeId> = (1..=g.n() as NodeId)
        .filter(|&v| v != i && v != j)
        .collect();
    g.with_extra_node(&attach)
}

/// The Theorem 6 transformation: BUILD from a rooted-MIS oracle factory.
///
/// `make_oracle(root)` must return a `SIMASYNC` protocol whose output on any
/// graph containing `root` is a maximal independent set containing `root`.
#[derive(Clone, Debug)]
pub struct MisToBuild<P, F> {
    make_oracle: F,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> MisToBuild<P, F>
where
    P: Protocol<Output = Vec<NodeId>>,
    F: Fn(NodeId) -> P,
{
    /// Wrap a rooted-MIS oracle factory.
    pub fn new(make_oracle: F) -> Self {
        let probe = make_oracle(1);
        assert_eq!(
            probe.model(),
            Model::SimAsync,
            "Theorem 6 transforms SIMASYNC oracles"
        );
        MisToBuild {
            make_oracle,
            _marker: std::marker::PhantomData,
        }
    }

    fn oracle_for(&self, n: usize) -> P {
        (self.make_oracle)((n + 1) as NodeId)
    }

    fn len_field_bits(&self, n: usize) -> u32 {
        bits_for(self.oracle_for(n).budget_bits(n + 1) as u64)
    }
}

/// Transformed-protocol node: writes `(ID, m_k, m'_k)`.
#[derive(Clone)]
pub struct MisPairNode<P> {
    oracle: P,
    len_field: u32,
}

impl<P> Node for MisPairNode<P>
where
    P: Protocol<Output = Vec<NodeId>> + Clone,
{
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        unreachable!("SIMASYNC nodes are never shown the board");
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let n1 = view.n + 1;
        // m_k: x not adjacent (k is one of the two excluded nodes).
        let plain = LocalView {
            id: view.id,
            n: n1,
            neighbors: view.neighbors.clone(),
        };
        // m'_k: x adjacent.
        let mut with_x = view.neighbors.clone();
        with_x.push(n1 as NodeId);
        let attached = LocalView {
            id: view.id,
            n: n1,
            neighbors: with_x,
        };
        let m1 = self.oracle.spawn(&plain).compose(&plain);
        let m2 = self.oracle.spawn(&attached).compose(&attached);
        let mut w = BitWriter::new();
        w.write_bits(view.id as u64, id_bits(view.n));
        w.write_bits(m1.len() as u64, self.len_field);
        w.write_bitvec(&m1);
        w.write_bits(m2.len() as u64, self.len_field);
        w.write_bitvec(&m2);
        w.finish()
    }
}

impl<P, F> Protocol for MisToBuild<P, F>
where
    P: Protocol<Output = Vec<NodeId>> + Clone,
    F: Fn(NodeId) -> P,
{
    type Node = MisPairNode<P>;
    type Output = Graph;

    fn model(&self) -> Model {
        Model::SimAsync
    }

    fn budget_bits(&self, n: usize) -> u32 {
        id_bits(n) + 2 * (self.len_field_bits(n) + self.oracle_for(n).budget_bits(n + 1))
    }

    fn spawn(&self, view: &LocalView) -> Self::Node {
        MisPairNode {
            oracle: self.oracle_for(view.n),
            len_field: self.len_field_bits(view.n),
        }
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Graph {
        let len_field = self.len_field_bits(n);
        let oracle = self.oracle_for(n);
        let mut pairs: Vec<Option<(BitVec, BitVec)>> = vec![None; n];
        for e in board.entries() {
            let mut r = BitReader::new(&e.msg);
            let id = r.read_bits(id_bits(n)) as usize;
            let l1 = r.read_bits(len_field) as usize;
            let m1 = r.read_bitvec(l1);
            let l2 = r.read_bits(len_field) as usize;
            let m2 = r.read_bitvec(l2);
            pairs[id - 1] = Some((m1, m2));
        }
        let pairs: Vec<(BitVec, BitVec)> = pairs
            .into_iter()
            .map(|p| p.expect("missing message"))
            .collect();

        let n1 = n + 1;
        let x = n1 as NodeId;
        let mut g = Graph::empty(n);
        for s in 1..=n as NodeId {
            for t in (s + 1)..=n as NodeId {
                // x's own message in G^{(x)}_{s,t}: adjacent to all but s, t.
                let x_view = LocalView {
                    id: x,
                    n: n1,
                    neighbors: (1..=n as NodeId).filter(|&v| v != s && v != t).collect(),
                };
                let x_msg = oracle.spawn(&x_view).compose(&x_view);
                let board = Whiteboard::from_messages(
                    (1..=n as NodeId)
                        .map(|i| {
                            let (m1, m2) = &pairs[i as usize - 1];
                            (
                                i,
                                if i == s || i == t {
                                    m1.clone()
                                } else {
                                    m2.clone()
                                },
                            )
                        })
                        .chain(std::iter::once((x, x_msg))),
                );
                let mis = oracle.output(n1, &board);
                // {s,t} ∉ E  ⟺  the unique MIS containing x is {x, s, t}.
                if mis != vec![s, t, x] {
                    g.add_edge(s, t);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::MisFullRowOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wb_graph::{checks, generators};
    use wb_runtime::{run, Outcome, RandomAdversary};

    #[test]
    fn gadget_mis_uniqueness_property() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(7, 0.4, &mut rng);
        let x = 8 as NodeId;
        for i in 1..=7 {
            for j in (i + 1)..=7 {
                let gadget = thm6_gadget(&g, i, j);
                // {x, i, j} is independent in the gadget iff {i,j} ∉ E.
                let candidate = [x, i, j];
                assert_eq!(
                    checks::is_independent_set(&gadget, &candidate),
                    !g.has_edge(i, j),
                    "i={i} j={j}"
                );
                if !g.has_edge(i, j) {
                    assert!(checks::is_rooted_mis(&gadget, &candidate, x));
                }
            }
        }
    }

    #[test]
    fn transformation_rebuilds_arbitrary_graphs() {
        // Theorem 6 reconstructs *all* graphs — not just bipartite ones.
        let mut rng = StdRng::seed_from_u64(5);
        let t = MisToBuild::new(MisFullRowOracle::new);
        for p_edge in [0.0, 0.3, 0.7, 1.0] {
            let g = generators::gnp(8, p_edge, &mut rng);
            let report = run(&t, &g, &mut RandomAdversary::new((p_edge * 100.0) as u64));
            match report.outcome {
                Outcome::Success(h) => assert_eq!(h, g, "p={p_edge}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn transformation_handles_triangles_unlike_theorem3() {
        let g = generators::clique(5);
        let t = MisToBuild::new(MisFullRowOracle::new);
        let report = run(&t, &g, &mut RandomAdversary::new(1));
        assert_eq!(report.outcome, Outcome::Success(g));
    }
}
