//! Schedule-space explorer throughput: the clone-free worklist (undo-log
//! branching + streaming fingerprint dedup) vs exact-snapshot dedup vs the
//! naive factorial DFS, sequential vs `par_map_vec` fan-out.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wb_core::{BuildDegenerate, MisGreedy};
use wb_graph::generators;
use wb_runtime::exhaustive::{explore, explore_parallel, for_each_schedule, ExploreConfig};

fn bench_explore_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_vs_naive");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // SIMASYNC BUILD on a 6-path: 1957-node naive tree vs 64-state DAG.
    let g = generators::path(6);
    let build = BuildDegenerate::new(1);
    group.bench_function("naive_dfs_build_path6", |b| {
        b.iter(|| {
            let mut leaves = 0u64;
            let r = for_each_schedule(&build, black_box(&g), 1_000_000, |_| leaves += 1);
            black_box((r.states, leaves))
        })
    });
    group.bench_function("explorer_build_path6", |b| {
        b.iter(|| {
            black_box(
                explore(&build, black_box(&g), &ExploreConfig::default(), |_| true).distinct_states,
            )
        })
    });
    group.bench_function("explorer_exact_build_path6", |b| {
        let cfg = ExploreConfig::default().exact();
        b.iter(|| black_box(explore(&build, black_box(&g), &cfg, |_| true).distinct_states))
    });
    group.bench_function("explorer_par_build_path6", |b| {
        b.iter(|| {
            black_box(
                explore_parallel(&build, black_box(&g), &ExploreConfig::default(), |_| true)
                    .distinct_states,
            )
        })
    });

    // SIMSYNC MIS on a 6-cycle: board content varies, partial dedup.
    let cyc = generators::cycle(6);
    let mis = MisGreedy::new(1);
    group.bench_function("naive_dfs_mis_cycle6", |b| {
        b.iter(|| {
            let mut leaves = 0u64;
            let r = for_each_schedule(&mis, black_box(&cyc), 1_000_000, |_| leaves += 1);
            black_box((r.states, leaves))
        })
    });
    group.bench_function("explorer_mis_cycle6", |b| {
        b.iter(|| {
            black_box(
                explore(&mis, black_box(&cyc), &ExploreConfig::default(), |_| true).distinct_states,
            )
        })
    });
    group.bench_function("explorer_exact_mis_cycle6", |b| {
        let cfg = ExploreConfig::default().exact();
        b.iter(|| black_box(explore(&mis, black_box(&cyc), &cfg, |_| true).distinct_states))
    });
    group.finish();

    // The probe itself: streaming fingerprint vs full snapshot, mid-walk.
    let mut group = c.benchmark_group("dedup_probe");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let g7 = generators::cycle(7);
    let mut engine = wb_runtime::Engine::new(&mis, &g7);
    engine.activation_phase();
    for pick in [1, 3, 5] {
        engine.step(pick);
        engine.activation_phase();
    }
    group.bench_function("canonical_fingerprint_mis7", |b| {
        b.iter(|| black_box(engine.canonical_fingerprint()))
    });
    group.bench_function("canonical_state_mis7", |b| {
        b.iter(|| black_box(engine.canonical_state()))
    });
    group.finish();
}

criterion_group!(benches, bench_explore_vs_naive);
criterion_main!(benches);
