//! Cost of the executable reductions: the Theorem 3/6 transformations run a
//! full oracle simulation per node pair, so the output functions are
//! Θ(n²·T_oracle) — measured here to document the referee-side price of the
//! lower-bound machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use wb_core::TriangleFullRow;
use wb_graph::generators;
use wb_reductions::eobbfs_to_build::EobBfsToBuild;
use wb_reductions::mis_to_build::MisToBuild;
use wb_reductions::oracles::{BfsFullRowOracle, MisFullRowOracle};
use wb_reductions::triangle_to_build::TriangleToBuild;
use wb_runtime::{run, RandomAdversary};

fn bench_triangle_to_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_thm3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[8usize, 12, 16] {
        let g = generators::bipartite_fixed(n / 2, n - n / 2, 0.4, &mut rng);
        let t = TriangleToBuild::new(TriangleFullRow);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| run(&t, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

fn bench_mis_to_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_thm6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[6usize, 8, 10] {
        let g = generators::gnp(n, 0.5, &mut rng);
        let t = MisToBuild::new(MisFullRowOracle::new);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| run(&t, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

fn bench_eobbfs_to_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_thm8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(3);
    for &hn in &[6usize, 8, 10] {
        let h = generators::even_odd_bipartite_connected(hn, 0.4, &mut rng);
        let t = EobBfsToBuild::new(BfsFullRowOracle);
        group.bench_function(format!("hidden_n{hn}"), |b| {
            b.iter(|| run(&t, black_box(&h), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_triangle_to_build,
    bench_mis_to_build,
    bench_eobbfs_to_build
);
criterion_main!(benches);
