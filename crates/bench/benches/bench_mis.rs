//! E4: the greedy SIMSYNC rooted-MIS protocol — full executions across sizes
//! and densities.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wb_bench::workloads::Workload;
use wb_core::MisGreedy;
use wb_runtime::{run, RandomAdversary};

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_greedy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &(n, d) in &[(100usize, 4usize), (400, 4), (1000, 4), (1000, 20)] {
        let g = Workload::GnpAvgDeg(d).generate(n, wb_bench::SEED);
        let p = MisGreedy::new(1);
        group.bench_function(format!("n{n}_deg{d}"), |b| {
            b.iter(|| run(&p, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
