//! E2 (encode side): power-sum neighborhood encoding cost — the per-node
//! local computation of the §3.3 protocol (Lemma 1 claims O(n) local time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wb_math::powersum::{add_neighbor, power_sums, remove_neighbor};

fn neighbors(n: u32, degree: u32) -> Vec<u32> {
    // Deterministic spread-out neighborhood.
    (0..degree)
        .map(|i| (i * (n / degree.max(1)).max(1)) % n + 1)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("powersum_encode");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    for &(n, deg, k) in &[
        (1_000u32, 50u32, 2usize),
        (10_000, 200, 3),
        (100_000, 500, 5),
    ] {
        let ids = neighbors(n, deg);
        group.bench_with_input(
            BenchmarkId::new(format!("n{n}_k{k}"), deg),
            &ids,
            |b, ids| b.iter(|| power_sums(black_box(ids), k)),
        );
    }
    group.finish();
}

fn bench_incremental_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("powersum_update");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));
    for &k in &[1usize, 3, 5] {
        let base = power_sums(&neighbors(10_000, 100), k);
        group.bench_function(format!("add_remove_k{k}"), |b| {
            b.iter(|| {
                let mut sums = base.clone();
                add_neighbor(&mut sums, black_box(7777));
                remove_neighbor(&mut sums, black_box(7777));
                sums
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_incremental_update);
criterion_main!(benches);
