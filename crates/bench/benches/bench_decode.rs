//! E2 (decode side): Lemma 2's two decoders — the paper's literal `O(n^k)`
//! lookup table versus the Newton-identities integer-root decoder — agreement
//! is tested in `wb-math`; here we measure the cost crossover.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wb_math::powersum::{power_sums, LookupDecoder, NewtonDecoder};

fn bench_newton(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_newton");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    for &(n, k) in &[(100usize, 3usize), (1_000, 3), (10_000, 3), (1_000, 5)] {
        let set: Vec<u32> = (1..=k as u32)
            .map(|i| i * (n as u32 / (k as u32 + 1)))
            .collect();
        let sums = power_sums(&set, k);
        let dec = NewtonDecoder::new(n);
        group.bench_function(format!("n{n}_k{k}"), |b| {
            b.iter(|| dec.decode(black_box(&sums), k).unwrap())
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_lookup");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));
    // Small domain only: the table is O(n^k).
    let (n, k) = (60usize, 3usize);
    let dec = LookupDecoder::new(n, k);
    let set = vec![7u32, 23, 59];
    let sums = power_sums(&set, k);
    group.bench_function(format!("n{n}_k{k}_table{}", dec.len()), |b| {
        b.iter(|| dec.decode(black_box(&sums), 3).unwrap())
    });
    group.finish();
}

fn bench_table_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_lookup_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(100));
    group.bench_function("n40_k3", |b| {
        b.iter(|| LookupDecoder::new(black_box(40), 3).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_newton,
    bench_lookup,
    bench_table_construction
);
criterion_main!(benches);
