//! E7/E10: the layer-certified BFS protocols — SYNC on arbitrary graphs,
//! ASYNC on even-odd-bipartite graphs — full executions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wb_bench::workloads::Workload;
use wb_core::{EobBfs, SyncBfs};
use wb_runtime::{run, RandomAdversary};

fn bench_sync_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_sync");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &(n, d) in &[(100usize, 4usize), (400, 4), (400, 12), (1000, 4)] {
        let g = Workload::GnpAvgDeg(d).generate(n, wb_bench::SEED);
        group.bench_function(format!("n{n}_deg{d}"), |b| {
            b.iter(|| run(&SyncBfs, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

fn bench_eob_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_eob_async");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &n in &[101usize, 401, 1001] {
        let g = Workload::EobConnected.generate(n, wb_bench::SEED);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| run(&EobBfs, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync_bfs, bench_eob_bfs);
criterion_main!(benches);
