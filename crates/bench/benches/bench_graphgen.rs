//! Workload-generator throughput (the substrate feeding every experiment).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use wb_graph::{checks, generators};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphgen");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("tree_n10000", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            generators::random_tree(black_box(10_000), &mut rng)
        })
    });
    group.bench_function("k_degenerate_n2000_k5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            generators::k_degenerate(black_box(2_000), 5, true, &mut rng)
        })
    });
    group.bench_function("gnp_n1000_p01", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            generators::gnp(black_box(1_000), 0.01, &mut rng)
        })
    });
    group.bench_function("eob_connected_n2001", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            generators::even_odd_bipartite_connected(black_box(2_001), 0.005, &mut rng)
        })
    });
    group.finish();
}

fn bench_reference_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference_oracles");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::gnp(2_000, 0.005, &mut rng);
    group.bench_function("bfs_forest_n2000", |b| {
        b.iter(|| checks::bfs_forest(black_box(&g)))
    });
    group.bench_function("degeneracy_n2000", |b| {
        b.iter(|| checks::degeneracy(black_box(&g)))
    });
    group.bench_function("triangle_count_n2000", |b| {
        b.iter(|| checks::triangle_count(black_box(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_reference_oracles);
criterion_main!(benches);
