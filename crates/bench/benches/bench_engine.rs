//! Engine-substrate throughput: rounds per second of the whiteboard machine
//! itself (probe protocol = minimal per-node work), and the exhaustive
//! model-checking executor's schedule throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wb_bench::probes::{Activation, Probe};
use wb_graph::generators;
use wb_runtime::exhaustive::for_each_schedule;
use wb_runtime::{run, Model, RandomAdversary};

fn bench_engine_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rounds");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &n in &[100usize, 1000, 4000] {
        let g = generators::path(n);
        for model in [Model::SimAsync, Model::SimSync, Model::Sync] {
            let p = Probe::new(model, Activation::Immediate);
            group.bench_function(format!("{model}_n{n}"), |b| {
                b.iter(|| run(&p, black_box(&g), &mut RandomAdversary::new(1)))
            });
        }
    }
    group.finish();
}

fn bench_exhaustive_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_schedules");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &n in &[5usize, 6] {
        let g = generators::path(n);
        let p = Probe::new(Model::SimSync, Activation::Immediate);
        group.bench_function(format!("n{n}_factorial_schedules"), |b| {
            b.iter(|| {
                let mut count = 0u64;
                for_each_schedule(&p, black_box(&g), 1_000_000, |_| count += 1);
                count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_rounds, bench_exhaustive_executor);
criterion_main!(benches);
