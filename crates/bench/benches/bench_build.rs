//! E1/E13: end-to-end BUILD runs — whiteboard fill plus Algorithm 1's O(n²)
//! reconstruction — across degeneracy bounds, versus the naive baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use wb_bench::workloads::Workload;
use wb_core::{BuildDegenerate, NaiveBuild};
use wb_runtime::{run, Protocol, RandomAdversary};

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_full_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &(n, k) in &[(100usize, 1usize), (100, 3), (400, 3), (400, 5)] {
        let g = Workload::KDegenerate(k).generate(n, wb_bench::SEED);
        let p = BuildDegenerate::new(k);
        group.bench_function(format!("n{n}_k{k}"), |b| {
            b.iter(|| run(&p, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

fn bench_decode_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_output_fn");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &(n, k) in &[(200usize, 2usize), (400, 4)] {
        let g = Workload::KDegenerate(k).generate(n, wb_bench::SEED);
        let p = BuildDegenerate::new(k);
        let report = run(&p, &g, &mut RandomAdversary::new(1));
        group.bench_function(format!("n{n}_k{k}"), |b| {
            b.iter(|| p.output(n, black_box(&report.board)).unwrap())
        });
    }
    group.finish();
}

fn bench_mixed_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_mixed_full_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &(n, k) in &[(100usize, 2usize), (200, 2)] {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(wb_bench::SEED);
        // Dense complement: the workload only the mixed protocol handles.
        let g = wb_graph::generators::k_degenerate(n, k, true, &mut rng).complement();
        let p = wb_core::BuildMixed::new(k);
        group.bench_function(format!("dense_complement_n{n}_k{k}"), |b| {
            b.iter(|| run(&p, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

fn bench_naive_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_naive_baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &n in &[100usize, 400] {
        let g = Workload::KDegenerate(3).generate(n, wb_bench::SEED);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| run(&NaiveBuild, black_box(&g), &mut RandomAdversary::new(1)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_run,
    bench_decode_only,
    bench_mixed_build,
    bench_naive_baseline
);
criterion_main!(benches);
