//! Probe protocols making the four models' semantics *observable* (Table 1).
//!
//! The probe message is `(ID, number of messages the writer had seen when its
//! message was fixed)`. Where that count is taken is exactly what
//! distinguishes the models:
//!
//! - `SIMASYNC` — fixed before any observation: all zeros;
//! - `SIMSYNC` — fixed at write time: `0, 1, 2, …` in write order;
//! - `ASYNC` (immediate activation) — frozen at activation: all zeros even
//!   though writes happen much later;
//! - `SYNC` (immediate activation) — identical to `SIMSYNC`;
//! - `ASYNC`/`SYNC` with a gated activation (here: activate once your ID−1
//!   messages are up) — shows free protocols steering the write order.

use wb_graph::NodeId;
use wb_math::{id_bits, BitReader, BitVec, BitWriter};
use wb_runtime::{LocalView, Model, Node, Protocol, Whiteboard};

/// Activation policies for the probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Raise the hand in round 1.
    Immediate,
    /// Raise the hand once `ID − 1` messages are on the board (forces the
    /// identity write order).
    Sequential,
}

/// The probe protocol: model × activation policy.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    model: Model,
    activation: Activation,
}

impl Probe {
    /// A probe for `model` with the given activation policy (ignored by the
    /// simultaneous models).
    pub fn new(model: Model, activation: Activation) -> Self {
        Probe { model, activation }
    }
}

/// Probe node: counts observed messages.
#[derive(Clone)]
pub struct ProbeNode {
    id: NodeId,
    seen: u64,
    activation: Activation,
}

impl Node for ProbeNode {
    fn observe(&mut self, _v: &LocalView, _s: usize, _w: NodeId, _m: &BitVec) {
        self.seen += 1;
    }

    fn wants_to_activate(&mut self, _view: &LocalView) -> bool {
        match self.activation {
            Activation::Immediate => true,
            Activation::Sequential => self.seen == self.id as u64 - 1,
        }
    }

    fn compose(&mut self, view: &LocalView) -> BitVec {
        let mut w = BitWriter::new();
        w.write_bits(self.id as u64, id_bits(view.n));
        w.write_bits(self.seen, id_bits(view.n) + 1);
        w.finish()
    }
}

impl Protocol for Probe {
    type Node = ProbeNode;
    type Output = Vec<(NodeId, u64)>;

    fn model(&self) -> Model {
        self.model
    }

    fn budget_bits(&self, n: usize) -> u32 {
        2 * id_bits(n) + 1
    }

    fn spawn(&self, view: &LocalView) -> ProbeNode {
        ProbeNode {
            id: view.id,
            seen: 0,
            activation: self.activation,
        }
    }

    fn output(&self, n: usize, board: &Whiteboard) -> Self::Output {
        board
            .entries()
            .iter()
            .map(|e| {
                let mut r = BitReader::new(&e.msg);
                let id = r.read_bits(id_bits(n)) as NodeId;
                let seen = r.read_bits(id_bits(n) + 1);
                (id, seen)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_graph::generators;
    use wb_runtime::{run, MaxIdAdversary, Outcome};

    #[test]
    fn probes_expose_model_semantics() {
        let g = generators::path(4);
        let freeze_counts = |m: Model, a: Activation| -> Vec<u64> {
            let report = run(&Probe::new(m, a), &g, &mut MaxIdAdversary);
            match report.outcome {
                Outcome::Success(rows) => rows.into_iter().map(|(_, s)| s).collect(),
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(
            freeze_counts(Model::SimAsync, Activation::Immediate),
            vec![0, 0, 0, 0]
        );
        assert_eq!(
            freeze_counts(Model::SimSync, Activation::Immediate),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            freeze_counts(Model::Async, Activation::Immediate),
            vec![0, 0, 0, 0]
        );
        assert_eq!(
            freeze_counts(Model::Sync, Activation::Immediate),
            vec![0, 1, 2, 3]
        );
        // Sequential gating forces identity order regardless of the max-ID
        // adversary.
        let report = run(
            &Probe::new(Model::Sync, Activation::Sequential),
            &g,
            &mut MaxIdAdversary,
        );
        assert_eq!(report.write_order, vec![1, 2, 3, 4]);
    }
}
