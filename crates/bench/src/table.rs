//! Tiny fixed-width table printer for the experiment binaries (buffered and
//! locked stdout, per the I/O guidance in the project's performance guides).

use std::io::Write;

/// A simple left-padded table with a header row.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Start a table and print the header.
    pub fn new(headers: &[&str], widths: &[usize]) -> Self {
        assert_eq!(headers.len(), widths.len());
        let t = TablePrinter {
            widths: widths.to_vec(),
        };
        t.row(headers);
        t.rule();
        t
    }

    /// Print one row (cells are right-aligned into the column widths).
    pub fn row<S: AsRef<str>>(&self, cells: &[S]) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        for (cell, w) in cells.iter().zip(&self.widths) {
            let _ = write!(lock, " {:>width$}", cell.as_ref(), width = w);
        }
        let _ = writeln!(lock);
    }

    /// Print a horizontal rule.
    pub fn rule(&self) {
        let total: usize = self.widths.iter().map(|w| w + 1).sum();
        println!("{}", "-".repeat(total));
    }
}

/// Section banner for experiment output.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printer_does_not_panic() {
        let t = TablePrinter::new(&["a", "b"], &[6, 10]);
        t.row(&["1", "x"]);
        t.row(&[format!("{}", 42), "y".to_string()]);
        t.rule();
        banner("done");
    }

    #[test]
    #[should_panic]
    fn mismatched_headers_panic() {
        TablePrinter::new(&["a"], &[3, 4]);
    }
}
