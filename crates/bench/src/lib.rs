//! Shared infrastructure for the experiment binaries and Criterion benches.
//!
//! Each binary regenerates one table or figure of the paper (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for recorded outputs):
//!
//! | binary | paper item |
//! |---|---|
//! | `table1_models` | Table 1 — the four models' observable semantics |
//! | `table2_classification` | Table 2 — problem × model classification |
//! | `fig1_triangle_gadget` | Figure 1 — `G'_{s,t}` reduction |
//! | `fig2_eobbfs_gadget` | Figure 2 — `G_i` reduction |
//! | `exp_build_degenerate` | Thm 2 + Lemma 1 — BUILD message-size scaling |
//! | `exp_lower_bounds` | Thms 3/6/8 + Lemma 3 — capacity curves |
//! | `exp_mis` | Thm 5 — MIS validity under adversary sweeps |
//! | `exp_two_cliques` | §5.1 + Open Pb 4 — deterministic & randomized |
//! | `exp_bfs` | Thms 7/10 + Cor 4 + Open Pb 3 ablation |
//! | `exp_subgraph` | Thm 9 — orthogonality of message size & synchrony |
//! | `exp_hierarchy` | Thm 4 — the lattice via promotion adapters |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wb_math::json;

pub mod certify;
pub mod probes;
pub mod table;
pub mod workloads;

/// Fixed seed base so every experiment is reproducible.
pub const SEED: u64 = 0x5_11A5_2012;
