//! Canonical workloads shared by the experiment binaries and benches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wb_graph::{generators, Graph};

/// A named graph family generator at one size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Random tree (degeneracy 1).
    Tree,
    /// Random forest (80% edge retention).
    Forest,
    /// Random k-tree.
    KTree(usize),
    /// Random graph of degeneracy ≤ k (exact peak).
    KDegenerate(usize),
    /// Degeneracy-5 graphs, the planar bound the paper cites.
    PlanarLike,
    /// Erdős–Rényi with expected average degree `d`.
    GnpAvgDeg(usize),
    /// Connected even-odd-bipartite.
    EobConnected,
    /// Two disjoint cliques on n nodes (n even).
    TwoCliques,
    /// Connected (n/2−1)-regular impostor.
    Impostor,
}

impl Workload {
    /// Human-readable label.
    pub fn name(&self) -> String {
        match self {
            Workload::Tree => "tree".into(),
            Workload::Forest => "forest".into(),
            Workload::KTree(k) => format!("{k}-tree"),
            Workload::KDegenerate(k) => format!("{k}-degenerate"),
            Workload::PlanarLike => "planar-like (5-degenerate)".into(),
            Workload::GnpAvgDeg(d) => format!("G(n,p) deg≈{d}"),
            Workload::EobConnected => "EOB connected".into(),
            Workload::TwoCliques => "two cliques".into(),
            Workload::Impostor => "regular impostor".into(),
        }
    }

    /// Generate an instance of `n` nodes with a deterministic seed.
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
        match *self {
            Workload::Tree => generators::random_tree(n, &mut rng),
            Workload::Forest => generators::random_forest(n, 0.8, &mut rng),
            Workload::KTree(k) => generators::k_tree(n.max(k + 1), k, &mut rng),
            Workload::KDegenerate(k) => generators::k_degenerate(n, k, true, &mut rng),
            Workload::PlanarLike => generators::k_degenerate(n, 5, true, &mut rng),
            Workload::GnpAvgDeg(d) => {
                let p = (d as f64 / n.max(2) as f64).min(1.0);
                generators::gnp(n, p, &mut rng)
            }
            Workload::EobConnected => generators::even_odd_bipartite_connected(n, 0.2, &mut rng),
            Workload::TwoCliques => generators::two_cliques(n / 2),
            Workload::Impostor => generators::connected_regular_impostor((n / 2).max(3), &mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_graph::checks;

    #[test]
    fn workloads_generate_expected_structure() {
        assert!(checks::degeneracy(&Workload::Tree.generate(40, 1)).0 <= 1);
        assert_eq!(checks::degeneracy(&Workload::KTree(3).generate(40, 1)).0, 3);
        assert!(checks::degeneracy(&Workload::KDegenerate(4).generate(40, 1)).0 <= 4);
        assert!(checks::is_even_odd_bipartite(
            &Workload::EobConnected.generate(30, 1)
        ));
        assert!(checks::is_two_cliques(
            &Workload::TwoCliques.generate(12, 1)
        ));
        assert!(!checks::is_two_cliques(&Workload::Impostor.generate(12, 1)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::GnpAvgDeg(4).generate(50, 9);
        let b = Workload::GnpAvgDeg(4).generate(50, 9);
        assert_eq!(a, b);
        let c = Workload::GnpAvgDeg(4).generate(50, 10);
        assert_ne!(a, c);
    }
}
