//! Registry-driven certificate production: one call from a CLI-style
//! protocol spec to a verified-format [`ExplorationCertificate`].
//!
//! This is the orchestration layer shared by `whiteboard certify`, the
//! `exp_matrix` batch harness, and the integration tests: resolve the spec
//! in [`wb_core::registry`], promote to the requested model if it is
//! strictly stronger than the protocol's native one (Lemma 4), bind the
//! registry oracle to the instance graph, and run the certifying walk from
//! [`wb_runtime::certificate`]. Keeping it in one place guarantees the
//! producer and the independent verifier (`wb-verify`) resolve specs,
//! models, and oracles identically — any disagreement is then a real bug,
//! not a plumbing skew.

use wb_core::registry::{self, BoundOracle, ProtocolVisitor};
use wb_graph::Graph;
use wb_runtime::adapt::Promote;
use wb_runtime::certificate::{certify, CertificateScenario, ExplorationCertificate};
use wb_runtime::{ExploreConfig, Model, Protocol};

/// A produced certificate plus the concrete run statistics that survive the
/// generic visitor boundary (protocol outputs are type-erased into the
/// certificate's rendered outcome strings).
#[derive(Clone, Debug)]
pub struct CertifiedRun {
    /// The certificate, ready for [`ExplorationCertificate::to_json_line`].
    pub certificate: ExplorationCertificate,
    /// Distinct configurations in the walk.
    pub distinct_states: u64,
    /// Terminal configurations.
    pub terminals: u64,
    /// Transitions merged into already-seen configurations.
    pub merged: u64,
    /// Terminals the oracle rejected (each carries a witness).
    pub failures: usize,
}

/// Provenance metadata recorded into the certificate (advisory, but
/// digest-protected).
#[derive(Clone, Copy, Debug, Default)]
pub struct Provenance<'a> {
    /// Workload family spec, if the graph came from one.
    pub family: Option<&'a str>,
    /// Workload seed, if the family is seeded.
    pub seed: Option<u64>,
}

struct Certify<'a> {
    spec: &'a str,
    g: &'a Graph,
    model: Option<Model>,
    provenance: Provenance<'a>,
    config: &'a ExploreConfig,
}

impl ProtocolVisitor for Certify<'_> {
    type Result = Result<CertifiedRun, String>;

    fn visit<P, B>(self, protocol: P, bind: B) -> Self::Result
    where
        P: Protocol + Clone + Send + Sync,
        P::Node: Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let native = protocol.model();
        let target = self.model.unwrap_or(native);
        if !target.includes(native) {
            return Err(format!(
                "cannot demote: {} protocol cannot run under {target}",
                native
            ));
        }
        let oracle = bind(self.g);
        let scenario = CertificateScenario {
            protocol: self.spec,
            family: self.provenance.family,
            seed: self.provenance.seed,
        };
        let certified = if target == native {
            certify(&protocol, self.g, &scenario, self.config, oracle)?
        } else {
            certify(
                &Promote::new(protocol, target),
                self.g,
                &scenario,
                self.config,
                oracle,
            )?
        };
        Ok(CertifiedRun {
            distinct_states: certified.report.distinct_states,
            terminals: certified.report.terminals,
            merged: certified.report.merged,
            failures: certified.report.failures.len(),
            certificate: certified.certificate,
        })
    }
}

/// Certify `spec` on `g`: resolve protocol and oracle in the registry, run
/// the certifying exhaustive walk under `model` (`None` = the protocol's
/// native model), and return the certificate with run statistics.
pub fn certify_spec(
    spec: &str,
    g: &Graph,
    model: Option<Model>,
    provenance: Provenance<'_>,
    config: &ExploreConfig,
) -> Result<CertifiedRun, String> {
    registry::dispatch(
        spec,
        g.n(),
        Certify {
            spec,
            g,
            model,
            provenance,
            config,
        },
    )?
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_graph::generators;

    #[test]
    fn certified_line_verifies_independently() {
        let g = generators::path(3);
        let run = certify_spec(
            "mis:1",
            &g,
            None,
            Provenance::default(),
            &ExploreConfig::default(),
        )
        .unwrap();
        let line = run.certificate.to_json_line();
        let summary = wb_verify::verify_line(&line).expect("fresh certificate must verify");
        assert_eq!(summary.states, run.distinct_states);
        assert_eq!(summary.terminals as u64, run.terminals);
        assert_eq!(summary.failures, run.failures);
    }

    #[test]
    fn promoted_certificate_records_target_model() {
        let g = generators::cycle(3);
        let run = certify_spec(
            "mis:1",
            &g,
            Some(Model::Sync),
            Provenance::default(),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(run.certificate.model, Model::Sync);
        wb_verify::verify_line(&run.certificate.to_json_line())
            .expect("promoted certificate must verify");
    }

    #[test]
    fn witness_bearing_certificate_verifies() {
        // async-bipartite-bfs deadlocks off the bipartite promise (a
        // triangle with a tail): the certificate must carry witnesses and
        // still verify.
        let g = Graph::from_edges(5, &[(1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]);
        let run = certify_spec(
            "async-bipartite-bfs",
            &g,
            None,
            Provenance::default(),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert!(
            run.failures > 0,
            "triangle-with-tail must produce failing terminals"
        );
        assert!(!run.certificate.witnesses.is_empty());
        wb_verify::verify_line(&run.certificate.to_json_line())
            .expect("witness-bearing certificate must verify");
    }

    #[test]
    fn demotion_is_refused() {
        let g = generators::path(3);
        let err = certify_spec(
            "bfs", // native SYNC
            &g,
            Some(Model::SimAsync),
            Provenance::default(),
            &ExploreConfig::default(),
        )
        .err()
        .expect("demotion must be refused");
        assert!(err.contains("demote"), "{err}");
    }
}
