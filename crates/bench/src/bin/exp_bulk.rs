//! E-BULK — bulk-tier throughput at `n ≥ 10⁵` (`BENCH_bulk.json`).
//!
//! The acceptance experiment of the third execution tier: BUILD and rooted
//! MIS complete single executions at `n = 10⁵` under their native
//! simultaneous models **and** under the free targets SYNC/ASYNC (the
//! event-driven scheduler), with **rounds/sec** and **board bytes** recorded
//! per protocol × model × family × n. Every row's outcome is verified
//! against the registry oracle
//! (`wb_core::registry`) before it is reported — a bench row that computes
//! a wrong answer fast is worthless, and the bin fails loudly on it.
//!
//! Graph instances come from the linear-time families (`kdeg-lin`,
//! `gnp-lin`) — the quadratic samplers behind `kdeg`/`gnp` cannot even
//! *generate* inputs at this scale.
//!
//! ```text
//! exp_bulk [--json PATH|-] [--baseline PATH] [--quick]
//! ```
//!
//! `--baseline` compares fresh rounds/sec against a checked-in baseline and
//! fails on a ≥ 2× regression (a slower machine passes; a genuine 2×
//! regression does not). `--quick` divides every `n` by 10 for smoke runs.

use std::time::Instant;
use wb_bench::json::{escape, Json};
use wb_bench::table::{banner, TablePrinter};
use wb_core::registry::{self, BoundOracle, BulkVisitor};
use wb_core::workload::graph_family;
use wb_graph::Graph;
use wb_runtime::bulk::{bulk_model, run_bulk, shuffled_schedule, BulkConfig};
use wb_runtime::{BulkProtocol, Model};

struct Row {
    protocol: String,
    model: String,
    family: String,
    n: usize,
    rounds: usize,
    board_payload_bytes: usize,
    board_index_bytes: usize,
    total_bits: usize,
    max_message_bits: usize,
    wall_sec: f64,
}

impl Row {
    fn rounds_per_sec(&self) -> f64 {
        if self.wall_sec > 0.0 {
            self.rounds as f64 / self.wall_sec
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":{},\"model\":{},\"family\":{},\"n\":{},\"rounds\":{},\
             \"board_payload_bytes\":{},\"board_index_bytes\":{},\"total_bits\":{},\
             \"max_message_bits\":{},\"wall_sec\":{:.9},\"rounds_per_sec\":{:.1}}}",
            escape(&self.protocol),
            escape(&self.model),
            escape(&self.family),
            self.n,
            self.rounds,
            self.board_payload_bytes,
            self.board_index_bytes,
            self.total_bits,
            self.max_message_bits,
            self.wall_sec,
            self.rounds_per_sec(),
        )
    }
}

/// Registry visitor for one bulk row: resolve protocol + oracle from the
/// shared table, execute one seeded schedule, verify, and measure.
struct Measure<'a> {
    label: &'a str,
    family: &'a str,
    n: usize,
    /// `None` = the protocol's native model; `Some(Sync|Async)` drives the
    /// event-driven free-order scheduler.
    target: Option<Model>,
}

impl BulkVisitor for Measure<'_> {
    type Result = Row;
    fn visit<P, B>(self, protocol: P, bind: B) -> Row
    where
        P: BulkProtocol + Send + Sync,
        P::Output: Clone + PartialEq + std::fmt::Debug + Send + Sync,
        B: for<'g> Fn(&'g Graph) -> BoundOracle<'g, P::Output> + Send + Sync,
    {
        let model = bulk_model(protocol.model(), self.target).expect("bench targets are runnable");
        let g = graph_family(self.family, self.n, 1).expect("known family");
        let schedule = shuffled_schedule(g.n(), 0xB01D);
        let config = BulkConfig::default();
        let start = Instant::now();
        let report =
            run_bulk(&protocol, &g, &schedule, self.target, &config).expect("model pre-validated");
        let wall_sec = start.elapsed().as_secs_f64();
        let oracle = bind(&g);
        assert!(
            oracle(&report.outcome, &[]),
            "{} @ {model} on {} n={}: bulk outcome violated the registry oracle — \
             investigate before trusting the bench",
            self.label,
            self.family,
            self.n
        );
        Row {
            protocol: self.label.into(),
            model: model.to_string(),
            family: self.family.into(),
            n: self.n,
            rounds: report.rounds,
            board_payload_bytes: report.board.payload_bytes(),
            board_index_bytes: report.board.index_bytes(),
            total_bits: report.total_bits(),
            max_message_bits: report.max_message_bits(),
            wall_sec,
        }
    }
}

fn measure_one(spec: &str, label: &str, family: &str, n: usize) -> Row {
    measure_target(spec, label, family, n, None)
}

fn measure_target(spec: &str, label: &str, family: &str, n: usize, target: Option<Model>) -> Row {
    registry::dispatch_bulk(
        spec,
        n,
        Measure {
            label,
            family,
            n,
            target,
        },
    )
    .expect("bulk protocol")
}

fn measure_rows(quick: bool) -> Vec<Row> {
    let scale = |n: usize| if quick { (n / 10).max(1_000) } else { n };
    let mut rows = vec![
        // The two acceptance rows: BUILD and MIS at n = 10⁵.
        measure_one("build:2", "BUILD(2)", "kdeg-lin:2", scale(100_000)),
        measure_one("mis:1", "MIS(1)", "gnp-lin:4", scale(100_000)),
        // Scaling context one decade down.
        measure_one("build:2", "BUILD(2)", "kdeg-lin:2", scale(10_000)),
        measure_one("mis:1", "MIS(1)", "gnp-lin:4", scale(10_000)),
        // The cheapest protocol: an upper bound on raw bulk throughput.
        measure_one("edge-count", "EDGE-COUNT", "gnp-lin:4", scale(100_000)),
        // A second columnar SIMSYNC protocol at scale.
        measure_one("two-cliques", "2-CLIQUES", "two-cliques", scale(2_000)),
    ];
    // The free-order executions: the same protocols driven through the
    // event-driven scheduler under the two free target models.
    for target in [Model::Sync, Model::Async] {
        for n in [10_000, 100_000] {
            rows.push(measure_target(
                "build:2",
                "BUILD(2)",
                "kdeg-lin:2",
                scale(n),
                Some(target),
            ));
            rows.push(measure_target(
                "mis:1",
                "MIS(1)",
                "gnp-lin:4",
                scale(n),
                Some(target),
            ));
        }
    }
    rows
}

fn emit_json(rows: &[Row], path: &str) {
    let mut body = String::from("{\n  \"schema\": \"wb-bench/bulk/v1\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str("    ");
        body.push_str(&row.to_json());
        body.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ]\n}\n");
    Json::parse(&body).expect("emitted JSON is well-formed");
    if path == "-" {
        print!("{body}");
    } else {
        std::fs::write(path, &body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Gate: every baseline row with a matching (protocol, model, n) must not
/// beat the fresh measurement by more than 2×. Board bytes are also pinned
/// exactly — they are deterministic functions of (protocol, model, family,
/// n, seed), so any drift is a real encoding change, not noise.
fn check_baseline(rows: &[Row], path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    let baseline_rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("baseline has no rows array")?;
    let mut checked = 0;
    for b in baseline_rows {
        let (Some(protocol), Some(model), Some(n), Some(base_rps)) = (
            b.get("protocol").and_then(Json::as_str),
            b.get("model").and_then(Json::as_str),
            b.get("n").and_then(Json::as_f64),
            b.get("rounds_per_sec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let Some(row) = rows
            .iter()
            .find(|r| r.protocol == protocol && r.model == model && r.n == n as usize)
        else {
            continue;
        };
        let fresh = row.rounds_per_sec();
        println!(
            "baseline {protocol} @ {model} n={n}: {fresh:.0} rounds/sec vs baseline \
             {base_rps:.0} ({:.2}x)",
            fresh / base_rps
        );
        if fresh * 2.0 < base_rps {
            return Err(format!(
                "{protocol} @ {model} n={n}: {fresh:.0} rounds/sec regressed more than 2x \
                 against the baseline {base_rps:.0}"
            ));
        }
        if let Some(base_bytes) = b.get("board_payload_bytes").and_then(Json::as_f64) {
            if row.board_payload_bytes != base_bytes as usize {
                return Err(format!(
                    "{protocol} @ {model} n={n}: board payload {} bytes differs from the \
                     deterministic baseline {base_bytes} — message encoding changed",
                    row.board_payload_bytes
                ));
            }
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("baseline matched no measured rows".into());
    }
    println!("baseline gate passed ({checked} rows within 2x, board bytes exact)");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = Some(it.next().expect("--json expects a path").clone()),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline expects a path").clone())
            }
            "--quick" => quick = true,
            other => panic!("unknown flag '{other}'"),
        }
    }

    banner("Bulk tier: whole executions at n = 10⁵ (columnar state, sharded board)");
    let rows = measure_rows(quick);
    let t = TablePrinter::new(
        &[
            "protocol",
            "model",
            "family",
            "n",
            "rounds/sec",
            "board KiB",
            "max bits",
        ],
        &[12, 9, 12, 8, 12, 10, 9],
    );
    for row in &rows {
        t.row(&[
            row.protocol.clone(),
            row.model.clone(),
            row.family.clone(),
            format!("{}", row.n),
            format!("{:.0}", row.rounds_per_sec()),
            format!("{}", row.board_payload_bytes / 1024),
            format!("{}", row.max_message_bits),
        ]);
    }

    if let Some(path) = &json_path {
        emit_json(&rows, path);
    }
    if let Some(path) = &baseline_path {
        if let Err(e) = check_baseline(&rows, path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
