//! F2 — Figure 2 regenerated: the `G_i` gadget and the Theorem 8
//! transformation EOB-BFS ⇒ BUILD (even-odd-bipartite).
//!
//! Reproduces (a) the layer-3 property on the paper's own parameters (n = 7,
//! hidden graph on v₂..v₇, probe i = 5 — exactly the figure), (b) the
//! property across all probes on random EOB graphs, and (c) the end-to-end
//! transformation rebuilding hidden graphs through a BFS oracle.

use wb_bench::table::{banner, TablePrinter};
use wb_graph::{checks, generators, NodeId};
use wb_reductions::eobbfs_to_build::{fig2_gadget, EobBfsToBuild};
use wb_reductions::oracles::BfsFullRowOracle;
use wb_runtime::{run, Outcome, RandomAdversary};

fn main() {
    banner("Figure 2: G_5 for a hidden graph on paper-nodes v2..v7 (n = 7)");
    // Hidden graph H on 6 nodes ↔ paper v2..v7 (H-node u ↔ v_{u+1}).
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(wb_bench::SEED ^ 2);
    let h = generators::even_odd_bipartite_connected(6, 0.35, &mut rng);
    let gadget = fig2_gadget(&h, 5);
    println!("hidden H: {h:?}");
    println!(
        "gadget G_5: 13 nodes, {} edges, EOB = {}",
        gadget.m(),
        checks::is_even_odd_bipartite(&gadget)
    );
    let forest = checks::bfs_forest(&gadget);
    let t = TablePrinter::new(
        &[
            "paper node v_j",
            "H node",
            "layer in BFS(G_5)",
            "edge {v5,vj} in G?",
        ],
        &[14, 7, 18, 19],
    );
    for j in [2u32, 4, 6] {
        let layer = forest.layer[j as usize - 1];
        let edge = h.has_edge(4, j - 1); // paper v5 ↔ H node 4
        t.row(&[
            format!("v{j}"),
            format!("{}", j - 1),
            format!("{layer}"),
            format!("{edge}"),
        ]);
        assert_eq!(layer == 3, edge);
    }
    t.rule();

    banner("Layer-3 property across all probes and random hidden graphs");
    let mut checked = 0u64;
    for trial in 0..30 {
        let h = generators::even_odd_bipartite_connected(8, 0.25 + 0.02 * trial as f64, &mut rng);
        let n = h.n() + 1; // paper n = 9
        for i in (3..=n).step_by(2) {
            let i = i as NodeId;
            let forest = checks::bfs_forest(&fig2_gadget(&h, i));
            for j in (2..=n).step_by(2) {
                let j = j as NodeId;
                assert_eq!(
                    forest.layer[j as usize - 1] == 3,
                    h.has_edge(i - 1, j - 1),
                    "trial {trial} i={i} j={j}"
                );
                checked += 1;
            }
        }
    }
    println!("layer-3 ⟺ edge verified on {checked} (probe, target) combinations");

    banner("Theorem 8 transformation: BFS oracle ⇒ BUILD (EOB)");
    let transform = EobBfsToBuild::new(BfsFullRowOracle);
    let t = TablePrinter::new(
        &["hidden n", "gadget size 2n-1", "bits/message", "rebuilt"],
        &[9, 17, 13, 8],
    );
    for hn in [4usize, 6, 8, 10] {
        let h = generators::even_odd_bipartite_connected(hn, 0.4, &mut rng);
        let report = run(&transform, &h, &mut RandomAdversary::new(hn as u64));
        let bits = report.max_message_bits();
        let ok = matches!(report.outcome, Outcome::Success(ref g) if *g == h);
        t.row(&[
            format!("{hn}"),
            format!("{}", 2 * (hn + 1) - 1),
            format!("{bits}"),
            format!("{ok}"),
        ]);
        assert!(ok);
    }
    t.rule();
    println!(
        "A SIMSYNC EOB-BFS protocol with f(n) = o(n) bits would rebuild all 2^(Ω(n²))\n\
         even-odd-bipartite graphs from n·f(n) board bits — impossible by Lemma 3."
    );
}
