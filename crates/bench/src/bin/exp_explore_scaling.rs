//! E-EXPLORE — canonical-state deduplication vs the naive factorial DFS.
//!
//! The paper's ∀-adversary quantifier costs `n!` schedules naively; on
//! simultaneous models the explorer's canonical-state dedup collapses the
//! schedule tree to its distinct-configuration DAG (`2^n` for a
//! write-order-oblivious protocol like BUILD). This experiment prints the
//! scaling table and asserts the headline claim: **≥ 10× fewer states at
//! `n = 7`** on a simultaneous-model instance.

use wb_bench::table::{banner, TablePrinter};
use wb_core::{BuildDegenerate, MisGreedy};
use wb_graph::generators;
use wb_runtime::exhaustive::{
    explore, explore_parallel, for_each_schedule, ExploreConfig, NaiveReport,
};
use wb_runtime::Protocol;

fn naive<P: Protocol>(p: &P, g: &wb_graph::Graph) -> NaiveReport {
    for_each_schedule(p, g, 10_000_000, |_| {})
}

fn main() {
    banner("Schedule-space explorer: naive DFS tree vs deduplicated configuration DAG");
    let t = TablePrinter::new(
        &[
            "protocol",
            "model",
            "n",
            "naive states",
            "naive leaves",
            "dag states",
            "terminals",
            "reduction",
        ],
        &[10, 9, 4, 13, 13, 11, 10, 10],
    );

    let mut n7_reduction = 0.0f64;
    for n in 3..=7usize {
        let g = generators::path(n);
        let p = BuildDegenerate::new(1);
        let dfs = naive(&p, &g);
        assert!(!dfs.truncated);
        let dag = explore(&p, &g, &ExploreConfig::default(), |_| true);
        assert!(dag.passed());
        let reduction = dfs.states as f64 / dag.distinct_states as f64;
        if n == 7 {
            n7_reduction = reduction;
        }
        t.row(&[
            "BUILD(1)".into(),
            "SIMASYNC".into(),
            format!("{n}"),
            format!("{}", dfs.states),
            format!("{}", dfs.schedules),
            format!("{}", dag.distinct_states),
            format!("{}", dag.terminals),
            format!("{reduction:.1}x"),
        ]);
    }
    for n in 3..=7usize {
        let g = generators::cycle(n.max(3));
        let p = MisGreedy::new(1);
        let dfs = naive(&p, &g);
        assert!(!dfs.truncated);
        let dag = explore(&p, &g, &ExploreConfig::default(), |_| true);
        assert!(dag.passed());
        t.row(&[
            "MIS(1)".into(),
            "SIMSYNC".into(),
            format!("{n}"),
            format!("{}", dfs.states),
            format!("{}", dfs.schedules),
            format!("{}", dag.distinct_states),
            format!("{}", dag.terminals),
            format!("{:.1}x", dfs.states as f64 / dag.distinct_states as f64),
        ]);
    }

    banner("Parallel fan-out sanity (par_map frontier == sequential)");
    let g = generators::path(7);
    let p = BuildDegenerate::new(1);
    let seq = explore(&p, &g, &ExploreConfig::default(), |_| true);
    let par = explore_parallel(&p, &g, &ExploreConfig::default(), |_| true);
    assert_eq!(seq.distinct_states, par.distinct_states);
    assert_eq!(seq.terminals, par.terminals);
    println!(
        "n = 7 BUILD: {} states sequential == {} states parallel, dedup ratio {:.1}x",
        seq.distinct_states,
        par.distinct_states,
        seq.dedup_ratio()
    );

    println!();
    println!("n = 7 simultaneous-model reduction: {n7_reduction:.1}x (claim: >= 10x)");
    assert!(
        n7_reduction >= 10.0,
        "dedup must beat the naive DFS by >= 10x at n = 7"
    );
}
