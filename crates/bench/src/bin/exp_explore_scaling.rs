//! E-EXPLORE — canonical-state deduplication vs the naive factorial DFS,
//! plus the explorer's throughput trajectory (`BENCH_explore.json`).
//!
//! The paper's ∀-adversary quantifier costs `n!` schedules naively; on
//! simultaneous models the explorer's canonical-state dedup collapses the
//! schedule tree to its distinct-configuration DAG (`2^n` for a
//! write-order-oblivious protocol like BUILD). This experiment prints the
//! scaling table, asserts the headline claim (**≥ 10× fewer states at
//! `n = 7`**), measures the explorer's states/sec per model × n, and —
//! with `--json PATH` — records the numbers machine-readably so CI can
//! track the perf trajectory and fail on ≥ 2× regressions against the
//! checked-in baseline (`--baseline PATH`).
//!
//! ```text
//! exp_explore_scaling [--json PATH|-] [--baseline PATH] [--assert-speedup]
//! ```
//!
//! `--assert-speedup` additionally enforces the clone-free-exploration
//! acceptance bar (≥ 5× states/sec at n = 7 versus the pre-undo-log
//! explorer measured on the same machine class); it is meaningful only on
//! hardware comparable to where `PRE_PR_STATES_PER_SEC` was recorded, so
//! CI uses the baseline gate instead.

use std::collections::BTreeMap;
use std::time::Instant;
use wb_bench::json::{escape, Json};
use wb_bench::table::{banner, TablePrinter};
use wb_core::{BuildDegenerate, MisGreedy};
use wb_graph::generators;
use wb_runtime::exhaustive::{
    explore, explore_parallel, for_each_schedule, ExplorationReport, ExploreConfig, NaiveReport,
    ReductionPolicy,
};
use wb_runtime::Protocol;

/// Pre-PR (clone-per-branch explorer, exact `Vec<u64>` snapshot dedup)
/// states/sec at n = 7 on the development machine, recorded immediately
/// before the undo-log/fingerprint rework for the speedup bookkeeping in
/// `BENCH_explore.json`.
const PRE_PR_STATES_PER_SEC: [(&str, f64); 2] = [("BUILD(1)", 218_063.0), ("MIS(1)", 275_010.0)];

fn naive<P: Protocol>(p: &P, g: &wb_graph::Graph) -> NaiveReport {
    for_each_schedule(p, g, 10_000_000, |_| {})
}

/// Best-of wall time for one explore call: repeat until the budget is
/// spent, keep the fastest run (the usual microbenchmark noise floor).
fn time_explore<P>(p: &P, g: &wb_graph::Graph) -> (ExplorationReport<P::Output>, f64)
where
    P: Protocol,
    P::Output: Clone,
{
    let cfg = ExploreConfig::default();
    let mut best = f64::INFINITY;
    let mut report = None;
    let budget = Instant::now();
    let mut reps = 0;
    while reps < 5 || (budget.elapsed().as_millis() < 200 && reps < 1000) {
        let t = Instant::now();
        let r = explore(p, g, &cfg, |_| true);
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
        report = Some(r);
        reps += 1;
    }
    (report.expect("at least one rep"), best)
}

struct Row {
    protocol: &'static str,
    model: &'static str,
    workload: &'static str,
    n: usize,
    naive_states: u64,
    naive_leaves: u64,
    report_states: u64,
    terminals: u64,
    merged: u64,
    peak_frontier: usize,
    dedup_ratio: f64,
    wall_sec: f64,
}

impl Row {
    fn states_per_sec(&self) -> f64 {
        self.report_states as f64 / self.wall_sec
    }

    fn reduction(&self) -> f64 {
        self.naive_states as f64 / self.report_states as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":{},\"model\":{},\"workload\":{},\"n\":{},\"naive_states\":{},\
             \"naive_leaves\":{},\"states\":{},\"terminals\":{},\"merged\":{},\
             \"peak_frontier\":{},\"dedup_ratio\":{:.3},\"wall_sec\":{:.9},\
             \"states_per_sec\":{:.1}}}",
            escape(self.protocol),
            escape(self.model),
            escape(self.workload),
            self.n,
            self.naive_states,
            self.naive_leaves,
            self.report_states,
            self.terminals,
            self.merged,
            self.peak_frontier,
            self.dedup_ratio,
            self.wall_sec,
            self.states_per_sec(),
        )
    }
}

/// One (workload, n, policy) measurement of the reduction machinery.
/// `generated` is the number of states the explorer materialized
/// (distinct + merged) — the quantity the reductions exist to shrink.
/// Counts are deterministic, so the baseline gate checks them exactly.
struct ReductionRow {
    workload: &'static str,
    n: usize,
    policy: ReductionPolicy,
    generated: u64,
    distinct: u64,
    terminals: u64,
}

impl ReductionRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"workload\":{},\"n\":{},\"policy\":{},\"generated\":{},\
             \"distinct\":{},\"terminals\":{}}}",
            escape(self.workload),
            self.n,
            escape(&self.policy.to_string()),
            self.generated,
            self.distinct,
            self.terminals,
        )
    }
}

const REDUCTION_POLICIES: [ReductionPolicy; 4] = [
    ReductionPolicy::Off,
    ReductionPolicy::Dpor,
    ReductionPolicy::Symmetry,
    ReductionPolicy::DporSymmetry,
];

fn measure_reduction_rows() -> Vec<ReductionRow> {
    let p = MisGreedy::new(1);
    let mut rows = Vec::new();
    for (workload, graph) in [
        ("cycle", generators::cycle(8)),
        ("clique", generators::clique(8)),
    ] {
        for policy in REDUCTION_POLICIES {
            let cfg = ExploreConfig::default().with_reduction(policy);
            let r = explore(&p, &graph, &cfg, |_| true);
            assert!(!r.truncated, "{workload}-8 {policy} truncated");
            rows.push(ReductionRow {
                workload,
                n: 8,
                policy,
                generated: r.generated(),
                distinct: r.distinct_states,
                terminals: r.terminals,
            });
        }
    }
    rows
}

fn measure_rows() -> Vec<Row> {
    let mut rows = Vec::new();
    for n in 3..=7usize {
        let g = generators::path(n);
        let p = BuildDegenerate::new(1);
        let dfs = naive(&p, &g);
        assert!(!dfs.truncated);
        let (dag, wall) = time_explore(&p, &g);
        assert!(dag.passed());
        rows.push(Row {
            protocol: "BUILD(1)",
            model: "SIMASYNC",
            workload: "path",
            n,
            naive_states: dfs.states,
            naive_leaves: dfs.schedules,
            report_states: dag.distinct_states,
            terminals: dag.terminals,
            merged: dag.merged,
            peak_frontier: dag.peak_frontier,
            dedup_ratio: dag.dedup_ratio(),
            wall_sec: wall,
        });
    }
    for n in 3..=7usize {
        let g = generators::cycle(n.max(3));
        let p = MisGreedy::new(1);
        let dfs = naive(&p, &g);
        assert!(!dfs.truncated);
        let (dag, wall) = time_explore(&p, &g);
        assert!(dag.passed());
        rows.push(Row {
            protocol: "MIS(1)",
            model: "SIMSYNC",
            workload: "cycle",
            n,
            naive_states: dfs.states,
            naive_leaves: dfs.schedules,
            report_states: dag.distinct_states,
            terminals: dag.terminals,
            merged: dag.merged,
            peak_frontier: dag.peak_frontier,
            dedup_ratio: dag.dedup_ratio(),
            wall_sec: wall,
        });
    }
    rows
}

fn emit_json(rows: &[Row], reduction_rows: &[ReductionRow], n7_reduction: f64, path: &str) {
    let mut body =
        String::from("{\n  \"schema\": \"wb-bench/explore-scaling/v1\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str("    ");
        body.push_str(&row.to_json());
        body.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ],\n  \"reduction_rows\": [\n");
    for (i, row) in reduction_rows.iter().enumerate() {
        body.push_str("    ");
        body.push_str(&row.to_json());
        body.push_str(if i + 1 < reduction_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    body.push_str("  ],\n");
    body.push_str(&format!("  \"n7_reduction\": {n7_reduction:.2},\n"));
    body.push_str("  \"speedup_vs_pre_pr\": {");
    let pre: BTreeMap<&str, f64> = PRE_PR_STATES_PER_SEC.into_iter().collect();
    let mut first = true;
    for row in rows.iter().filter(|r| r.n == 7) {
        if let Some(&pre_sps) = pre.get(row.protocol) {
            if !first {
                body.push(',');
            }
            first = false;
            body.push_str(&format!(
                "{}: {:.2}",
                escape(row.protocol),
                row.states_per_sec() / pre_sps
            ));
        }
    }
    body.push_str("}\n}\n");
    // The emitted document must parse with our own reader (CI depends on it).
    Json::parse(&body).expect("emitted JSON is well-formed");
    if path == "-" {
        print!("{body}");
    } else {
        std::fs::write(path, &body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Gate: every baseline row with a matching (protocol, n) must not beat the
/// fresh measurement by more than 2× — a slower machine passes, a genuine
/// 2× regression fails. Baseline `reduction_rows` are deterministic state
/// counts, so those must match exactly: a drifted count means the reduction
/// machinery changed what it prunes (or stopped pruning) silently.
fn check_baseline(rows: &[Row], reduction_rows: &[ReductionRow], path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    let baseline_rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("baseline has no rows array")?;
    let mut checked = 0;
    for b in baseline_rows {
        let (Some(protocol), Some(n), Some(base_sps)) = (
            b.get("protocol").and_then(Json::as_str),
            b.get("n").and_then(Json::as_f64),
            b.get("states_per_sec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let Some(row) = rows
            .iter()
            .find(|r| r.protocol == protocol && r.n == n as usize)
        else {
            continue;
        };
        let fresh = row.states_per_sec();
        println!(
            "baseline {protocol} n={n}: {fresh:.0} states/sec vs baseline {base_sps:.0} ({:.2}x)",
            fresh / base_sps
        );
        if fresh * 2.0 < base_sps {
            return Err(format!(
                "{protocol} n={n}: {fresh:.0} states/sec regressed more than 2x \
                 against the baseline {base_sps:.0}"
            ));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("baseline matched no measured rows".into());
    }
    let mut exact = 0;
    for b in doc
        .get("reduction_rows")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        let (Some(workload), Some(n), Some(policy), Some(generated)) = (
            b.get("workload").and_then(Json::as_str),
            b.get("n").and_then(Json::as_f64),
            b.get("policy").and_then(Json::as_str),
            b.get("generated").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let Some(row) = reduction_rows.iter().find(|r| {
            r.workload == workload && r.n == n as usize && r.policy.to_string() == policy
        }) else {
            continue;
        };
        if row.generated != generated as u64 {
            return Err(format!(
                "{workload}-{n} --reduction {policy}: generated {} states but the \
                 baseline records {generated} (deterministic count drifted)",
                row.generated
            ));
        }
        exact += 1;
    }
    println!("baseline gate passed ({checked} rows within 2x, {exact} reduction counts exact)");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut assert_speedup = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = Some(it.next().expect("--json expects a path").clone()),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline expects a path").clone())
            }
            "--assert-speedup" => assert_speedup = true,
            other => panic!("unknown flag '{other}'"),
        }
    }

    banner("Schedule-space explorer: naive DFS tree vs deduplicated configuration DAG");
    let rows = measure_rows();
    let t = TablePrinter::new(
        &[
            "protocol",
            "model",
            "n",
            "naive states",
            "dag states",
            "terminals",
            "reduction",
            "states/sec",
        ],
        &[10, 9, 4, 13, 11, 10, 10, 12],
    );
    let mut n7_reduction = 0.0f64;
    for row in &rows {
        if row.n == 7 && row.protocol == "BUILD(1)" {
            n7_reduction = row.reduction();
        }
        t.row(&[
            row.protocol.into(),
            row.model.into(),
            format!("{}", row.n),
            format!("{}", row.naive_states),
            format!("{}", row.report_states),
            format!("{}", row.terminals),
            format!("{:.1}x", row.reduction()),
            format!("{:.0}", row.states_per_sec()),
        ]);
    }

    banner("Parallel fan-out sanity (striped dedup == sequential counts)");
    let g = generators::path(7);
    let p = BuildDegenerate::new(1);
    let seq = explore(&p, &g, &ExploreConfig::default(), |_| true);
    let par = explore_parallel(&p, &g, &ExploreConfig::default(), |_| true);
    assert_eq!(seq.distinct_states, par.distinct_states);
    assert_eq!(seq.terminals, par.terminals);
    assert_eq!(seq.merged, par.merged);
    println!(
        "n = 7 BUILD: {} states sequential == {} states parallel, dedup ratio {:.1}x",
        seq.distinct_states,
        par.distinct_states,
        seq.dedup_ratio()
    );

    banner("Fingerprint vs exact dedup sanity (n = 7)");
    let exact = explore(&p, &g, &ExploreConfig::default().exact(), |_| true);
    assert_eq!(seq.distinct_states, exact.distinct_states);
    assert_eq!(seq.merged, exact.merged);
    println!(
        "n = 7 BUILD: fingerprint and exact dedup agree on {} states / {} merges",
        exact.distinct_states, exact.merged
    );

    println!();
    println!("n = 7 simultaneous-model reduction: {n7_reduction:.1}x (claim: >= 10x)");
    assert!(
        n7_reduction >= 10.0,
        "dedup must beat the naive DFS by >= 10x at n = 7"
    );

    banner("Partial-order + symmetry reduction: generated states per policy (MIS(1), n = 8)");
    let reduction_rows = measure_reduction_rows();
    let rt = TablePrinter::new(
        &["workload", "n", "policy", "generated", "distinct", "cut"],
        &[9, 4, 14, 11, 10, 8],
    );
    let generated_of = |workload: &str, policy: ReductionPolicy| {
        reduction_rows
            .iter()
            .find(|r| r.workload == workload && r.policy == policy)
            .map(|r| r.generated)
            .expect("measured row")
    };
    for row in &reduction_rows {
        let off = generated_of(row.workload, ReductionPolicy::Off);
        rt.row(&[
            row.workload.into(),
            format!("{}", row.n),
            row.policy.to_string(),
            format!("{}", row.generated),
            format!("{}", row.distinct),
            format!("{:.2}x", off as f64 / row.generated as f64),
        ]);
    }
    // Terminals are a reduction-invariant observable: every policy must
    // agree with the unreduced walk per workload.
    for workload in ["cycle", "clique"] {
        let terminals: Vec<u64> = reduction_rows
            .iter()
            .filter(|r| r.workload == workload)
            .map(|r| r.terminals)
            .collect();
        assert!(
            terminals.windows(2).all(|w| w[0] == w[1]),
            "{workload}-8: terminal counts diverge across policies: {terminals:?}"
        );
    }
    // The headline gate: on the vertex-transitive clique-8 (stabilizer
    // S_7, order 5040) the combined reduction must generate >= 10x fewer
    // states. Root-pinned cycle-8 only has a stabilizer of order 2 (the
    // reflection through the root), so the honest bar there is 2x.
    let clique_cut = generated_of("clique", ReductionPolicy::Off) as f64
        / generated_of("clique", ReductionPolicy::DporSymmetry) as f64;
    let cycle_cut = generated_of("cycle", ReductionPolicy::Off) as f64
        / generated_of("cycle", ReductionPolicy::DporSymmetry) as f64;
    println!();
    println!("clique-8 dpor+symmetry cut: {clique_cut:.1}x (claim: >= 10x)");
    println!("cycle-8  dpor+symmetry cut: {cycle_cut:.1}x (claim: >= 2x, |Aut| = 2)");
    assert!(
        clique_cut >= 10.0,
        "dpor+symmetry must generate >= 10x fewer states on clique-8 (got {clique_cut:.2}x)"
    );
    assert!(
        cycle_cut >= 2.0,
        "dpor+symmetry must generate >= 2x fewer states on cycle-8 (got {cycle_cut:.2}x)"
    );

    // Sweeps that truncate unreduced must now complete: cycle-10 and
    // cycle-12 under the default state cap.
    for n in [10usize, 12] {
        let g = generators::cycle(n);
        let cfg = ExploreConfig::default().with_reduction(ReductionPolicy::DporSymmetry);
        let r = explore(&MisGreedy::new(1), &g, &cfg, |_| true);
        assert!(!r.truncated, "cycle-{n} truncated under dpor+symmetry");
        println!(
            "cycle-{n} MIS(1) dpor+symmetry: {} distinct states, untruncated",
            r.distinct_states
        );
    }

    for (proto, pre) in PRE_PR_STATES_PER_SEC {
        if let Some(row) = rows.iter().find(|r| r.protocol == proto && r.n == 7) {
            let speedup = row.states_per_sec() / pre;
            println!(
                "n = 7 {proto}: {:.0} states/sec = {speedup:.1}x the pre-PR explorer \
                 ({pre:.0} on the reference machine)",
                row.states_per_sec()
            );
            if assert_speedup {
                assert!(
                    speedup >= 5.0,
                    "{proto}: clone-free exploration must be >= 5x the pre-PR explorer \
                     (got {speedup:.2}x; only meaningful on the reference machine class)"
                );
            }
        }
    }

    if let Some(path) = &json_path {
        emit_json(&rows, &reduction_rows, n7_reduction, path);
    }
    if let Some(path) = &baseline_path {
        if let Err(e) = check_baseline(&rows, &reduction_rows, path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
