//! E3 + E5 + E8 — the Lemma 3 capacity curves behind Theorems 3, 6 and 8,
//! plus all three executable reductions run end-to-end.

use wb_bench::table::{banner, TablePrinter};
use wb_core::TriangleFullRow;
use wb_graph::generators;
use wb_math::counting::MessageRegime;
use wb_reductions::eobbfs_to_build::EobBfsToBuild;
use wb_reductions::lemma3::{sweep, Family};
use wb_reductions::mis_to_build::MisToBuild;
use wb_reductions::oracles::{BfsFullRowOracle, MisFullRowOracle};
use wb_reductions::triangle_to_build::TriangleToBuild;
use wb_runtime::{run, Outcome, RandomAdversary};

fn main() {
    banner("Lemma 3 capacity sweep: log₂|family| vs board capacity n·f(n)");
    let families = [
        Family::LabeledTrees,
        Family::BipartiteFixedHalves,
        Family::EvenOddBipartite,
        Family::AllGraphs,
    ];
    let regimes = [
        MessageRegime::LogN { c: 4 },
        MessageRegime::SqrtN,
        MessageRegime::NOverLogN,
        MessageRegime::Linear,
    ];
    let ns = [64u64, 256, 1024, 4096, 1 << 14, 1 << 18];
    let t = TablePrinter::new(
        &["family", "f(n)", "n", "required", "capacity", "verdict"],
        &[26, 9, 9, 14, 14, 11],
    );
    let mut last: Option<(String, String)> = None;
    for row in sweep(&families, &regimes, &ns) {
        let key = (row.family.name(), row.regime.name());
        if last.as_ref() != Some(&key) {
            if last.is_some() {
                t.rule();
            }
            last = Some(key);
        }
        t.row(&[
            row.family.name(),
            row.regime.name(),
            format!("{}", row.n),
            format!("{}", row.verdict.required_bits),
            format!("{}", row.verdict.capacity_bits),
            if row.verdict.impossible() {
                "IMPOSSIBLE".into()
            } else {
                "open".to_string()
            },
        ]);
    }
    t.rule();
    println!(
        "Readings: trees stay 'open' at log n messages (and §3.1 indeed solves them);\n\
         the bipartite/EOB/all-graphs families blow past every o(n) regime — the\n\
         counting halves of Theorems 3, 8 and 6 respectively."
    );

    banner("Executable reductions (oracle = Θ(n)-bit full-row protocols)");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(wb_bench::SEED ^ 3);
    let t = TablePrinter::new(
        &["theorem", "hidden input", "rebuilt exactly"],
        &[9, 30, 16],
    );

    let g = generators::bipartite_fixed(6, 6, 0.45, &mut rng);
    let tri = TriangleToBuild::new(TriangleFullRow);
    let ok = matches!(run(&tri, &g, &mut RandomAdversary::new(1)).outcome,
                      Outcome::Success(ref h) if *h == g);
    assert!(ok);
    t.row(&[
        "Thm 3",
        "bipartite 6+6, p=0.45",
        if ok { "yes" } else { "NO" },
    ]);

    let g = generators::gnp(9, 0.5, &mut rng);
    let mis = MisToBuild::new(MisFullRowOracle::new);
    let ok = matches!(run(&mis, &g, &mut RandomAdversary::new(2)).outcome,
                      Outcome::Success(ref h) if *h == g);
    assert!(ok);
    t.row(&[
        "Thm 6",
        "arbitrary G(9, 0.5)",
        if ok { "yes" } else { "NO" },
    ]);

    let h = generators::even_odd_bipartite_connected(10, 0.4, &mut rng);
    let eob = EobBfsToBuild::new(BfsFullRowOracle);
    let ok = matches!(run(&eob, &h, &mut RandomAdversary::new(3)).outcome,
                      Outcome::Success(ref g2) if *g2 == h);
    assert!(ok);
    t.row(&[
        "Thm 8",
        "EOB connected, n=10",
        if ok { "yes" } else { "NO" },
    ]);
    t.rule();
    println!(
        "Each reduction converts a problem oracle into BUILD on its family; the sweep\n\
         above shows that with o(n)-bit oracles the resulting board could not carry\n\
         the family — the contradiction completing each impossibility proof."
    );
}
