//! T1 — Table 1 regenerated: the observable semantics of the four models.
//!
//! For each model we run the probe protocol (message = "how many messages I
//! had seen when mine was fixed") on a path under a max-ID adversary and show
//! the freeze points, plus the free models' ability to steer the write order.

use wb_bench::probes::{Activation, Probe};
use wb_bench::table::{banner, TablePrinter};
use wb_graph::generators;
use wb_runtime::{run, MaxIdAdversary, Model, Outcome};

fn main() {
    let g = generators::path(6);
    banner("Table 1: four families of protocols (probe: seen-count at message-fix time)");
    let t = TablePrinter::new(
        &[
            "model",
            "activation",
            "write order",
            "seen counts",
            "reading",
        ],
        &[9, 11, 20, 20, 34],
    );
    for model in Model::ALL {
        let report = run(
            &Probe::new(model, Activation::Immediate),
            &g,
            &mut MaxIdAdversary,
        );
        let rows = match report.outcome {
            Outcome::Success(rows) => rows,
            other => panic!("{other:?}"),
        };
        let seen: Vec<u64> = rows.iter().map(|&(_, s)| s).collect();
        let reading = match model {
            Model::SimAsync => "message fixed before round 1",
            Model::SimSync => "message composed at write time",
            Model::Async => "frozen at activation (round 1)",
            Model::Sync => "composed at write time",
        };
        t.row(&[
            model.to_string(),
            "immediate".into(),
            format!("{:?}", report.write_order),
            format!("{seen:?}"),
            reading.into(),
        ]);
    }
    // Free models can gate activation: sequential gating defeats the max-ID
    // adversary entirely.
    for model in [Model::Async, Model::Sync] {
        let report = run(
            &Probe::new(model, Activation::Sequential),
            &g,
            &mut MaxIdAdversary,
        );
        let rows = match report.outcome {
            Outcome::Success(rows) => rows,
            other => panic!("{other:?}"),
        };
        let seen: Vec<u64> = rows.iter().map(|&(_, s)| s).collect();
        t.row(&[
            model.to_string(),
            "sequential".into(),
            format!("{:?}", report.write_order),
            format!("{seen:?}"),
            "activation gates force v1..vn".into(),
        ]);
    }
    t.rule();
    println!(
        "The simultaneous/free axis controls *who may be picked*; the async/sync axis \
         controls *when the message content is fixed* — Table 1 of the paper."
    );
}
