//! F1 — Figure 1 regenerated: the `G'_{s,t}` gadget and the Theorem 3
//! transformation TRIANGLE ⇒ BUILD (bipartite).
//!
//! Reproduces (a) the figure's combinatorial property on the paper's own
//! 7-node example and on random bipartite graphs, (b) the end-to-end
//! transformation with a Θ(n)-bit oracle, and (c) the message-size ledger
//! `2·f(n+1) + O(log n)` that feeds the Lemma 3 contradiction.

use wb_bench::table::{banner, TablePrinter};
use wb_core::TriangleFullRow;
use wb_graph::{checks, generators, Graph};
use wb_reductions::triangle_to_build::{fig1_gadget, TriangleToBuild};
use wb_runtime::{run, Outcome, Protocol, RandomAdversary};

fn main() {
    banner("Figure 1: G'_{s,t} — triangle ⟺ edge, on the paper's example");
    // The figure's graph: circled nodes 1..7, bipartite-ish; we use the
    // figure's test pair (2,7) plus every other pair on a random instance.
    let g = Graph::from_edges(
        7,
        &[
            (1, 4),
            (1, 5),
            (2, 5),
            (2, 6),
            (3, 6),
            (3, 7),
            (4, 7),
            (2, 7),
        ],
    );
    assert!(
        !checks::has_triangle(&g),
        "the base graph must be triangle-free"
    );
    let t = TablePrinter::new(
        &["pair (s,t)", "edge in G", "triangle in G'"],
        &[11, 10, 15],
    );
    for (s, tt) in [(2u32, 7u32), (1, 2), (4, 7), (5, 6)] {
        let gadget = fig1_gadget(&g, s, tt);
        t.row(&[
            format!("({s},{tt})"),
            format!("{}", g.has_edge(s, tt)),
            format!("{}", checks::has_triangle(&gadget)),
        ]);
        assert_eq!(checks::has_triangle(&gadget), g.has_edge(s, tt));
    }
    t.rule();

    banner("Exhaustive gadget check on random bipartite graphs");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(wb_bench::SEED);
    let mut pairs_checked = 0u64;
    for trial in 0..20 {
        let g = generators::bipartite_fixed(6, 6, 0.3 + 0.02 * trial as f64, &mut rng);
        for s in 1..=12u32 {
            for t2 in (s + 1)..=12u32 {
                assert_eq!(
                    checks::has_triangle(&fig1_gadget(&g, s, t2)),
                    g.has_edge(s, t2)
                );
                pairs_checked += 1;
            }
        }
    }
    println!("gadget property verified on {pairs_checked} (graph, pair) combinations");

    banner("Theorem 3 transformation: TRIANGLE oracle ⇒ BUILD (bipartite)");
    let transform = TriangleToBuild::new(TriangleFullRow);
    let t = TablePrinter::new(
        &[
            "n",
            "oracle bits f(n+1)",
            "transformed bits",
            "paper bound 2f+O(log n)",
            "rebuilt",
        ],
        &[5, 19, 17, 24, 8],
    );
    for n in [6usize, 10, 14, 18] {
        let g = generators::bipartite_fixed(n / 2, n - n / 2, 0.4, &mut rng);
        let report = run(&transform, &g, &mut RandomAdversary::new(n as u64));
        let max_bits = report.max_message_bits();
        let ok = matches!(report.outcome, Outcome::Success(ref h) if *h == g);
        let f_inner = TriangleFullRow.budget_bits(n + 1);
        t.row(&[
            format!("{n}"),
            format!("{f_inner}"),
            format!("{max_bits}"),
            format!("{}", transform.budget_bits(n)),
            format!("{ok}"),
        ]);
        assert!(ok);
    }
    t.rule();
    println!(
        "With an o(n)-bit oracle the transformed board would carry o(n²) bits, while\n\
         bipartite graphs with fixed halves need (n/2)² — Lemma 3 closes Theorem 3\n\
         (see exp_lower_bounds for the capacity curves)."
    );
}
