//! E9 — Theorem 9: message size and synchronization power are orthogonal.
//!
//! Positive half: SUBGRAPH_f solved in the weakest model at f(n) bits per
//! node, across f regimes. Negative half: the counting that rules out
//! `PSYNC[g]` for `g = o(f)` in the regime where the paper's argument fires
//! (f = Θ(n)), with the honest record that for strongly sublinear f the
//! stated counting is insufficient.

use wb_bench::table::{banner, TablePrinter};
use wb_core::SubgraphPrefix;
use wb_graph::generators;
use wb_math::counting::MessageRegime;
use wb_math::id_bits;
use wb_reductions::subgraph_bound::{separation, PrefixBuild};
use wb_runtime::{run, Outcome, Protocol, RandomAdversary};

fn main() {
    banner("Positive half: SUBGRAPH_f ∈ PSIMASYNC[f(n)] across regimes");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(wb_bench::SEED ^ 9);
    let t = TablePrinter::new(
        &["n", "f(n)", "bits/node", "⌈lg n⌉+f", "exact"],
        &[7, 8, 10, 10, 7],
    );
    for n in [64usize, 256, 1024] {
        for (f, name) in [
            ((n as f64).sqrt().ceil() as usize, "√n"),
            (n / id_bits(n) as usize, "n/lg n"),
            (n / 2, "n/2"),
        ] {
            let g = generators::gnp(n, 2.0 / n as f64, &mut rng);
            let p = SubgraphPrefix::new(f);
            let report = run(&p, &g, &mut RandomAdversary::new(f as u64));
            let bits = report.max_message_bits();
            let ok = matches!(report.outcome, Outcome::Success(ref h) if *h == g.induced_prefix(f));
            assert!(ok);
            t.row(&[
                format!("{n}"),
                name.to_string(),
                format!("{bits}"),
                format!("{}", id_bits(n) as usize + f),
                format!("{ok}"),
            ]);
        }
    }
    t.rule();

    banner("BUILD on the prefix family via SUBGRAPH_f (the Theorem 9 argument)");
    for (n, f) in [(40usize, 10usize), (60, 60)] {
        let mut g = wb_graph::Graph::empty(n);
        let dense = generators::gnp(f, 0.5, &mut rng);
        for (u, v) in dense.edges() {
            g.add_edge(u, v);
        }
        let p = PrefixBuild::new(f);
        let report = run(&p, &g, &mut RandomAdversary::new(1));
        let ok = matches!(report.outcome, Outcome::Success(ref h) if *h == g);
        println!(
            "  n = {n}, f = {f}: family member rebuilt exactly = {ok} ({} bits/node)",
            p.budget_bits(n)
        );
        assert!(ok);
    }

    banner("Negative half: capacity C(f,2) vs n·g(n) — where the separation fires");
    let t = TablePrinter::new(
        &["n", "f(n)", "g(n)", "required", "capacity", "verdict"],
        &[9, 9, 9, 14, 14, 12],
    );
    for n in [1024u64, 1 << 14, 1 << 18] {
        for (f, fname) in [(n, "n"), (MessageRegime::SqrtN.bits(n), "√n")] {
            for (gb, gname) in [
                (MessageRegime::LogN { c: 4 }.bits(n), "4 lg n"),
                (MessageRegime::SqrtN.bits(n), "√n"),
            ] {
                let v = separation(n, f, gb);
                t.row(&[
                    format!("{n}"),
                    fname.to_string(),
                    gname.to_string(),
                    format!("{}", v.required_bits),
                    format!("{}", v.capacity_bits),
                    if v.impossible() {
                        "IMPOSSIBLE".to_string()
                    } else {
                        "open".into()
                    },
                ]);
            }
        }
    }
    t.rule();
    println!(
        "At f = Θ(n), every g = o(n) regime is impossible: SUBGRAPH_f needs message\n\
         *size*, which no amount of synchronization buys — while MIS (exp_mis) needs\n\
         synchronization, which no message size buys in SIMASYNC. The two resources\n\
         are orthogonal (Theorem 9 + Theorem 6). For strongly sublinear f the paper's\n\
         counting does not fire ('open' rows) — recorded honestly in EXPERIMENTS.md."
    );
}
