//! E1 + E13 — Theorem 2 and Lemma 1: BUILD on bounded-degeneracy graphs.
//!
//! Regenerates the message-size accounting of Lemma 1 (`≤ k(k+1)·log n +
//! O(log n)` bits, measured, not assumed), exercises reconstruction across
//! the graph classes the paper names (forests, k-trees ≈ bounded treewidth,
//! planar-like degeneracy-5, random k-degenerate), the robust rejection of
//! out-of-class inputs, and the crossover against the naive Θ(n)-bit
//! baseline.

use wb_bench::table::{banner, TablePrinter};
use wb_bench::workloads::Workload;
use wb_core::{BuildDegenerate, BuildError, NaiveBuild};
use wb_graph::generators;
use wb_math::id_bits;
use wb_par::par_map;
use wb_runtime::{run, Outcome, Protocol, RandomAdversary};

fn main() {
    banner("Theorem 2 / Lemma 1: message bits vs k(k+1)·log n (measured over runs)");
    let t = TablePrinter::new(
        &[
            "workload",
            "n",
            "k",
            "max bits",
            "k(k+1)+2 ·⌈lg n⌉",
            "rebuilt",
        ],
        &[26, 7, 3, 9, 17, 8],
    );
    let cases: Vec<(Workload, usize, usize)> = vec![
        (Workload::Tree, 100, 1),
        (Workload::Tree, 10_000, 1),
        (Workload::Forest, 1_000, 1),
        (Workload::KTree(2), 1_000, 2),
        (Workload::KTree(4), 1_000, 4),
        (Workload::KDegenerate(3), 1_000, 3),
        (Workload::PlanarLike, 1_000, 5),
        (Workload::PlanarLike, 5_000, 5),
    ];
    let rows = par_map(&cases, |&(w, n, k)| {
        let g = w.generate(n, wb_bench::SEED ^ n as u64);
        let p = BuildDegenerate::new(k);
        let report = run(&p, &g, &mut RandomAdversary::new(n as u64));
        let bits = report.max_message_bits();
        let bound = (k * (k + 1) + 2) * id_bits(n) as usize;
        let ok = matches!(report.outcome, Outcome::Success(Ok(ref h)) if h == &g);
        (w.name(), n, k, bits, bound, ok)
    });
    for (name, n, k, bits, bound, ok) in rows {
        assert!(bits <= bound && ok);
        t.row(&[
            name,
            format!("{n}"),
            format!("{k}"),
            format!("{bits}"),
            format!("{bound}"),
            format!("{ok}"),
        ]);
    }
    t.rule();

    banner("Recognition robustness: out-of-class inputs are rejected, never mis-built");
    let t = TablePrinter::new(&["input", "k", "verdict"], &[26, 3, 18]);
    for (name, g, k) in [
        ("cycle C100", generators::cycle(100), 1usize),
        ("clique K6", generators::clique(6), 3),
        (
            "K5 + forest",
            generators::clique(5).disjoint_union(&Workload::Forest.generate(20, 1)),
            2,
        ),
    ] {
        let p = BuildDegenerate::new(k);
        let report = run(&p, &g, &mut RandomAdversary::new(3));
        let verdict = match report.outcome {
            Outcome::Success(Err(BuildError::NotKDegenerate)) => "rejected".to_string(),
            Outcome::Success(Ok(_)) => "BUILT (unexpected)".to_string(),
            other => format!("{other:?}"),
        };
        assert_eq!(verdict, "rejected");
        t.row(&[name.to_string(), format!("{k}"), verdict]);
    }
    t.rule();

    banner("E13: bits/node crossover vs the naive Θ(n) baseline (k = 5 inputs)");
    let t = TablePrinter::new(
        &["n", "degeneracy bits", "naive bits", "ratio"],
        &[8, 16, 12, 8],
    );
    for n in [50usize, 100, 500, 1_000, 5_000, 20_000] {
        let p = BuildDegenerate::new(5);
        let smart = p.budget_bits(n) as f64;
        let naive = NaiveBuild.budget_bits(n) as f64;
        t.row(&[
            format!("{n}"),
            format!("{}", smart as u64),
            format!("{}", naive as u64),
            format!("{:.2}×", naive / smart),
        ]);
    }
    t.rule();
    println!(
        "The O(k² log n) protocol overtakes the naive whole-neighborhood baseline as\n\
         soon as n ≫ k² log n — the asymptotic separation Theorem 2 formalizes."
    );
}
