//! E7 + E10 — Theorems 7 and 10, Corollary 4, and the Open Problem 3
//! ablation: BFS forests from edge-counting certificates.

use wb_bench::table::{banner, TablePrinter};
use wb_bench::workloads::Workload;
use wb_core::bfs::BfsOutput;
use wb_core::{AsyncBipartiteBfs, EobBfs, SyncBfs};
use wb_graph::{checks, enumerate, generators, Graph};
use wb_par::par_reduce;
use wb_runtime::exhaustive::{assert_all_schedules, for_each_schedule};
use wb_runtime::{run, Outcome, RandomAdversary};

fn main() {
    banner("Theorem 10 (SYNC BFS): exhaustive on all 64 labeled graphs, n = 4");
    let mut schedules = 0u64;
    for g in enumerate::all_graphs(4) {
        schedules += assert_all_schedules(&SyncBfs, &g, 100, |f| *f == checks::bfs_forest(&g));
    }
    println!("{schedules} schedules, every forest equals the canonical min-ID BFS forest");

    banner("Randomized sweeps (forest = reference, deadlock-free), parallel");
    let t = TablePrinter::new(
        &["protocol", "workload", "n", "runs", "all correct"],
        &[14, 22, 7, 6, 12],
    );
    let sweeps: Vec<(&str, Workload, usize)> = vec![
        ("SYNC", Workload::GnpAvgDeg(3), 200),
        ("SYNC", Workload::GnpAvgDeg(8), 200),
        ("SYNC", Workload::KDegenerate(3), 400),
        ("SYNC", Workload::TwoCliques, 100),
        ("ASYNC (EOB)", Workload::EobConnected, 200),
        ("ASYNC (EOB)", Workload::EobConnected, 401),
    ];
    for (tag, w, n) in sweeps {
        let seeds: Vec<u64> = (0..32).collect();
        let correct = par_reduce(
            &seeds,
            |&seed| {
                let g = w.generate(n, seed);
                let ok = if tag == "SYNC" {
                    matches!(run(&SyncBfs, &g, &mut RandomAdversary::new(seed)).outcome,
                             Outcome::Success(ref f) if *f == checks::bfs_forest(&g))
                } else {
                    matches!(run(&EobBfs, &g, &mut RandomAdversary::new(seed)).outcome,
                             Outcome::Success(BfsOutput::Forest(ref f)) if *f == checks::bfs_forest(&g))
                };
                u64::from(ok)
            },
            || 0u64,
            |a, b| a + b,
        );
        assert_eq!(correct, 32);
        t.row(&[
            tag.to_string(),
            w.name(),
            format!("{n}"),
            "32".to_string(),
            "yes".to_string(),
        ]);
    }
    t.rule();

    banner("Theorem 7 (EOB-BFS): invalid inputs drain to a verdict, never deadlock");
    let seeds: Vec<u64> = (0..32).collect();
    let verdicts = par_reduce(
        &seeds,
        |&seed| {
            let mut g = Workload::EobConnected.generate(101, seed);
            g.add_edge(3, 9); // plant an odd-odd edge
            u64::from(matches!(
                run(&EobBfs, &g, &mut RandomAdversary::new(seed)).outcome,
                Outcome::Success(BfsOutput::NotEvenOddBipartite)
            ))
        },
        || 0u64,
        |a, b| a + b,
    );
    println!(
        "32/32 planted-violation runs returned NotEvenOddBipartite: {}",
        verdicts == 32
    );
    assert_eq!(verdicts, 32);

    banner("Corollary 4: ASYNC BFS on bipartite (non-EOB) graphs");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(wb_bench::SEED);
    for (a, b) in [(20usize, 15usize), (40, 40)] {
        let g = generators::bipartite_fixed(a, b, 0.1, &mut rng);
        let report = run(&AsyncBipartiteBfs, &g, &mut RandomAdversary::new(9));
        let ok = matches!(report.outcome, Outcome::Success(ref f) if *f == checks::bfs_forest(&g));
        println!("  bipartite {a}+{b}: correct forest = {ok}");
        assert!(ok);
    }

    banner("Open Problem 3 ablation: frozen messages vs write-time messages");
    // Triangle with a 2-tail: every ASYNC schedule deadlocks, every SYNC
    // schedule succeeds.
    let g = Graph::from_edges(5, &[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)]);
    let mut total = 0u64;
    let mut deadlocks = 0u64;
    let walk = for_each_schedule(&AsyncBipartiteBfs, &g, 10_000, |report| {
        total += 1;
        if matches!(report.outcome, Outcome::Deadlock { .. }) {
            deadlocks += 1;
        }
    });
    assert!(!walk.truncated, "the universal claim needs every schedule");
    let sync_ok = assert_all_schedules(&SyncBfs, &g, 10_000, |f| *f == checks::bfs_forest(&g));
    println!(
        "triangle+tail: ASYNC deadlocks {deadlocks}/{total} schedules; SYNC correct on all {sync_ok} —\n\
         the d₀ correction is only computable at write time, supporting the paper's\n\
         conjecture that BFS ∉ PASYNC (Open Problem 3)."
    );
    assert_eq!(deadlocks, total);
}
