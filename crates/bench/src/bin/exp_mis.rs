//! E4 — Theorem 5: the greedy SIMSYNC rooted-MIS protocol under adversary
//! sweeps: exhaustive schedules on enumerated graphs, large randomized
//! sweeps, extremal priority orders, and the log n message ledger.

use wb_bench::table::{banner, TablePrinter};
use wb_core::MisGreedy;
use wb_graph::{checks, enumerate, generators, NodeId};
use wb_math::id_bits;
use wb_par::par_reduce;
use wb_runtime::exhaustive::assert_all_schedules;
use wb_runtime::{run, Outcome, PriorityAdversary, RandomAdversary};

fn main() {
    banner("Exhaustive model checking (every graph × every root × every schedule)");
    let mut total_schedules = 0u64;
    let mut graphs = 0u64;
    for g in enumerate::all_graphs(4) {
        graphs += 1;
        for root in 1..=4 {
            total_schedules += assert_all_schedules(&MisGreedy::new(root), &g, 30, |set| {
                checks::is_rooted_mis(&g, set, root)
            });
        }
    }
    println!("n=4: {graphs} graphs × 4 roots, {total_schedules} schedules — all outputs valid rooted MIS");

    banner("Randomized sweep (G(n,p) × seeds × roots), parallel");
    let t = TablePrinter::new(&["n", "p", "runs", "valid", "avg |MIS|"], &[7, 6, 7, 7, 10]);
    for (n, p) in [
        (50usize, 0.05f64),
        (50, 0.3),
        (200, 0.02),
        (200, 0.2),
        (500, 0.01),
    ] {
        let cases: Vec<u64> = (0..64).collect();
        let (valid, size_sum) = par_reduce(
            &cases,
            |&seed| {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let root = (seed % n as u64 + 1) as NodeId;
                let report = run(
                    &MisGreedy::new(root),
                    &g,
                    &mut RandomAdversary::new(seed ^ 0xF00),
                );
                match report.outcome {
                    Outcome::Success(set) => {
                        assert!(checks::is_rooted_mis(&g, &set, root));
                        (1u64, set.len() as u64)
                    }
                    other => panic!("{other:?}"),
                }
            },
            || (0u64, 0u64),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        t.row(&[
            format!("{n}"),
            format!("{p}"),
            format!("{}", cases.len()),
            format!("{valid}"),
            format!("{:.1}", size_sum as f64 / valid as f64),
        ]);
    }
    t.rule();

    banner("Extremal adversaries (root-first, root-last, neighbors-first)");
    let g = generators::star(64);
    for root in [1 as NodeId, 33] {
        for (tag, priority) in [
            ("identity", (1..=64).collect::<Vec<NodeId>>()),
            ("reverse", (1..=64).rev().collect()),
            ("root last", {
                let mut v: Vec<NodeId> = (1..=64).filter(|&x| x != root).collect();
                v.push(root);
                v
            }),
        ] {
            let report = run(
                &MisGreedy::new(root),
                &g,
                &mut PriorityAdversary::new(&priority),
            );
            let set = report.outcome.unwrap();
            assert!(checks::is_rooted_mis(&g, &set, root));
            println!(
                "  star K_1,63, root {root}, order {tag}: |MIS| = {}",
                set.len()
            );
        }
    }

    banner("Message ledger");
    let n = 1000;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(wb_bench::SEED);
    let g = generators::gnp(n, 0.01, &mut rng);
    let report = run(&MisGreedy::new(1), &g, &mut RandomAdversary::new(5));
    println!(
        "n = {n}: every message exactly {} bits (= ⌈lg n⌉ + 1 = {}), total {} bits",
        report.max_message_bits(),
        id_bits(n) + 1,
        report.total_bits()
    );
    assert_eq!(report.max_message_bits(), id_bits(n) as usize + 1);
}
