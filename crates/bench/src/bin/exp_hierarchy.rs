//! E11 — Theorem 4: the computing-power lattice, demonstrated.
//!
//! Every protocol of a weaker model runs unchanged in every stronger model
//! (Lemma 4, via the `Promote` adapters), with identical problem-level
//! outputs and unchanged message budgets; the separator problems place the
//! strict inclusions.

use wb_bench::table::{banner, TablePrinter};
use wb_bench::workloads::Workload;
use wb_core::{two_cliques::TwoCliquesVerdict, BuildDegenerate, MisGreedy, TwoCliques};
use wb_graph::checks;
use wb_math::counting::MessageRegime;
use wb_reductions::lemma3::{verdict, Family};
use wb_runtime::adapt::Promote;
use wb_runtime::{run, Model, Outcome, Protocol, RandomAdversary};

fn main() {
    banner("Lemma 4: weak protocols run unchanged in strong models");
    let t = TablePrinter::new(
        &[
            "protocol",
            "native model",
            "target",
            "output intact",
            "budget intact",
        ],
        &[20, 13, 10, 14, 14],
    );
    let g2 = Workload::KDegenerate(2).generate(18, 4);
    for target in Model::ALL {
        let p = Promote::new(BuildDegenerate::new(2), target);
        let ok = (0..4).all(|s| {
            matches!(run(&p, &g2, &mut RandomAdversary::new(s)).outcome,
                     Outcome::Success(Ok(ref h)) if h == &g2)
        });
        let budget_ok = p.budget_bits(18) == BuildDegenerate::new(2).budget_bits(18);
        assert!(ok && budget_ok);
        t.row(&[
            "BUILD (k=2)".to_string(),
            "SIMASYNC".to_string(),
            target.to_string(),
            format!("{ok}"),
            format!("{budget_ok}"),
        ]);
    }
    let gm = Workload::GnpAvgDeg(4).generate(24, 5);
    for target in [Model::SimSync, Model::Async, Model::Sync] {
        let p = Promote::new(MisGreedy::new(7), target);
        let ok = (0..4).all(|s| {
            matches!(run(&p, &gm, &mut RandomAdversary::new(s)).outcome,
                     Outcome::Success(ref set) if checks::is_rooted_mis(&gm, set, 7))
        });
        assert!(ok);
        t.row(&[
            "rooted MIS".to_string(),
            "SIMSYNC".to_string(),
            target.to_string(),
            format!("{ok}"),
            "true".to_string(),
        ]);
    }
    let gt = Workload::TwoCliques.generate(12, 0);
    for target in [Model::Async, Model::Sync] {
        let p = Promote::new(TwoCliques, target);
        let ok = matches!(
            run(&p, &gt, &mut RandomAdversary::new(3)).outcome,
            Outcome::Success(TwoCliquesVerdict::TwoCliques)
        );
        assert!(ok);
        t.row(&[
            "2-CLIQUES".to_string(),
            "SIMSYNC".to_string(),
            target.to_string(),
            format!("{ok}"),
            "true".to_string(),
        ]);
    }
    t.rule();

    banner("The strict rungs (separator problems + counting at n = 16384)");
    let n = 1u64 << 14;
    let regime = MessageRegime::LogN { c: 8 };
    let rows = [
        (
            "PSIMASYNC ⊊ PSIMSYNC",
            "rooted MIS (Thm 5/6)",
            verdict(Family::AllGraphs, n, regime).impossible(),
        ),
        (
            "PSIMSYNC ⊊ PASYNC",
            "EOB-BFS (Thm 7/8)",
            verdict(Family::EvenOddBipartite, n, regime).impossible(),
        ),
        (
            "PASYNC ⊆ PSYNC",
            "BFS in SYNC; strictness open (Open Pb 3)",
            false,
        ),
    ];
    let t = TablePrinter::new(&["inclusion", "separator", "counting fires"], &[22, 38, 15]);
    for (inc, sep, fires) in rows {
        t.row(&[inc.to_string(), sep.to_string(), format!("{fires}")]);
    }
    t.rule();
    println!(
        "Orthogonality: SUBGRAPH_f ∈ PSIMASYNC[f] \\ PSYNC[o(f)] (message size can't be\n\
         bought with synchrony — exp_subgraph), while MIS ∈ PSIMSYNC[log n] \\\n\
         PSIMASYNC[o(n)] (synchrony can't be bought with message size — exp_mis)."
    );
}
