//! E-MATRIX — the batch experiment harness: every registry protocol × every
//! admissible model × a panel of graph families, each cell certified and
//! independently re-verified.
//!
//! This replaces ad hoc per-table sweep loops as the one reproducible
//! experiment suite: for each protocol in [`wb_core::registry::PROTOCOLS`],
//! each model that includes the protocol's native model (Lemma 4), and each
//! family in the panel, it runs the certifying exhaustive walk
//! ([`wb_bench::certify`]) at one small `n`, then re-checks the emitted
//! `wb-cert/v1` line through the independent `wb-verify` crate — the
//! producer and the checker disagreeing fails the run.
//!
//! ```text
//! exp_matrix [--n N] [--seed S] [--out DIR]
//! ```
//!
//! Outputs, written under `--out DIR` (default `exp_matrix_out`):
//!
//! - `results.jsonl` — one row per cell (protocol, model, family, n,
//!   states, terminals, merged, failures, verified);
//! - `certificates.jsonl` — every certificate, one `wb-cert/v1` line each,
//!   re-checkable offline with `whiteboard verify`;
//! - `REPORT.md` — markdown summary: totals, per-protocol aggregate table,
//!   and the failing cells (expected only for `async-bipartite-bfs`, the
//!   `total: false` ablation protocol, whose off-promise deadlocks are
//!   certified with witnesses).
//!
//! Exit is nonzero if any certificate fails verification or any
//! `total: true` protocol has a failing terminal anywhere in the matrix.

use std::fmt::Write as _;
use std::path::PathBuf;
use wb_bench::certify::{certify_spec, Provenance};
use wb_bench::json::escape;
use wb_core::registry::PROTOCOLS;
use wb_core::workload::graph_family;
use wb_runtime::{ExploreConfig, Model};

/// Graph-family panel: one spec per structural regime the protocols care
/// about (promise graphs included so oracles exercise both branches).
/// `triangle-tail` is a fixed off-promise instance — an odd triangle with a
/// pendant path — kept in the panel so the matrix always contains
/// witness-bearing cells (`async-bipartite-bfs` deadlocks on it).
const FAMILIES: &[&str] = &[
    "path",
    "cycle",
    "clique",
    "tree",
    "gnp:2",
    "eob",
    "bipartite",
    "two-cliques",
    "triangle-tail",
];

/// Resolve a panel entry: the fixed instance by name, everything else via
/// the workload registry.
fn panel_graph(family: &str, n: usize, seed: u64) -> Result<wb_graph::Graph, String> {
    if family == "triangle-tail" {
        return Ok(wb_graph::Graph::from_edges(
            5,
            &[(1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        ));
    }
    graph_family(family, n, seed)
}

struct Cell {
    protocol: &'static str,
    model: Model,
    family: &'static str,
    n: usize,
    states: u64,
    terminals: u64,
    merged: u64,
    failures: usize,
}

impl Cell {
    fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":{},\"model\":\"{}\",\"family\":{},\"n\":{},\"states\":{},\
             \"terminals\":{},\"merged\":{},\"failures\":{},\"verified\":true}}",
            escape(self.protocol),
            self.model,
            escape(self.family),
            self.n,
            self.states,
            self.terminals,
            self.merged,
            self.failures,
        )
    }
}

fn main() -> std::process::ExitCode {
    let mut n = 5usize;
    let mut seed = wb_bench::SEED;
    let mut out = PathBuf::from("exp_matrix_out");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match (a.as_str(), it.next()) {
            ("--n", Some(v)) => n = v.parse().expect("--n expects a number"),
            ("--seed", Some(v)) => seed = v.parse().expect("--seed expects a number"),
            ("--out", Some(v)) => out = PathBuf::from(v),
            _ => {
                eprintln!("usage: exp_matrix [--n N] [--seed S] [--out DIR]");
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    std::fs::create_dir_all(&out).expect("create output directory");

    let config = ExploreConfig::default();
    let mut cells: Vec<Cell> = Vec::new();
    let mut cert_lines = String::new();
    let mut errors: Vec<String> = Vec::new();
    let mut total_protocol_failures: Vec<String> = Vec::new();

    for info in PROTOCOLS {
        for model in Model::ALL {
            if !model.includes(info.model) {
                continue;
            }
            for family in FAMILIES {
                let g = match panel_graph(family, n, seed) {
                    Ok(g) => g,
                    Err(e) => {
                        errors.push(format!("{}/{model}/{family}: workload: {e}", info.name));
                        continue;
                    }
                };
                let run = match certify_spec(
                    info.name,
                    &g,
                    Some(model),
                    Provenance {
                        family: Some(family),
                        seed: Some(seed),
                    },
                    &config,
                ) {
                    Ok(run) => run,
                    Err(e) => {
                        errors.push(format!("{}/{model}/{family}: certify: {e}", info.name));
                        continue;
                    }
                };
                let line = run.certificate.to_json_line();
                if let Err(e) = wb_verify::verify_line(&line) {
                    errors.push(format!(
                        "{}/{model}/{family}: VERIFY FAILED: {e}",
                        info.name
                    ));
                    continue;
                }
                if run.failures > 0 && info.total {
                    total_protocol_failures.push(format!(
                        "{}/{model}/{family}: {} failing terminal(s) on a total protocol",
                        info.name, run.failures
                    ));
                }
                cert_lines.push_str(&line);
                cert_lines.push('\n');
                cells.push(Cell {
                    protocol: info.name,
                    model,
                    family,
                    n: g.n(),
                    states: run.distinct_states,
                    terminals: run.terminals,
                    merged: run.merged,
                    failures: run.failures,
                });
            }
        }
        eprintln!("certified {:<22} ({} cells so far)", info.name, cells.len());
    }

    let rows: String = cells.iter().map(|c| c.to_json() + "\n").collect();
    std::fs::write(out.join("results.jsonl"), rows).expect("write results.jsonl");
    std::fs::write(out.join("certificates.jsonl"), &cert_lines).expect("write certificates.jsonl");

    let failing_cells: Vec<&Cell> = cells.iter().filter(|c| c.failures > 0).collect();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# E-MATRIX: certified protocol × model × family sweep\n"
    );
    let _ = writeln!(
        md,
        "- `n = {n}`, seed `{seed:#x}`, {} protocols, {} families",
        PROTOCOLS.len(),
        FAMILIES.len()
    );
    let _ = writeln!(
        md,
        "- {} cells certified, every certificate re-verified by `wb-verify`",
        cells.len()
    );
    let _ = writeln!(
        md,
        "- {} cells with failing terminals (witnesses certified), {} errors\n",
        failing_cells.len(),
        errors.len()
    );
    let _ = writeln!(
        md,
        "| protocol | model | cells | states | terminals | failing cells |"
    );
    let _ = writeln!(md, "|---|---|---:|---:|---:|---:|");
    for info in PROTOCOLS {
        for model in Model::ALL {
            let group: Vec<&Cell> = cells
                .iter()
                .filter(|c| c.protocol == info.name && c.model == model)
                .collect();
            if group.is_empty() {
                continue;
            }
            let _ = writeln!(
                md,
                "| {} | {model} | {} | {} | {} | {} |",
                info.name,
                group.len(),
                group.iter().map(|c| c.states).sum::<u64>(),
                group.iter().map(|c| c.terminals).sum::<u64>(),
                group.iter().filter(|c| c.failures > 0).count(),
            );
        }
    }
    if !failing_cells.is_empty() {
        let _ = writeln!(md, "\n## Failing cells (certified witnesses)\n");
        let _ = writeln!(md, "| protocol | model | family | failing terminals |");
        let _ = writeln!(md, "|---|---|---|---:|");
        for c in &failing_cells {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} |",
                c.protocol, c.model, c.family, c.failures
            );
        }
    }
    if !errors.is_empty() {
        let _ = writeln!(md, "\n## Errors\n");
        for e in &errors {
            let _ = writeln!(md, "- {e}");
        }
    }
    std::fs::write(out.join("REPORT.md"), md).expect("write REPORT.md");

    eprintln!(
        "wrote {} cells to {} (results.jsonl, certificates.jsonl, REPORT.md)",
        cells.len(),
        out.display()
    );
    for e in &errors {
        eprintln!("error: {e}");
    }
    for f in &total_protocol_failures {
        eprintln!("error: {f}");
    }
    if errors.is_empty() && total_protocol_failures.is_empty() {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
