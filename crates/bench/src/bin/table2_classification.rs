//! T2 — Table 2 regenerated: the problem × model classification.
//!
//! Positive cells ("yes") are established *empirically*: the protocol runs in
//! its declared model over exhaustive schedules on enumerated small graphs
//! plus randomized larger instances, checked against reference oracles.
//! Negative cells ("no") are established by the executable reduction plus the
//! Lemma 3 counting verdict at a representative size. The BFS row's "?" cells
//! reproduce the paper's open problem.

use wb_bench::table::{banner, TablePrinter};
use wb_bench::workloads::Workload;
use wb_core::{
    bfs::BfsOutput, two_cliques::TwoCliquesVerdict, BuildDegenerate, EobBfs, MisGreedy, SyncBfs,
    TwoCliques,
};
use wb_graph::{checks, enumerate};
use wb_math::counting::MessageRegime;
use wb_par::par_map;
use wb_reductions::lemma3::{verdict, Family};
use wb_runtime::adapt::Promote;
use wb_runtime::exhaustive::assert_all_schedules;
use wb_runtime::{run, Model, Outcome, RandomAdversary};

/// Verify BUILD-k-degenerate positively in every model via promotion.
fn build_row() -> [&'static str; 4] {
    let graphs: Vec<_> = (0..8)
        .map(|s| Workload::KDegenerate(2).generate(20, s))
        .collect();
    let ok = par_map(&graphs, |g| {
        Model::ALL.iter().all(|&m| {
            let p = Promote::new(BuildDegenerate::new(2), m);
            (0..3).all(|seed| {
                matches!(run(&p, g, &mut RandomAdversary::new(seed)).outcome,
                         Outcome::Success(Ok(ref h)) if h == g)
            })
        })
    });
    assert!(ok.iter().all(|&b| b));
    ["yes", "yes", "yes", "yes"]
}

/// MIS: exhaustive in SIMSYNC; counting impossibility in SIMASYNC.
fn mis_row() -> [&'static str; 4] {
    for g in enumerate::all_connected_graphs(4) {
        for root in 1..=4 {
            assert_all_schedules(&MisGreedy::new(root), &g, 30, |s| {
                checks::is_rooted_mis(&g, s, root)
            });
        }
    }
    assert!(verdict(Family::AllGraphs, 1 << 12, MessageRegime::LogN { c: 8 }).impossible());
    ["no", "yes", "yes", "yes"]
}

/// TRIANGLE: counting impossibility in SIMASYNC; Table 2's SIMSYNC cell is
/// claimed in the paper without an in-text protocol (DESIGN.md §5) — we print
/// the claim with a footnote marker.
fn triangle_row() -> [&'static str; 4] {
    assert!(verdict(
        Family::BipartiteFixedHalves,
        1 << 12,
        MessageRegime::LogN { c: 8 }
    )
    .impossible());
    ["no", "yes*", "yes*", "yes*"]
}

/// EOB-BFS: exhaustive in ASYNC (valid + invalid inputs); counting in SIMSYNC.
fn eob_row() -> [&'static str; 4] {
    let valid = Workload::EobConnected.generate(7, 3);
    assert_all_schedules(&EobBfs, &valid, 2_000_000, |out| {
        *out == BfsOutput::Forest(checks::bfs_forest(&valid))
    });
    assert!(verdict(
        Family::EvenOddBipartite,
        1 << 12,
        MessageRegime::LogN { c: 8 }
    )
    .impossible());
    ["no", "no", "yes", "yes"]
}

/// BFS: exhaustive in SYNC on all 4-node graphs; "?" elsewhere (open).
fn bfs_row() -> [&'static str; 4] {
    for g in enumerate::all_graphs(4) {
        assert_all_schedules(&SyncBfs, &g, 100, |f| *f == checks::bfs_forest(&g));
    }
    ["?", "?", "?", "yes"]
}

/// 2-CLIQUES: exhaustive in SIMSYNC on 6-node instances.
fn two_cliques_row() -> [&'static str; 4] {
    let yes = Workload::TwoCliques.generate(6, 0);
    assert_all_schedules(&TwoCliques, &yes, 1000, |v| {
        *v == TwoCliquesVerdict::TwoCliques
    });
    let no = Workload::Impostor.generate(6, 1);
    assert_all_schedules(&TwoCliques, &no, 1000, |v| {
        *v == TwoCliquesVerdict::NotTwoCliques
    });
    ["?", "yes", "yes", "yes"]
}

fn main() {
    banner("Table 2: classification of communication models (re-derived)");
    let t = TablePrinter::new(
        &["problem", "SIMASYNC", "SIMSYNC", "ASYNC", "SYNC"],
        &[22, 9, 8, 6, 5],
    );
    let rows: [(&str, [&str; 4]); 6] = [
        ("BUILD k-degenerate", build_row()),
        ("rooted MIS", mis_row()),
        ("TRIANGLE", triangle_row()),
        ("EOB-BFS", eob_row()),
        ("2-CLIQUES", two_cliques_row()),
        ("BFS", bfs_row()),
    ];
    for (name, cells) in rows {
        t.row(&[name, cells[0], cells[1], cells[2], cells[3]]);
    }
    t.rule();
    println!(
        "yes  = protocol executed here (exhaustive schedules on enumerated graphs +\n\
         \u{20}      randomized larger instances), output checked against reference oracles\n\
         no   = executable reduction to BUILD + Lemma 3 capacity verdict at n = 4096\n\
         yes* = claimed in the paper's Table 2 without an in-text protocol; reproduced\n\
         \u{20}      here for bounded-degeneracy inputs only (see DESIGN.md §5)\n\
         ?    = open in the paper (Open Problems 1 and 3), left open here"
    );
}
