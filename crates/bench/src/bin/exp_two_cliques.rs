//! E6 + E12 — §5.1 and Open Problem 4: 2-CLIQUES, deterministic SIMSYNC and
//! randomized public-coin SIMASYNC.
//!
//! Includes the "creeping adversary" stress that motivates our strengthened
//! acceptance test (DESIGN.md), the connectivity correspondence, and the
//! empirical error-rate curve of the randomized protocol vs fingerprint
//! width.

use wb_bench::table::{banner, TablePrinter};
use wb_bench::workloads::Workload;
use wb_core::two_cliques::TwoCliquesVerdict;
use wb_core::{TwoCliques, TwoCliquesRandomized};
use wb_graph::{checks, NodeId};
use wb_par::par_reduce;
use wb_runtime::exhaustive::assert_all_schedules;
use wb_runtime::{run, MinIdAdversary, PriorityAdversary, RandomAdversary};

fn main() {
    banner("Deterministic SIMSYNC protocol: exhaustive schedules (n = 6)");
    let yes = Workload::TwoCliques.generate(6, 0);
    let c1 = assert_all_schedules(&TwoCliques, &yes, 1000, |v| {
        *v == TwoCliquesVerdict::TwoCliques
    });
    let no = Workload::Impostor.generate(6, 1);
    let c2 = assert_all_schedules(&TwoCliques, &no, 1000, |v| {
        *v == TwoCliquesVerdict::NotTwoCliques
    });
    println!("two cliques 2×K3: {c1} schedules all accept; impostor: {c2} schedules all reject");

    banner("Creeping adversary (BFS expansion order) on larger impostors");
    let t = TablePrinter::new(&["2n", "order", "verdict"], &[6, 12, 16]);
    for half in [5usize, 10, 25, 50] {
        let g = Workload::Impostor.generate(2 * half, half as u64);
        let order: Vec<NodeId> = {
            let f = checks::bfs_forest(&g);
            let mut ids: Vec<NodeId> = (1..=g.n() as NodeId).collect();
            ids.sort_by_key(|&v| f.layer[v as usize - 1]);
            ids
        };
        let report = run(&TwoCliques, &g, &mut PriorityAdversary::new(&order));
        let v = report.outcome.unwrap();
        assert_eq!(v, TwoCliquesVerdict::NotTwoCliques);
        t.row(&[
            format!("{}", 2 * half),
            "creeping".to_string(),
            format!("{v:?}"),
        ]);
    }
    t.rule();
    println!(
        "(The creeping order makes every node copy label 0; the paper's bare\n\
         'no-message' test would accept — the ∃-label-1 strengthening rejects.)"
    );

    banner("Connectivity correspondence on the promise class");
    for half in [4usize, 8, 16] {
        for (g, desc) in [
            (Workload::TwoCliques.generate(2 * half, 0), "two cliques"),
            (Workload::Impostor.generate(2 * half, 3), "impostor"),
        ] {
            let verdict = run(&TwoCliques, &g, &mut RandomAdversary::new(7))
                .outcome
                .unwrap();
            assert_eq!(
                verdict == TwoCliquesVerdict::TwoCliques,
                !checks::is_connected(&g)
            );
            println!(
                "  2n = {:3} {desc:12} connected = {:5} verdict = {verdict:?}",
                2 * half,
                checks::is_connected(&g)
            );
        }
    }

    banner("Open Problem 4: randomized SIMASYNC, false-accept rate vs fingerprint bits");
    let t = TablePrinter::new(
        &["bits b", "trials", "false accepts", "rate", "2n·2^-b bound"],
        &[7, 7, 14, 9, 14],
    );
    let half = 8usize;
    for bits in [1u32, 2, 4, 8, 16] {
        let seeds: Vec<u64> = (0..4096).collect();
        let false_accepts = par_reduce(
            &seeds,
            |&seed| {
                let g = Workload::Impostor.generate(2 * half, seed % 17);
                let p = TwoCliquesRandomized::new(seed, bits);
                u64::from(
                    run(&p, &g, &mut MinIdAdversary).outcome.unwrap()
                        == TwoCliquesVerdict::TwoCliques,
                )
            },
            || 0u64,
            |a, b| a + b,
        );
        let rate = false_accepts as f64 / seeds.len() as f64;
        let bound = (2 * half) as f64 / 2f64.powi(bits as i32);
        t.row(&[
            format!("{bits}"),
            format!("{}", seeds.len()),
            format!("{false_accepts}"),
            format!("{rate:.4}"),
            format!("{bound:.4}"),
        ]);
        assert!(rate <= bound.min(1.0) + 0.02, "error above the union bound");
    }
    t.rule();

    banner("One-sided error: genuine two-clique inputs are never rejected");
    let seeds: Vec<u64> = (0..2048).collect();
    let rejects = par_reduce(
        &seeds,
        |&seed| {
            let g = Workload::TwoCliques.generate(2 * half, 0);
            let p = TwoCliquesRandomized::new(seed, 2);
            u64::from(
                run(&p, &g, &mut MinIdAdversary).outcome.unwrap()
                    == TwoCliquesVerdict::NotTwoCliques,
            )
        },
        || 0u64,
        |a, b| a + b,
    );
    println!(
        "{} trials at b = 2 bits: {rejects} rejections (must be 0)",
        seeds.len()
    );
    assert_eq!(rejects, 0);
}
