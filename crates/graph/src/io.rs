//! Plain-text edge-list I/O, so the CLI and experiments can run on external
//! graphs (e.g. real call graphs, SNAP-style exports).
//!
//! Format: first non-comment line is `n`; every following non-comment line is
//! `u v` with `1 ≤ u, v ≤ n`, `u ≠ v`. Lines starting with `#` or `%` and
//! blank lines are ignored. Duplicate edges collapse (simple graphs).

use crate::graph::{Graph, NodeId};
use std::io::{BufRead, Write};

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse; `.0` is the 1-based line number.
    Malformed(usize, String),
    /// The header `n` line is missing.
    MissingHeader,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
            ParseError::MissingHeader => write!(f, "missing leading node-count line"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse an edge list from a buffered reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    let mut g: Option<Graph> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        match &mut g {
            None => {
                let n: usize = trimmed.parse().map_err(|_| {
                    ParseError::Malformed(lineno, format!("expected node count, got '{trimmed}'"))
                })?;
                g = Some(Graph::empty(n));
            }
            Some(g) => {
                let mut parts = trimmed.split_whitespace();
                let (u, v) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(u), Some(v), None) => (u, v),
                    _ => {
                        return Err(ParseError::Malformed(
                            lineno,
                            format!("expected 'u v', got '{trimmed}'"),
                        ))
                    }
                };
                let u: NodeId = u
                    .parse()
                    .map_err(|_| ParseError::Malformed(lineno, format!("bad endpoint '{u}'")))?;
                let v: NodeId = v
                    .parse()
                    .map_err(|_| ParseError::Malformed(lineno, format!("bad endpoint '{v}'")))?;
                if u == v || u == 0 || v == 0 || u as usize > g.n() || v as usize > g.n() {
                    return Err(ParseError::Malformed(
                        lineno,
                        format!("edge ({u},{v}) invalid for n = {}", g.n()),
                    ));
                }
                g.add_edge(u, v);
            }
        }
    }
    g.ok_or(ParseError::MissingHeader)
}

/// Parse an edge list from a string.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    read_edge_list(std::io::Cursor::new(text))
}

/// Load a graph from a file path.
pub fn load_edge_list(path: &std::path::Path) -> Result<Graph, ParseError> {
    read_edge_list(std::io::BufReader::new(std::fs::File::open(path)?))
}

/// Write `g` in the same format.
pub fn write_edge_list<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(
        out,
        "# shared-whiteboard edge list: n then one 'u v' per edge"
    )?;
    writeln!(out, "{}", g.n())?;
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}")?;
    }
    Ok(())
}

/// Render `g` to a string in edge-list format.
pub fn edge_list_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("ASCII output")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parses_basic_format() {
        let g = parse_edge_list("4\n1 2\n2 3\n").unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = parse_edge_list("# header\n% other\n\n3\n\n# mid\n1 3\n").unwrap();
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(1, 3));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = parse_edge_list("3\n1 2\n2 1\n1 2\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            parse_edge_list(""),
            Err(ParseError::MissingHeader)
        ));
        assert!(matches!(
            parse_edge_list("x"),
            Err(ParseError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_edge_list("3\n1"),
            Err(ParseError::Malformed(2, _))
        ));
        assert!(matches!(
            parse_edge_list("3\n1 2 3"),
            Err(ParseError::Malformed(2, _))
        ));
        assert!(matches!(
            parse_edge_list("3\n1 4"),
            Err(ParseError::Malformed(2, _))
        ));
        assert!(matches!(
            parse_edge_list("3\n2 2"),
            Err(ParseError::Malformed(2, _))
        ));
        assert!(matches!(
            parse_edge_list("3\n0 1"),
            Err(ParseError::Malformed(2, _))
        ));
    }

    #[test]
    fn round_trips_random_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let g = generators::gnp(20, 0.2, &mut rng);
            let text = edge_list_string(&g);
            let back = parse_edge_list(&text).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn file_round_trip() {
        let g = generators::cycle(6);
        let dir = std::env::temp_dir().join("wb_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle6.txt");
        std::fs::write(&path, edge_list_string(&g)).unwrap();
        let back = load_edge_list(&path).unwrap();
        assert_eq!(back, g);
        let _ = std::fs::remove_file(&path);
    }
}
