//! Graph automorphisms for the exhaustive tier's symmetry quotient.
//!
//! The vertex-transitive families the paper's experiments sweep — cycles,
//! cliques, stars, the two-cliques gadget — collapse exponentially under
//! their automorphism groups, and the schedule explorer exploits that by
//! canonicalizing configuration fingerprints over a (pointwise) stabilizer
//! subgroup before the seen-set probe. The instances that tier handles are
//! tiny (n ≤ ~14), so no partition-refinement/nauty machinery is needed: a
//! plain backtracking search over degree-compatible images, pruned by
//! adjacency consistency against the already-assigned prefix, enumerates the
//! *entire* group exactly. The search tree of a successful branch is the
//! permutation itself, so the cost is `O(|Aut(G)| · n²)` plus the pruned
//! dead ends — negligible next to the exploration the group then shrinks.
//!
//! Soundness note for callers: quotienting is only valid under an actual
//! *group* (closure is what makes "minimum fingerprint over all elements" an
//! orbit invariant). [`stabilizer`] therefore reports whether enumeration
//! finished under the cap via [`AutGroup::complete`]; a capped enumeration
//! is *not* closed and must not be used for canonicalization.

use crate::{Graph, NodeId};

/// A fully enumerated (pointwise-stabilizer) automorphism group of a graph.
///
/// Elements are permutations of `1..=n` stored as forward maps: element `p`
/// sends node `v` to `p[v as usize - 1]`. The identity is always element 0.
#[derive(Clone, Debug)]
pub struct AutGroup {
    n: usize,
    elements: Vec<Vec<NodeId>>,
    complete: bool,
}

impl AutGroup {
    /// Number of nodes the permutations act on.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The enumerated elements (identity first). If [`Self::complete`] is
    /// false this is a *truncated prefix*, not a group — see the module docs.
    pub fn elements(&self) -> &[Vec<NodeId>] {
        &self.elements
    }

    /// Group order (only meaningful when [`Self::complete`]).
    pub fn order(&self) -> u64 {
        self.elements.len() as u64
    }

    /// Whether enumeration finished under the cap. A capped enumeration is
    /// not closed under composition and must not be used for quotienting.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Whether the group is just the identity (no symmetry to exploit).
    pub fn is_trivial(&self) -> bool {
        self.complete && self.elements.len() == 1
    }

    /// Node orbits under the enumerated elements, each sorted ascending,
    /// ordered by smallest member. For a complete group these are the true
    /// orbits of the action on vertices.
    pub fn orbits(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        for v in 1..=self.n as NodeId {
            if seen[v as usize - 1] {
                continue;
            }
            let mut orbit: Vec<NodeId> = self
                .elements
                .iter()
                .map(|p| p[v as usize - 1])
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            orbit.sort_unstable();
            for &u in &orbit {
                seen[u as usize - 1] = true;
            }
            out.push(orbit);
        }
        out
    }
}

/// Enumerate the pointwise stabilizer of `pinned` inside `Aut(g)`: every
/// permutation `π` of `1..=n` with `π(u) adjacent π(v) ⇔ u adjacent v` and
/// `π(p) = p` for each pinned node `p`. Enumeration stops once more than
/// `cap` elements exist; the result then has [`AutGroup::complete`] ==
/// false and must not be used for canonicalization (see module docs).
///
/// Out-of-range pinned IDs are ignored (callers pass protocol-declared
/// distinguished nodes that may not exist on a smaller instance).
pub fn stabilizer(g: &Graph, pinned: &[NodeId], cap: usize) -> AutGroup {
    let n = g.n();
    let mut search = Search {
        g,
        pinned: pinned
            .iter()
            .copied()
            .filter(|&p| p >= 1 && p as usize <= n)
            .collect(),
        img: vec![0; n],
        used: vec![false; n],
        elements: Vec::new(),
        cap,
        capped: false,
    };
    search.recurse(0);
    // The identity satisfies every constraint, so it is always found; move
    // it to the front so callers can skip it uniformly.
    if let Some(pos) = search
        .elements
        .iter()
        .position(|p| p.iter().enumerate().all(|(i, &x)| x == i as NodeId + 1))
    {
        search.elements.swap(0, pos);
    }
    AutGroup {
        n,
        elements: search.elements,
        complete: !search.capped,
    }
}

struct Search<'g> {
    g: &'g Graph,
    pinned: Vec<NodeId>,
    /// `img[i]` = image of node `i+1` in the branch under construction
    /// (0 = unassigned; nodes are assigned in ID order).
    img: Vec<NodeId>,
    used: Vec<bool>,
    elements: Vec<Vec<NodeId>>,
    cap: usize,
    capped: bool,
}

impl Search<'_> {
    fn recurse(&mut self, depth: usize) {
        if self.capped {
            return;
        }
        let n = self.img.len();
        if depth == n {
            if self.elements.len() == self.cap {
                self.capped = true;
                return;
            }
            self.elements.push(self.img.clone());
            return;
        }
        let u = depth as NodeId + 1;
        let deg = self.g.degree(u);
        let pinned_here = self.pinned.contains(&u);
        for x in 1..=n as NodeId {
            if self.used[x as usize - 1]
                || self.g.degree(x) != deg
                || (pinned_here && x != u)
                || (!pinned_here && self.pinned.contains(&x))
            {
                continue;
            }
            // Adjacency consistency against the assigned prefix.
            if (1..u).any(|v| self.g.has_edge(u, v) != self.g.has_edge(x, self.img[v as usize - 1]))
            {
                continue;
            }
            self.img[depth] = x;
            self.used[x as usize - 1] = true;
            self.recurse(depth + 1);
            self.used[x as usize - 1] = false;
            self.img[depth] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn order(g: &Graph, pinned: &[NodeId]) -> u64 {
        let grp = stabilizer(g, pinned, 1 << 20);
        assert!(grp.complete());
        grp.order()
    }

    #[test]
    fn known_group_orders() {
        assert_eq!(order(&generators::path(4), &[]), 2, "path: one reflection");
        assert_eq!(order(&generators::cycle(6), &[]), 12, "dihedral D6");
        assert_eq!(order(&generators::clique(4), &[]), 24, "S4");
        assert_eq!(order(&generators::star(5), &[]), 24, "S4 on the leaves");
        // Two disjoint 3-cliques: S3 × S3 within halves, ×2 swapping them.
        assert_eq!(order(&generators::two_cliques(3), &[]), 72);
        assert_eq!(order(&Graph::empty(1), &[]), 1);
    }

    #[test]
    fn pinning_restricts_to_the_pointwise_stabilizer() {
        // Clique: pinning one node leaves S_{n-1} on the rest.
        assert_eq!(order(&generators::clique(5), &[1]), 24);
        // Cycle: pinning one node leaves only the reflection through it.
        assert_eq!(order(&generators::cycle(8), &[1]), 2);
        // Pinning everything leaves the identity.
        assert_eq!(order(&generators::clique(3), &[1, 2, 3]), 1);
        // Out-of-range pins are ignored.
        assert_eq!(order(&generators::cycle(5), &[9]), 10);
    }

    #[test]
    fn asymmetric_graph_has_trivial_group() {
        // The smallest asymmetric tree: a degree-3 node with pendant paths
        // of three distinct lengths (1, 2, 3) hanging off it.
        let g = Graph::from_edges(7, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (3, 7)]);
        let grp = stabilizer(&g, &[], 1 << 10);
        assert!(grp.is_trivial());
        assert_eq!(grp.elements(), &[vec![1, 2, 3, 4, 5, 6, 7]]);
    }

    #[test]
    fn elements_are_automorphisms_and_closed() {
        for g in [
            generators::cycle(5),
            generators::clique(4),
            generators::two_cliques(2),
            generators::star(4),
        ] {
            let grp = stabilizer(&g, &[], 1 << 20);
            assert!(grp.complete());
            let set: std::collections::HashSet<&Vec<NodeId>> = grp.elements().iter().collect();
            for p in grp.elements() {
                // Every element preserves adjacency...
                for (u, v) in g.edges() {
                    assert!(g.has_edge(p[u as usize - 1], p[v as usize - 1]));
                }
                // ...and the set is closed under composition.
                for q in grp.elements() {
                    let composed: Vec<NodeId> = (0..g.n()).map(|i| q[p[i] as usize - 1]).collect();
                    assert!(set.contains(&composed), "closure violated");
                }
            }
        }
    }

    #[test]
    fn identity_is_always_element_zero() {
        for g in [generators::cycle(4), generators::clique(3), Graph::empty(2)] {
            let grp = stabilizer(&g, &[], 64);
            let id: Vec<NodeId> = (1..=g.n() as NodeId).collect();
            assert_eq!(grp.elements()[0], id);
        }
    }

    #[test]
    fn cap_marks_enumeration_incomplete() {
        let grp = stabilizer(&generators::clique(6), &[], 100);
        assert!(!grp.complete(), "|S6| = 720 exceeds the cap");
        assert!(grp.elements().len() <= 100);
        assert!(
            !grp.is_trivial(),
            "a capped group is never reported trivial"
        );
    }

    #[test]
    fn orbits_partition_the_nodes() {
        let grp = stabilizer(&generators::star(5), &[], 1 << 10);
        let orbits = grp.orbits();
        // Star with center 1: {1} and the four leaves.
        assert_eq!(orbits.len(), 2);
        let mut all: Vec<NodeId> = orbits.concat();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
        assert!(orbits.iter().any(|o| o.len() == 1));
        assert!(orbits.iter().any(|o| o.len() == 4));
    }
}
