//! Graphviz DOT export, for inspecting instances, gadgets and BFS forests.
//!
//! The reduction gadgets (Figures 1 and 2) are much easier to audit visually;
//! `fig*` experiment binaries and the CLI can emit these.

use crate::checks::BfsForest;
use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

/// Render `g` as an undirected DOT graph.
pub fn graph_to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for v in g.nodes() {
        let _ = writeln!(out, "  {v};");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render `g` with a BFS forest overlay: tree edges solid, non-tree edges
/// dashed, nodes ranked by layer, roots doubled.
pub fn forest_to_dot(g: &Graph, forest: &BfsForest, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for v in g.nodes() {
        let layer = forest.layer[v as usize - 1];
        let shape = if forest.roots.contains(&v) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  {v} [shape={shape}, label=\"{v}\\nl={layer}\"];");
    }
    // Group nodes of equal layer on one rank.
    let max_layer = forest.layer.iter().copied().max().unwrap_or(0);
    for l in 0..=max_layer {
        let members: Vec<String> = g
            .nodes()
            .filter(|&v| forest.layer[v as usize - 1] == l)
            .map(|v| v.to_string())
            .collect();
        if !members.is_empty() {
            let _ = writeln!(out, "  {{ rank=same; {} }}", members.join("; "));
        }
    }
    let is_tree_edge = |u: NodeId, v: NodeId| {
        forest.parent[u as usize - 1] == Some(v) || forest.parent[v as usize - 1] == Some(u)
    };
    for (u, v) in g.edges() {
        let style = if is_tree_edge(u, v) {
            "solid"
        } else {
            "dashed"
        };
        let _ = writeln!(out, "  {u} -- {v} [style={style}];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use crate::generators;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = generators::cycle(4);
        let dot = graph_to_dot(&g, "c4");
        assert!(dot.starts_with("graph c4 {"));
        for v in 1..=4 {
            assert!(dot.contains(&format!("  {v};")), "{dot}");
        }
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn forest_dot_marks_tree_edges_and_roots() {
        let g = generators::cycle(5);
        let f = checks::bfs_forest(&g);
        let dot = forest_to_dot(&g, &f, "c5");
        assert!(dot.contains("doublecircle"), "{dot}");
        assert_eq!(dot.matches("[style=solid]").count(), 4, "{dot}"); // n−1 tree edges
        assert_eq!(dot.matches("[style=dashed]").count(), 1, "{dot}"); // the back edge
        assert!(dot.contains("rank=same"));
    }

    #[test]
    fn empty_graph_renders() {
        let dot = graph_to_dot(&Graph::empty(2), "e");
        assert!(dot.contains("  1;") && dot.contains("  2;"));
        assert!(!dot.contains(" -- "));
    }
}
