//! Exhaustive enumeration of small labeled graphs.
//!
//! The positive results of the paper are ∀-adversary statements; combined with
//! the exhaustive adversary executor in `wb-runtime`, enumerating *all* graphs
//! on a small node count gives genuine model checking of each protocol.

use crate::graph::{Graph, NodeId};

/// Iterator over all `2^C(n,2)` labeled graphs on `n` nodes.
///
/// Edge `(u, v)`, `u < v`, corresponds to bit `rank(u, v)` of the mask, in
/// lexicographic order.
pub fn all_graphs(n: usize) -> impl Iterator<Item = Graph> {
    let pairs = edge_slots(n);
    let total: u64 = 1u64 << pairs.len();
    assert!(pairs.len() <= 40, "enumeration of n={n} is infeasible");
    (0..total).map(move |mask| graph_from_mask(n, &pairs, mask))
}

/// All connected graphs on `n` nodes.
pub fn all_connected_graphs(n: usize) -> impl Iterator<Item = Graph> {
    all_graphs(n).filter(crate::checks::is_connected)
}

/// The ordered `(u,v)` pairs with `u < v`.
pub fn edge_slots(n: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for u in 1..=n as NodeId {
        for v in (u + 1)..=n as NodeId {
            pairs.push((u, v));
        }
    }
    pairs
}

/// Decode one graph from an edge-subset mask.
pub fn graph_from_mask(n: usize, pairs: &[(NodeId, NodeId)], mask: u64) -> Graph {
    let mut g = Graph::empty(n);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        if mask >> i & 1 == 1 {
            g.add_edge(u, v);
        }
    }
    g
}

/// Number of labeled graphs on `n` nodes (`2^C(n,2)`), for sizing sweeps.
pub fn count_all(n: usize) -> u64 {
    1u64 << (n * (n - 1) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    #[test]
    fn counts_match_formula() {
        assert_eq!(all_graphs(1).count(), 1);
        assert_eq!(all_graphs(2).count(), 2);
        assert_eq!(all_graphs(3).count(), 8);
        assert_eq!(all_graphs(4).count(), 64);
        assert_eq!(all_graphs(5).count() as u64, count_all(5));
    }

    #[test]
    fn connected_counts_match_oeis() {
        // OEIS A001187: connected labeled graphs on n nodes.
        assert_eq!(all_connected_graphs(1).count(), 1);
        assert_eq!(all_connected_graphs(2).count(), 1);
        assert_eq!(all_connected_graphs(3).count(), 4);
        assert_eq!(all_connected_graphs(4).count(), 38);
        assert_eq!(all_connected_graphs(5).count(), 728);
    }

    #[test]
    fn enumeration_is_exhaustive_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for g in all_graphs(4) {
            let key: Vec<(NodeId, NodeId)> = g.edges().collect();
            assert!(seen.insert(key), "duplicate graph in enumeration");
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn triangle_free_count_on_k3() {
        // On 3 nodes, exactly one of 8 graphs has a triangle.
        let with_triangle = all_graphs(3).filter(checks::has_triangle).count();
        assert_eq!(with_triangle, 1);
    }
}
