//! The labeled graph type and the dense adjacency matrix.

use std::fmt;

/// A node identifier. Following the paper, IDs are the integers `1..=n` and
/// `v_i` denotes the node with `ID(v_i) = i`.
pub type NodeId = u32;

/// A simple undirected graph on nodes `{1..n}` with sorted adjacency lists.
///
/// Invariants (checked by constructors): no self-loops, no parallel edges,
/// symmetric adjacency, neighbor lists sorted ascending.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<NodeId>>,
}

impl Graph {
    /// The empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Build from an edge list. Duplicate edges are merged; panics on
    /// self-loops or out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Graph::empty(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Insert edge `{u, v}` (no-op if already present). Panics on self-loops or
    /// out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u != v, "self-loop at {u}");
        assert!(
            (1..=self.n as NodeId).contains(&u) && (1..=self.n as NodeId).contains(&v),
            "edge ({u},{v}) out of range 1..={}",
            self.n
        );
        let (ui, vi) = (u as usize - 1, v as usize - 1);
        if let Err(pos) = self.adj[ui].binary_search(&v) {
            self.adj[ui].insert(pos, v);
            let pos2 = self.adj[vi].binary_search(&u).unwrap_err();
            self.adj[vi].insert(pos2, u);
        }
    }

    /// Remove edge `{u, v}` if present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        let (ui, vi) = (u as usize - 1, v as usize - 1);
        if let Ok(pos) = self.adj[ui].binary_search(&v) {
            self.adj[ui].remove(pos);
            let pos2 = self.adj[vi].binary_search(&u).unwrap();
            self.adj[vi].remove(pos2);
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// All node IDs, `1..=n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        1..=self.n as NodeId
    }

    /// Sorted neighbor IDs of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize - 1]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize - 1].len()
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize - 1].binary_search(&v).is_ok()
    }

    /// All edges `(u, v)` with `u < v`, lexicographic.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, a)| {
            let u = i as NodeId + 1;
            a.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// If every node has the same degree, return it.
    pub fn regular_degree(&self) -> Option<usize> {
        let d0 = self.adj.first()?.len();
        self.adj.iter().all(|a| a.len() == d0).then_some(d0)
    }

    /// The complement graph (same node set, inverted non-diagonal adjacency).
    pub fn complement(&self) -> Graph {
        let mut g = Graph::empty(self.n);
        for u in 1..=self.n as NodeId {
            for v in (u + 1)..=self.n as NodeId {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Disjoint union: `other`'s node `i` becomes `self.n + i`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let mut g = self.clone();
        g.n += other.n;
        g.adj.extend(
            other
                .adj
                .iter()
                .map(|a| a.iter().map(|&v| v + self.n as NodeId).collect::<Vec<_>>()),
        );
        g
    }

    /// Extend with one fresh node with ID `n+1`, adjacent to `attach`.
    ///
    /// This is the gadget step of the paper's reductions (e.g. the `G'_{s,t}`
    /// construction of Fig. 1 attaches `v_{n+1}` to `{v_s, v_t}`).
    pub fn with_extra_node(&self, attach: &[NodeId]) -> Graph {
        let mut g = self.clone();
        g.n += 1;
        g.adj.push(Vec::new());
        let x = g.n as NodeId;
        for &u in attach {
            g.add_edge(u, x);
        }
        g
    }

    /// Apply a relabeling: node `i` gets new ID `perm[i-1]` (a permutation of
    /// `1..=n`).
    pub fn relabel(&self, perm: &[NodeId]) -> Graph {
        assert_eq!(perm.len(), self.n);
        let mut g = Graph::empty(self.n);
        for (u, v) in self.edges() {
            g.add_edge(perm[u as usize - 1], perm[v as usize - 1]);
        }
        g
    }

    /// Restriction to the first `k` nodes (the SUBGRAPH_f target): edges with
    /// both endpoints in `{v_1..v_k}`, returned as a graph on `k` nodes.
    pub fn induced_prefix(&self, k: usize) -> Graph {
        let mut g = Graph::empty(k.min(self.n));
        for (u, v) in self.edges() {
            if (u as usize) <= k && (v as usize) <= k {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Dense adjacency-matrix view (the BUILD output format).
    pub fn adjacency_matrix(&self) -> AdjMatrix {
        let mut m = AdjMatrix::new(self.n);
        for (u, v) in self.edges() {
            m.set(u, v);
        }
        m
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={}, edges=[", self.n, self.m())?;
        for (i, (u, v)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i >= 40 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{u}-{v}")?;
        }
        write!(f, "])")
    }
}

/// A dense symmetric adjacency matrix over nodes `{1..n}` — the output type of
/// the BUILD problem ("computing the adjacency matrix of a graph").
#[derive(Clone, PartialEq, Eq)]
pub struct AdjMatrix {
    n: usize,
    bits: Vec<u64>,
}

impl AdjMatrix {
    /// All-zero matrix.
    pub fn new(n: usize) -> Self {
        AdjMatrix {
            n,
            bits: vec![0; (n * n + 63) / 64],
        }
    }

    /// Matrix size.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, u: NodeId, v: NodeId) -> usize {
        debug_assert!(u >= 1 && v >= 1 && u as usize <= self.n && v as usize <= self.n);
        (u as usize - 1) * self.n + (v as usize - 1)
    }

    /// Set `{u,v}` (symmetric).
    pub fn set(&mut self, u: NodeId, v: NodeId) {
        let (a, b) = (self.idx(u, v), self.idx(v, u));
        self.bits[a / 64] |= 1 << (a % 64);
        self.bits[b / 64] |= 1 << (b % 64);
    }

    /// Whether `{u,v}` is set.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> bool {
        let a = self.idx(u, v);
        self.bits[a / 64] >> (a % 64) & 1 == 1
    }

    /// Convert back to a [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::empty(self.n);
        for u in 1..=self.n as NodeId {
            for v in (u + 1)..=self.n as NodeId {
                if self.get(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

impl fmt::Debug for AdjMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AdjMatrix(n={})", self.n)?;
        for u in 1..=self.n.min(16) as NodeId {
            for v in 1..=self.n.min(16) as NodeId {
                write!(f, "{}", if self.get(u, v) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::empty(4);
        g.add_edge(1, 3);
        g.add_edge(3, 1);
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(1, 3) && g.has_edge(3, 1));
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[1]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        Graph::empty(3).add_edge(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Graph::empty(3).add_edge(1, 4);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let g = Graph::from_edges(6, &[(4, 2), (4, 6), (4, 1), (4, 5), (4, 3)]);
        assert_eq!(g.neighbors(4), &[1, 2, 3, 5, 6]);
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = Graph::from_edges(4, &[(1, 2), (2, 3), (3, 4)]);
        g.remove_edge(2, 3);
        assert!(!g.has_edge(2, 3));
        assert_eq!(g.m(), 2);
        g.remove_edge(2, 3); // no-op
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edges_are_lexicographic() {
        let g = Graph::from_edges(4, &[(3, 4), (1, 2), (2, 4)]);
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(1, 2), (2, 4), (3, 4)]);
    }

    #[test]
    fn complement_of_complement_is_identity() {
        let g = Graph::from_edges(5, &[(1, 2), (2, 3), (4, 5), (1, 5)]);
        assert_eq!(g.complement().complement(), g);
    }

    #[test]
    fn complement_of_empty_is_clique() {
        let g = Graph::empty(4).complement();
        assert_eq!(g.m(), 6);
        assert_eq!(g.regular_degree(), Some(3));
    }

    #[test]
    fn disjoint_union_shifts_ids() {
        let a = Graph::from_edges(3, &[(1, 2)]);
        let b = Graph::from_edges(2, &[(1, 2)]);
        let u = a.disjoint_union(&b);
        assert_eq!(u.n(), 5);
        let e: Vec<_> = u.edges().collect();
        assert_eq!(e, vec![(1, 2), (4, 5)]);
    }

    #[test]
    fn with_extra_node_attaches() {
        let g = Graph::from_edges(3, &[(1, 2)]);
        let g2 = g.with_extra_node(&[1, 3]);
        assert_eq!(g2.n(), 4);
        assert!(g2.has_edge(4, 1) && g2.has_edge(4, 3) && !g2.has_edge(4, 2));
        // Original untouched.
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::from_edges(4, &[(1, 2), (2, 3), (3, 4)]); // path
        let h = g.relabel(&[4, 3, 2, 1]);
        let e: Vec<_> = h.edges().collect();
        assert_eq!(e, vec![(1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn induced_prefix_keeps_only_low_ids() {
        let g = Graph::from_edges(5, &[(1, 2), (2, 5), (3, 4), (1, 3)]);
        let h = g.induced_prefix(3);
        assert_eq!(h.n(), 3);
        let e: Vec<_> = h.edges().collect();
        assert_eq!(e, vec![(1, 2), (1, 3)]);
    }

    #[test]
    fn matrix_round_trips() {
        let g = Graph::from_edges(7, &[(1, 7), (2, 3), (5, 6), (1, 4)]);
        let m = g.adjacency_matrix();
        assert!(m.get(7, 1));
        assert!(!m.get(7, 2));
        assert_eq!(m.to_graph(), g);
    }

    #[test]
    fn matrix_equality_detects_difference() {
        let g = Graph::from_edges(4, &[(1, 2)]);
        let h = Graph::from_edges(4, &[(1, 3)]);
        assert_ne!(g.adjacency_matrix(), h.adjacency_matrix());
    }

    #[test]
    fn regular_degree_detection() {
        let cycle = Graph::from_edges(4, &[(1, 2), (2, 3), (3, 4), (4, 1)]);
        assert_eq!(cycle.regular_degree(), Some(2));
        let path = Graph::from_edges(3, &[(1, 2), (2, 3)]);
        assert_eq!(path.regular_degree(), None);
    }
}
