//! Workload generators for the protocol experiments.
//!
//! Each family matches a graph class the paper names: bounded-degeneracy graphs
//! (forests, k-trees, partial k-trees, random k-degenerate — §3), even-odd
//! bipartite graphs (§5.2), two-clique unions and their connected
//! (n−1)-regular impostors (§5.1), plus the generic G(n,p) backdrop.
//!
//! All randomized generators take a caller-supplied `Rng`, so every experiment
//! is reproducible from a seed.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    for u in 1..=n as NodeId {
        for v in (u + 1)..=n as NodeId {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A uniform draw from `(0, 1]` (never 0, so `ln` stays finite).
fn uniform_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Sparse Erdős–Rényi `G(n, p)` with `p = avg_deg/(n−1)`, sampled in
/// `O(n + m)` expected time by geometric edge skipping (Batagelj–Brandes):
/// instead of flipping a coin per pair, jump `~Geom(p)` pairs between
/// successive edges. The bulk-tier counterpart of [`gnp`], whose pairwise
/// loop is `Θ(n²)` and unusable at `n ≥ 10⁵`. Same model, different
/// sampling path — a given seed draws a *different* instance than [`gnp`].
pub fn gnp_linear<R: Rng + ?Sized>(n: usize, avg_deg: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    if n < 2 {
        return g;
    }
    let p = (avg_deg / (n as f64 - 1.0)).clamp(0.0, 1.0);
    if p <= 0.0 {
        return g;
    }
    if p >= 1.0 {
        return clique(n);
    }
    let log_q = (1.0 - p).ln();
    // 0-based lexicographic walk over pairs (v, w) with w < v.
    let nn = n as i64;
    let (mut v, mut w) = (1i64, -1i64);
    loop {
        w += 1 + (uniform_open(rng).ln() / log_q).floor() as i64;
        while w >= v {
            w -= v;
            v += 1;
            if v >= nn {
                return g;
            }
        }
        g.add_edge(w as NodeId + 1, v as NodeId + 1);
    }
}

/// Random graph of degeneracy ≤ `k` in `O(n·k)`: in a random order, node
/// `i` attaches to `min(k, i)` distinct uniformly chosen earlier nodes.
/// The bulk-tier counterpart of [`k_degenerate`], whose per-node shuffle of
/// the whole prefix is `Θ(n²)`. Always "exact": every node past the first
/// `k` brings exactly `k` edges, so the degeneracy is exactly `k` for
/// `n > k`.
pub fn k_degenerate_linear<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    let mut order: Vec<NodeId> = (1..=n as NodeId).collect();
    order.shuffle(rng);
    let mut g = Graph::empty(n);
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    for i in 1..n {
        let count = k.min(i);
        picked.clear();
        while picked.len() < count {
            let j = rng.gen_range(0..i);
            // k is small: a linear scan over ≤ k entries beats hashing.
            if !picked.contains(&j) {
                picked.push(j);
                g.add_edge(order[j], order[i]);
            }
        }
    }
    g
}

/// Path `v₁−v₂−…−v_n`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, &(1..n as NodeId).map(|i| (i, i + 1)).collect::<Vec<_>>())
}

/// Cycle on `n ≥ 3` nodes.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut g = path(n);
    g.add_edge(n as NodeId, 1);
    g
}

/// Complete graph `K_n`.
pub fn clique(n: usize) -> Graph {
    Graph::empty(n).complement()
}

/// Star with center `v₁`.
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, &(2..=n as NodeId).map(|i| (1, i)).collect::<Vec<_>>())
}

/// Uniformly random labeled tree via a random Prüfer sequence.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(1, 2)]);
    }
    let prufer: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(1..=n as NodeId)).collect();
    let mut degree = vec![1u32; n];
    for &v in &prufer {
        degree[v as usize - 1] += 1;
    }
    let mut g = Graph::empty(n);
    // Min-heap via sorted scan: n is small enough that a BinaryHeap is overkill,
    // but we use one for O(n log n) regardless.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (1..=n as NodeId)
        .filter(|&v| degree[v as usize - 1] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer decode invariant");
        g.add_edge(leaf, v);
        degree[v as usize - 1] -= 1;
        if degree[v as usize - 1] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().unwrap();
    let std::cmp::Reverse(b) = leaves.pop().unwrap();
    g.add_edge(a, b);
    g
}

/// Random forest: a random tree with each edge kept with probability `keep`.
pub fn random_forest<R: Rng + ?Sized>(n: usize, keep: f64, rng: &mut R) -> Graph {
    let t = random_tree(n, rng);
    let mut g = Graph::empty(n);
    for (u, v) in t.edges() {
        if rng.gen_bool(keep) {
            g.add_edge(u, v);
        }
    }
    g
}

/// Random `k`-tree on `n ≥ k+1` nodes: start from `K_{k+1}`, then attach each
/// new node to a uniformly random existing `k`-clique. Degeneracy exactly `k`
/// (for `n > k`), treewidth `k`.
pub fn k_tree<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(n >= k + 1, "k-tree needs at least k+1 = {} nodes", k + 1);
    let mut g = Graph::empty(n);
    let base: Vec<NodeId> = (1..=(k + 1) as NodeId).collect();
    for i in 0..base.len() {
        for j in i + 1..base.len() {
            g.add_edge(base[i], base[j]);
        }
    }
    // All k-subsets of the base clique are k-cliques.
    let mut cliques: Vec<Vec<NodeId>> = Vec::new();
    for skip in 0..base.len() {
        let mut c = base.clone();
        c.remove(skip);
        cliques.push(c);
    }
    for v in (k + 2)..=n {
        let v = v as NodeId;
        let c = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &c {
            g.add_edge(u, v);
        }
        for skip in 0..c.len() {
            let mut nc = c.clone();
            nc[skip] = v;
            nc.sort_unstable();
            cliques.push(nc);
        }
        cliques.push(c);
    }
    g
}

/// Partial `k`-tree: a random `k`-tree with each edge kept with probability
/// `keep`. Treewidth (hence degeneracy) at most `k`.
pub fn partial_k_tree<R: Rng + ?Sized>(n: usize, k: usize, keep: f64, rng: &mut R) -> Graph {
    let t = k_tree(n, k, rng);
    let mut g = Graph::empty(n);
    for (u, v) in t.edges() {
        if rng.gen_bool(keep) {
            g.add_edge(u, v);
        }
    }
    g
}

/// Random graph of degeneracy ≤ `k`: nodes arrive in the order of a random
/// permutation, each new node choosing min(k, #earlier) random earlier
/// neighbors (count uniform in `0..=min(k, #earlier)` unless `exact` forces
/// exactly `min(k, …)`). Labels are **not** correlated with the construction
/// order, so protocols cannot cheat by reading IDs as an elimination order.
pub fn k_degenerate<R: Rng + ?Sized>(n: usize, k: usize, exact: bool, rng: &mut R) -> Graph {
    let mut order: Vec<NodeId> = (1..=n as NodeId).collect();
    order.shuffle(rng);
    let mut g = Graph::empty(n);
    for (i, &v) in order.iter().enumerate() {
        let cap = k.min(i);
        let count = if exact { cap } else { rng.gen_range(0..=cap) };
        let mut earlier = order[..i].to_vec();
        earlier.shuffle(rng);
        for &u in earlier.iter().take(count) {
            g.add_edge(u, v);
        }
    }
    g
}

/// Random bipartite graph with parts `{1..a}` and `{a+1..a+b}`.
pub fn bipartite_fixed<R: Rng + ?Sized>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(a + b);
    for u in 1..=a as NodeId {
        for v in (a as NodeId + 1)..=(a + b) as NodeId {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random even-odd-bipartite graph: edges only between odd and even IDs (the
/// §5.2 class, bipartition known to all nodes through ID parity).
pub fn even_odd_bipartite<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    for u in (1..=n as NodeId).step_by(2) {
        for v in (2..=n as NodeId).step_by(2) {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A *connected* even-odd-bipartite graph: random EOB plus a parity-alternating
/// Hamiltonian-ish path threading odd and even IDs to guarantee connectivity.
pub fn even_odd_bipartite_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = even_odd_bipartite(n, p, rng);
    let odds: Vec<NodeId> = (1..=n as NodeId).step_by(2).collect();
    let evens: Vec<NodeId> = (2..=n as NodeId).step_by(2).collect();
    // Zigzag o1-e1-o2-e2-… covers all nodes with parity-respecting edges.
    let mut zig = Vec::with_capacity(n);
    for i in 0..odds.len().max(evens.len()) {
        if i < odds.len() {
            zig.push(odds[i]);
        }
        if i < evens.len() {
            zig.push(evens[i]);
        }
    }
    for w in zig.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

/// The disjoint union of two `half`-cliques on `2·half` nodes — the YES
/// instances of 2-CLIQUES. Parts are `{1..half}` and `{half+1..2half}`.
pub fn two_cliques(half: usize) -> Graph {
    clique(half).disjoint_union(&clique(half))
}

/// A *connected* (half−1)-regular graph on `2·half` nodes — a NO instance of
/// 2-CLIQUES satisfying the degree promise. Built by a 2-swap on the
/// two-clique union: remove `{a₁,a₂}` and `{b₁,b₂}` inside the cliques and add
/// the crossing edges `{a₁,b₁}`, `{a₂,b₂}`.
pub fn connected_regular_impostor<R: Rng + ?Sized>(half: usize, rng: &mut R) -> Graph {
    assert!(half >= 3, "need cliques of size ≥ 3 for a 2-swap");
    let mut g = two_cliques(half);
    let h = half as NodeId;
    // Random distinct pairs within each clique.
    let a1 = rng.gen_range(1..=h);
    let a2 = loop {
        let x = rng.gen_range(1..=h);
        if x != a1 {
            break x;
        }
    };
    let b1 = rng.gen_range(h + 1..=2 * h);
    let b2 = loop {
        let x = rng.gen_range(h + 1..=2 * h);
        if x != b1 {
            break x;
        }
    };
    g.remove_edge(a1, a2);
    g.remove_edge(b1, b2);
    g.add_edge(a1, b1);
    g.add_edge(a2, b2);
    g
}

/// A graph from the §3-extension class: built in a random insertion order,
/// each new node attaching either to ≤ `k` of the earlier nodes ("low") or to
/// all but ≤ `k` of them ("high"), so the reverse insertion order witnesses
/// [`crate::checks::mixed_elimination`]. Interesting because such graphs can
/// be *dense* (Θ(n²) edges) yet still reconstructible from O(k² log n)-bit
/// messages.
pub fn mixed_low_high<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    let mut order: Vec<NodeId> = (1..=n as NodeId).collect();
    order.shuffle(rng);
    let mut g = Graph::empty(n);
    for (i, &v) in order.iter().enumerate() {
        let cap = k.min(i);
        let count = rng.gen_range(0..=cap);
        let mut earlier = order[..i].to_vec();
        earlier.shuffle(rng);
        if rng.gen_bool(0.5) {
            // low: `count` neighbors
            for &u in earlier.iter().take(count) {
                g.add_edge(u, v);
            }
        } else {
            // high: all but `count` of the earlier nodes
            for &u in earlier.iter().skip(count) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random permutation relabeling of `g`.
pub fn relabel_random<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Graph {
    let mut perm: Vec<NodeId> = (1..=g.n() as NodeId).collect();
    perm.shuffle(rng);
    g.relabel(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng();
        assert_eq!(gnp(10, 0.0, &mut r).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut r).m(), 45);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut r = rng();
        for n in [1usize, 2, 3, 10, 50, 200] {
            let t = random_tree(n, &mut r);
            assert_eq!(t.m(), n.saturating_sub(1), "n={n}");
            assert!(checks::is_connected(&t), "n={n}");
            assert!(checks::degeneracy(&t).0 <= 1, "n={n}");
        }
    }

    #[test]
    fn random_trees_vary() {
        let mut r = rng();
        let a = random_tree(30, &mut r);
        let b = random_tree(30, &mut r);
        assert_ne!(
            a, b,
            "two random trees should differ with overwhelming probability"
        );
    }

    #[test]
    fn random_forest_is_forest() {
        let mut r = rng();
        let f = random_forest(60, 0.6, &mut r);
        assert!(checks::degeneracy(&f).0 <= 1);
        assert!(f.m() < 60);
    }

    #[test]
    fn k_tree_has_degeneracy_k() {
        let mut r = rng();
        for k in 1..=4 {
            let g = k_tree(30, k, &mut r);
            assert_eq!(checks::degeneracy(&g).0, k, "k={k}");
            assert!(checks::is_connected(&g));
            assert_eq!(g.m(), k * (k + 1) / 2 + (30 - k - 1) * k);
        }
    }

    #[test]
    fn partial_k_tree_degeneracy_at_most_k() {
        let mut r = rng();
        for k in 1..=4 {
            let g = partial_k_tree(40, k, 0.7, &mut r);
            assert!(checks::degeneracy(&g).0 <= k, "k={k}");
        }
    }

    #[test]
    fn k_degenerate_bound_holds() {
        let mut r = rng();
        for k in 1..=5 {
            for _ in 0..5 {
                let g = k_degenerate(50, k, false, &mut r);
                assert!(checks::degeneracy(&g).0 <= k, "k={k}");
                let ge = k_degenerate(50, k, true, &mut r);
                assert_eq!(checks::degeneracy(&ge).0, k, "exact k={k}");
            }
        }
    }

    #[test]
    fn eob_generators_respect_parity() {
        let mut r = rng();
        let g = even_odd_bipartite(31, 0.4, &mut r);
        assert!(checks::is_even_odd_bipartite(&g));
        let gc = even_odd_bipartite_connected(31, 0.2, &mut r);
        assert!(checks::is_even_odd_bipartite(&gc));
        assert!(checks::is_connected(&gc));
    }

    #[test]
    fn eob_connected_handles_tiny_n() {
        let mut r = rng();
        for n in 1..=5 {
            let g = even_odd_bipartite_connected(n, 0.5, &mut r);
            assert!(checks::is_connected(&g), "n={n}");
            assert!(checks::is_even_odd_bipartite(&g), "n={n}");
        }
    }

    #[test]
    fn two_cliques_shape() {
        let g = two_cliques(6);
        assert_eq!(g.n(), 12);
        assert_eq!(g.regular_degree(), Some(5));
        assert!(checks::is_two_cliques(&g));
    }

    #[test]
    fn impostor_is_regular_connected_not_two_cliques() {
        let mut r = rng();
        for half in [3usize, 5, 8, 12] {
            let g = connected_regular_impostor(half, &mut r);
            assert_eq!(g.n(), 2 * half);
            assert_eq!(g.regular_degree(), Some(half - 1), "half={half}");
            assert!(checks::is_connected(&g), "half={half}");
            assert!(!checks::is_two_cliques(&g), "half={half}");
        }
    }

    #[test]
    fn relabel_preserves_invariants() {
        let mut r = rng();
        let g = gnp(25, 0.3, &mut r);
        let h = relabel_random(&g, &mut r);
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        assert_eq!(checks::degeneracy(&g).0, checks::degeneracy(&h).0);
        assert_eq!(checks::triangle_count(&g), checks::triangle_count(&h));
    }

    #[test]
    fn star_and_cycle_shapes() {
        let s = star(7);
        assert_eq!(s.degree(1), 6);
        assert!(checks::degeneracy(&s).0 == 1);
        let c = cycle(7);
        assert_eq!(c.regular_degree(), Some(2));
        assert!(!checks::is_bipartite(&c));
    }

    #[test]
    fn gnp_linear_hits_the_expected_density() {
        let mut r = rng();
        // E[m] = n·d/2; the skip sampler must land near it.
        let g = gnp_linear(20_000, 4.0, &mut r);
        assert_eq!(g.n(), 20_000);
        let expected = 20_000.0 * 4.0 / 2.0;
        assert!(
            (g.m() as f64) > 0.8 * expected && (g.m() as f64) < 1.2 * expected,
            "m = {} vs expected {expected}",
            g.m()
        );
        // Determinism per seed, variation across seeds.
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(gnp_linear(200, 3.0, &mut r1), gnp_linear(200, 3.0, &mut r2));
        let mut r3 = StdRng::seed_from_u64(6);
        assert_ne!(gnp_linear(200, 3.0, &mut r1), gnp_linear(200, 3.0, &mut r3));
    }

    #[test]
    fn gnp_linear_edge_cases() {
        let mut r = rng();
        assert_eq!(gnp_linear(0, 4.0, &mut r).n(), 0);
        assert_eq!(gnp_linear(1, 4.0, &mut r).m(), 0);
        assert_eq!(gnp_linear(6, 0.0, &mut r).m(), 0);
        // avg_deg ≥ n−1 saturates to the clique.
        assert_eq!(gnp_linear(6, 10.0, &mut r).m(), 15);
    }

    #[test]
    fn k_degenerate_linear_has_exact_degeneracy() {
        let mut r = rng();
        for k in [1usize, 2, 4] {
            let g = k_degenerate_linear(500, k, &mut r);
            assert_eq!(checks::degeneracy(&g).0, k, "k = {k}");
            // Exactly k new edges per node past the k-th.
            assert_eq!(g.m(), (0..500).map(|i| k.min(i)).sum::<usize>());
        }
        assert_eq!(k_degenerate_linear(1, 3, &mut r).m(), 0);
    }
}
