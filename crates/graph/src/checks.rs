//! Reference sequential algorithms used as oracles for the whiteboard protocols.
//!
//! Every positive protocol result in the paper is tested against the functions
//! here: BFS forests against [`bfs_forest`], BUILD against the original
//! adjacency matrix, degeneracy recognition against [`degeneracy`], MIS outputs
//! against [`is_rooted_mis`], 2-CLIQUES against [`is_two_cliques`] and the
//! connectivity correspondence of §5.1.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// A BFS forest as the paper's protocols output it.
///
/// Each connected component is rooted at its minimum-ID node; `layer[v]` is the
/// BFS distance from the component root; `parent[v]` is the minimum-ID neighbor
/// of `v` in the previous layer (`None` for roots).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsForest {
    /// `layer[i]` is the layer of node `i+1`.
    pub layer: Vec<u32>,
    /// `parent[i]` is the tree parent of node `i+1`, `None` for component roots.
    pub parent: Vec<Option<NodeId>>,
    /// Component roots in increasing ID order.
    pub roots: Vec<NodeId>,
}

impl BfsForest {
    /// Validate this forest against `g`: parents are edges, layers increase by
    /// one along parent links, layers equal true BFS distance from the root,
    /// roots are component minima.
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        *self == bfs_forest(g)
    }
}

/// The canonical BFS forest: components in min-ID order, each rooted at its
/// min-ID node, parents being min-ID previous-layer neighbors.
///
/// Note: the paper defines `p(v)` as "the node in `N*_v` with minimum ID". In
/// the general (non-bipartite) SYNC protocol, `N*_v` may contain same-layer
/// neighbors, which would not give a tree edge; we read the intended definition
/// as minimum-ID neighbor *in the previous layer* (for bipartite inputs the two
/// definitions coincide because there are no intra-layer edges).
pub fn bfs_forest(g: &Graph) -> BfsForest {
    let n = g.n();
    let mut layer = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut roots = Vec::new();
    for start in 1..=n as NodeId {
        if layer[start as usize - 1] != u32::MAX {
            continue;
        }
        roots.push(start);
        layer[start as usize - 1] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let lu = layer[u as usize - 1];
            for &w in g.neighbors(u) {
                let wi = w as usize - 1;
                if layer[wi] == u32::MAX {
                    layer[wi] = lu + 1;
                    queue.push_back(w);
                }
            }
        }
    }
    // parent = min-ID neighbor in the previous layer (deterministic).
    for v in 1..=n as NodeId {
        let lv = layer[v as usize - 1];
        if lv == 0 {
            continue;
        }
        parent[v as usize - 1] = g
            .neighbors(v)
            .iter()
            .copied()
            .find(|&w| layer[w as usize - 1] == lv - 1);
    }
    BfsForest {
        layer,
        parent,
        roots,
    }
}

/// BFS distances from a single source (`u32::MAX` for unreachable nodes).
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    dist[source as usize - 1] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &w in g.neighbors(u) {
            if dist[w as usize - 1] == u32::MAX {
                dist[w as usize - 1] = dist[u as usize - 1] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected components, each sorted ascending, ordered by minimum ID.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.n()];
    let mut comps = Vec::new();
    for start in 1..=g.n() as NodeId {
        if seen[start as usize - 1] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start as usize - 1] = true;
        while let Some(u) = stack.pop() {
            comp.push(u);
            for &w in g.neighbors(u) {
                if !seen[w as usize - 1] {
                    seen[w as usize - 1] = true;
                    stack.push(w);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Whether `g` is connected (the 0-node graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    components(g).len() <= 1
}

/// A proper 2-coloring if one exists.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let mut color: Vec<Option<bool>> = vec![None; g.n()];
    for start in 1..=g.n() as NodeId {
        if color[start as usize - 1].is_some() {
            continue;
        }
        color[start as usize - 1] = Some(false);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let cu = color[u as usize - 1].unwrap();
            for &w in g.neighbors(u) {
                match color[w as usize - 1] {
                    None => {
                        color[w as usize - 1] = Some(!cu);
                        queue.push_back(w);
                    }
                    Some(cw) if cw == cu => return None,
                    _ => {}
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c.unwrap()).collect())
}

/// Whether `g` is bipartite.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

/// Whether `g` is *even-odd-bipartite*: no edge joins two IDs of equal parity
/// (the paper's EOB class, where the bipartition is known to every node).
pub fn is_even_odd_bipartite(g: &Graph) -> bool {
    g.edges().all(|(u, v)| (u % 2) != (v % 2))
}

/// Number of triangles (3-cliques) in `g`.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut count = 0;
    for u in 1..=g.n() as NodeId {
        let nu = g.neighbors(u);
        for (i, &v) in nu.iter().enumerate() {
            if v <= u {
                continue;
            }
            for &w in &nu[i + 1..] {
                if w > v && g.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Whether `g` contains a triangle (the TRIANGLE problem's reference oracle).
pub fn has_triangle(g: &Graph) -> bool {
    triangle_count(g) > 0
}

/// Whether `g` contains a 4-cycle ("Does G contain a square?" — one of the
/// problems the IPDPS'11 companion proves hard for one-round protocols).
pub fn has_square(g: &Graph) -> bool {
    // Two distinct nodes with two common neighbors form a C4.
    for u in 1..=g.n() as NodeId {
        for v in (u + 1)..=g.n() as NodeId {
            let mut common = 0;
            let (a, b) = (g.neighbors(u), g.neighbors(v));
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        common += 1;
                        if common >= 2 {
                            return true;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    false
}

/// Diameter of a connected graph (`None` if disconnected or empty).
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for v in 1..=g.n() as NodeId {
        let d = bfs_distances(g, v);
        best = best.max(d.into_iter().max().unwrap());
    }
    Some(best)
}

/// Exact degeneracy of `g` together with a witnessing elimination order
/// (Definition 1: order `r_1..r_n` such that `r_i` has degree ≤ k in the
/// subgraph induced by `{r_i..r_n}`). Bucket-queue peeling, `O(n + m)`.
///
/// ```
/// use wb_graph::{checks, generators};
///
/// assert_eq!(checks::degeneracy(&generators::path(10)).0, 1);   // forests: 1
/// assert_eq!(checks::degeneracy(&generators::cycle(10)).0, 2);  // cycles: 2
/// assert_eq!(checks::degeneracy(&generators::clique(6)).0, 5);  // K_n: n−1
/// ```
pub fn degeneracy(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.n();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut deg: Vec<usize> = (1..=n as NodeId).map(|v| g.degree(v)).collect();
    let maxd = g.max_degree();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); maxd + 1];
    for v in 1..=n as NodeId {
        buckets[deg[v as usize - 1]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut k = 0;
    let mut cursor = 0;
    for _ in 0..n {
        // Find the lowest non-empty bucket (cursor can retreat by one when a
        // neighbor's degree drops).
        while cursor > 0 && !buckets[cursor - 1].is_empty() {
            cursor -= 1;
        }
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize - 1] && deg[v as usize - 1] == cursor => break v,
                Some(_) => {
                    // Stale entry; drop it. If this empties the bucket, rescan.
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
                None => unreachable!("bucket emptied unexpectedly"),
            }
        };
        removed[v as usize - 1] = true;
        order.push(v);
        k = k.max(cursor);
        for &w in g.neighbors(v) {
            let wi = w as usize - 1;
            if !removed[wi] {
                deg[wi] -= 1;
                buckets[deg[wi]].push(w);
            }
        }
    }
    (k, order)
}

/// A witnessing elimination order for the §3-extension class: every prefix
/// removal takes a node whose degree among the survivors is ≤ `k` **or**
/// ≥ `survivors − k − 1` ("low or high degree"). Returns `None` if `g` is not
/// in the class.
///
/// Greedy peeling is complete here because the class is closed under vertex
/// removal: deleting any vertex only shrinks later-degrees (preserving the
/// low condition) and shrinks the survivor count in lockstep with degrees
/// (preserving the high condition).
pub fn mixed_elimination(g: &Graph, k: usize) -> Option<Vec<NodeId>> {
    let n = g.n();
    let mut deg: Vec<usize> = (1..=n as NodeId).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut remaining = n;
    let mut order = Vec::with_capacity(n);
    while remaining > 0 {
        let candidate = (1..=n as NodeId).find(|&v| {
            alive[v as usize - 1]
                && (deg[v as usize - 1] <= k || deg[v as usize - 1] + k + 1 >= remaining)
        })?;
        alive[candidate as usize - 1] = false;
        remaining -= 1;
        order.push(candidate);
        for &w in g.neighbors(candidate) {
            if alive[w as usize - 1] {
                deg[w as usize - 1] -= 1;
            }
        }
    }
    Some(order)
}

/// Whether `set` is an independent set of `g`.
pub fn is_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Whether `set` is a *maximal* (by inclusion) independent set of `g`
/// containing the distinguished node `root` — the output predicate of the
/// paper's rooted MIS problem.
pub fn is_rooted_mis(g: &Graph, set: &[NodeId], root: NodeId) -> bool {
    if !set.contains(&root) || !is_independent_set(g, set) {
        return false;
    }
    // Maximality: every node outside has a neighbor inside.
    let inside = {
        let mut b = vec![false; g.n()];
        for &v in set {
            b[v as usize - 1] = true;
        }
        b
    };
    g.nodes()
        .all(|v| inside[v as usize - 1] || g.neighbors(v).iter().any(|&w| inside[w as usize - 1]))
}

/// Whether `g` is the disjoint union of two n-cliques on 2n nodes (the
/// 2-CLIQUES problem; inputs are promised (n−1)-regular with 2n nodes).
pub fn is_two_cliques(g: &Graph) -> bool {
    if g.n() % 2 != 0 || g.n() == 0 {
        return false;
    }
    let half = g.n() / 2;
    let comps = components(g);
    comps.len() == 2
        && comps
            .iter()
            .all(|c| c.len() == half && c.iter().all(|&v| g.degree(v) == half - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(1..n as NodeId).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn bfs_forest_on_path() {
        let g = path(5);
        let f = bfs_forest(&g);
        assert_eq!(f.roots, vec![1]);
        assert_eq!(f.layer, vec![0, 1, 2, 3, 4]);
        assert_eq!(f.parent, vec![None, Some(1), Some(2), Some(3), Some(4)]);
        assert!(f.is_valid_for(&g));
    }

    #[test]
    fn bfs_forest_multi_component() {
        // {1,2} and {3,4,5} components.
        let g = Graph::from_edges(5, &[(1, 2), (3, 4), (4, 5), (3, 5)]);
        let f = bfs_forest(&g);
        assert_eq!(f.roots, vec![1, 3]);
        assert_eq!(f.layer, vec![0, 1, 0, 1, 1]);
        assert_eq!(f.parent, vec![None, Some(1), None, Some(3), Some(3)]);
    }

    #[test]
    fn bfs_parent_is_min_id_in_previous_layer() {
        // Node 4 adjacent to both 2 and 3, which are both in layer 1.
        let g = Graph::from_edges(4, &[(1, 2), (1, 3), (2, 4), (3, 4)]);
        let f = bfs_forest(&g);
        assert_eq!(f.parent[3], Some(2));
    }

    #[test]
    fn distances_unreachable_are_max() {
        let g = Graph::from_edges(4, &[(1, 2)]);
        let d = bfs_distances(&g, 1);
        assert_eq!(d, vec![0, 1, u32::MAX, u32::MAX]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(6, &[(1, 4), (2, 5), (5, 6)]);
        assert_eq!(components(&g), vec![vec![1, 4], vec![2, 5, 6], vec![3]]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path(6)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn bipartite_checks() {
        assert!(is_bipartite(&path(5)));
        let c4 = Graph::from_edges(4, &[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let c5 = Graph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        assert!(is_bipartite(&c4));
        assert!(!is_bipartite(&c5));
    }

    #[test]
    fn eob_requires_parity_respecting_edges() {
        assert!(is_even_odd_bipartite(&Graph::from_edges(
            4,
            &[(1, 2), (2, 3), (3, 4)]
        )));
        assert!(!is_even_odd_bipartite(&Graph::from_edges(4, &[(1, 3)])));
        // bipartite but not even-odd-bipartite:
        let g = Graph::from_edges(4, &[(1, 3), (3, 2), (2, 4)]);
        assert!(is_bipartite(&g) && !is_even_odd_bipartite(&g));
    }

    #[test]
    fn triangle_counting() {
        let k4 = Graph::empty(4).complement();
        assert_eq!(triangle_count(&k4), 4);
        assert!(has_triangle(&k4));
        assert!(!has_triangle(&path(5)));
        let c5 = Graph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        assert!(!has_triangle(&c5));
    }

    #[test]
    fn square_detection() {
        let c4 = Graph::from_edges(4, &[(1, 2), (2, 3), (3, 4), (4, 1)]);
        assert!(has_square(&c4));
        assert!(!has_square(&path(5)));
        let k4 = Graph::empty(4).complement();
        assert!(has_square(&k4));
        // triangle has no square
        let k3 = Graph::empty(3).complement();
        assert!(!has_square(&k3));
    }

    #[test]
    fn diameter_examples() {
        assert_eq!(diameter(&path(5)), Some(4));
        assert_eq!(diameter(&Graph::empty(3).complement()), Some(1));
        assert_eq!(diameter(&Graph::from_edges(3, &[(1, 2)])), None);
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
    }

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy(&path(7)).0, 1);
        assert_eq!(degeneracy(&Graph::empty(5)).0, 0);
        let c6 = Graph::from_edges(6, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1)]);
        assert_eq!(degeneracy(&c6).0, 2);
        let k5 = Graph::empty(5).complement();
        assert_eq!(degeneracy(&k5).0, 4);
    }

    #[test]
    fn degeneracy_order_is_witness() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let g = generators::gnp(24, 0.2, &mut rng);
            let (k, order) = degeneracy(&g);
            // Verify the order: each r_i has ≤ k later neighbors.
            let mut pos = vec![0usize; g.n()];
            for (i, &v) in order.iter().enumerate() {
                pos[v as usize - 1] = i;
            }
            for (i, &v) in order.iter().enumerate() {
                let later = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| pos[w as usize - 1] > i)
                    .count();
                assert!(later <= k, "node {v} has {later} later neighbors > k={k}");
            }
        }
    }

    #[test]
    fn independent_set_checks() {
        let g = Graph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 5)]);
        assert!(is_independent_set(&g, &[1, 3, 5]));
        assert!(!is_independent_set(&g, &[1, 2]));
        assert!(is_rooted_mis(&g, &[1, 3, 5], 1));
        assert!(is_rooted_mis(&g, &[1, 3, 5], 3));
        assert!(!is_rooted_mis(&g, &[3], 3)); // 1,5 uncovered
        assert!(!is_rooted_mis(&g, &[1, 3, 5], 2)); // root not in set
    }

    #[test]
    fn rooted_mis_1_4_on_path5_is_maximal() {
        // {1,4} on the path 1-2-3-4-5: 2~1, 3~4, 5~4 — maximal. Positive case.
        let g = Graph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 5)]);
        assert!(is_rooted_mis(&g, &[1, 4], 1));
    }

    #[test]
    fn mixed_elimination_accepts_low_and_high() {
        // Pure degeneracy-k graphs are in the class…
        let mut rng = StdRng::seed_from_u64(9);
        let sparse = generators::k_degenerate(20, 2, true, &mut rng);
        assert!(mixed_elimination(&sparse, 2).is_some());
        // …and so are their complements ("high" side):
        assert!(mixed_elimination(&sparse.complement(), 2).is_some());
        // Cliques are in the class for every k:
        assert!(mixed_elimination(&generators::clique(8), 0).is_some());
        // A 3-regular bipartite-ish graph with n = 8 is in neither side at k = 1:
        let cube = Graph::from_edges(
            8,
            &[
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 5),
                (1, 5),
                (2, 6),
                (3, 7),
                (4, 8),
            ],
        );
        assert!(mixed_elimination(&cube, 1).is_none());
        assert!(mixed_elimination(&cube, 3).is_some());
    }

    #[test]
    fn mixed_elimination_order_is_a_witness() {
        let mut rng = StdRng::seed_from_u64(10);
        for k in 1..=3 {
            let g = generators::mixed_low_high(22, k, &mut rng);
            let order = mixed_elimination(&g, k).expect("generator stays in class");
            // Verify the witness: each node is low or high among the suffix.
            let mut pos = vec![0usize; g.n()];
            for (i, &v) in order.iter().enumerate() {
                pos[v as usize - 1] = i;
            }
            for (i, &v) in order.iter().enumerate() {
                let later = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| pos[w as usize - 1] > i)
                    .count();
                let survivors = g.n() - i;
                assert!(
                    later <= k || later + k + 1 >= survivors,
                    "node {v}: later-degree {later} of {survivors} survivors, k={k}"
                );
            }
        }
    }

    #[test]
    fn two_cliques_recognition() {
        let mut rng = StdRng::seed_from_u64(3);
        let yes = generators::two_cliques(5);
        assert!(is_two_cliques(&yes));
        assert_eq!(yes.regular_degree(), Some(4));
        let no = generators::connected_regular_impostor(5, &mut rng);
        assert!(!is_two_cliques(&no));
        assert_eq!(no.regular_degree(), Some(4));
        assert!(is_connected(&no));
        // the §5.1 correspondence: within the promise class, 2-cliques ⟺ disconnected
        assert!(!is_connected(&yes));
    }
}
