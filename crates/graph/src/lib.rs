//! Labeled graphs for the shared-whiteboard models.
//!
//! The paper's inputs are simple undirected connected (or multi-component)
//! graphs whose nodes carry unique identifiers `1..n`; every node knows `n`,
//! its own ID and its neighbors' IDs. This crate provides:
//!
//! - [`graph`] — the [`Graph`] type (ID-labeled adjacency lists) and the dense
//!   [`AdjMatrix`] used as the output of the BUILD problem;
//! - [`checks`] — *reference* sequential algorithms used as oracles when testing
//!   the whiteboard protocols: BFS layers/forests, connectivity, bipartiteness,
//!   triangle counting, degeneracy (bucket peeling), independent-set validity,
//!   diameter;
//! - [`generators`] — seeded random and structured families: G(n,p), trees,
//!   forests, k-trees and partial k-trees, k-degenerate graphs, (even-odd)
//!   bipartite graphs, two-clique unions and their connected regular impostors,
//!   paths/cycles/cliques/stars;
//! - [`enumerate`] — exhaustive enumeration of all (or all connected) graphs on
//!   small `n`, powering the model-checking tests;
//! - [`automorphism`] — exact enumeration of (pointwise-stabilizer) graph
//!   automorphism groups, powering the exhaustive tier's symmetry quotient.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automorphism;
pub mod checks;
pub mod dot;
pub mod enumerate;
pub mod generators;
pub mod graph;
pub mod io;

pub use graph::{AdjMatrix, Graph, NodeId};
