//! Counting machinery behind the paper's impossibility results.
//!
//! Lemma 3: if BUILD restricted to a family `G` of n-node graphs is solvable in
//! any of the four models with message size `f(n)`, then
//! `log₂ g(n) = O(n·f(n))` where `g(n) = |G|` — the final whiteboard must
//! distinguish all members of the family. Every "no" cell of Table 2 is a
//! reduction to BUILD plus this inequality. This module computes both sides
//! *exactly*: family cardinalities in bits, and whiteboard capacity.

use crate::bigint::BigInt;

/// Exact binomial coefficient `C(n, k)`.
pub fn binomial(n: u64, k: u64) -> BigInt {
    if k > n {
        return BigInt::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigInt::one();
    for i in 1..=k {
        acc = &acc * &BigInt::from(n - k + i);
        acc = acc.div_exact_u64(i); // exact at every step: C(n-k+i, i) is integral
    }
    acc
}

/// `log₂` of the number of *all* labeled graphs on `n` nodes: `C(n,2)`.
pub fn log2_all_graphs(n: u64) -> u64 {
    n * (n - 1) / 2
}

/// `log₂` of the number of bipartite graphs with **fixed** parts
/// `{v₁..v_a} ∪ {v_{a+1}..v_{a+b}}`: `a·b`.
///
/// Theorem 3 uses parts of size `n/2` each: `Ω(2^{(n/2)²})` graphs.
pub fn log2_bipartite_fixed(a: u64, b: u64) -> u64 {
    a * b
}

/// `log₂` of the number of even-odd-bipartite graphs on `n` nodes (no edge joins
/// two IDs of equal parity): `⌈n/2⌉·⌊n/2⌋`. Theorem 8's family.
pub fn log2_even_odd_bipartite(n: u64) -> u64 {
    (n / 2) * n.div_ceil(2)
}

/// Cayley's formula: the number of labeled trees on `n` nodes, `n^{n−2}`.
///
/// A lower bound on the number of labeled forests — enough to show the BUILD
/// protocol for forests (§3.1) must spend `Ω(log n)` bits per node.
pub fn labeled_trees(n: u64) -> BigInt {
    match n {
        0 => BigInt::zero(),
        1 | 2 => BigInt::one(),
        _ => BigInt::pow_u64(n, (n - 2) as u32),
    }
}

/// Number of graphs needed by Theorem 9's argument: graphs on `n` nodes where
/// `v_{f(n)+1}..v_n` are isolated, described by `n log n + f(n)²`-ish bits; we
/// return the exact `log₂` of the count: `C(f,2)` free edge slots.
pub fn log2_subgraph_family(f: u64) -> u64 {
    log2_all_graphs(f)
}

/// Whiteboard capacity in bits: `n` messages of at most `per_msg_bits` bits.
pub fn board_capacity_bits(n: u64, per_msg_bits: u64) -> u64 {
    n * per_msg_bits
}

/// Outcome of the Lemma 3 test for one `(family, n, f)` point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityVerdict {
    /// `log₂ g(n)` — bits required to name a member of the family.
    pub required_bits: u64,
    /// `n · f(n)` — bits the final whiteboard can hold.
    pub capacity_bits: u64,
}

impl CapacityVerdict {
    /// True iff the whiteboard *cannot* distinguish the family — i.e. BUILD on
    /// this family is impossible with this message size (the Lemma 3
    /// contradiction fires).
    pub fn impossible(&self) -> bool {
        self.capacity_bits < self.required_bits
    }
}

/// Evaluate Lemma 3 for a family with `log₂ g(n) = required_bits`.
pub fn lemma3(required_bits: u64, n: u64, per_msg_bits: u64) -> CapacityVerdict {
    CapacityVerdict {
        required_bits,
        capacity_bits: board_capacity_bits(n, per_msg_bits),
    }
}

/// Message-size regimes used in the sweep experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageRegime {
    /// `f(n) = c·⌈log₂ n⌉`.
    LogN {
        /// multiplicative constant
        c: u64,
    },
    /// `f(n) = ⌈√n⌉`.
    SqrtN,
    /// `f(n) = ⌈n / log₂ n⌉` — still `o(n)`.
    NOverLogN,
    /// `f(n) = n` — the trivial regime in which everything is solvable.
    Linear,
}

impl MessageRegime {
    /// Evaluate the regime at `n`.
    pub fn bits(&self, n: u64) -> u64 {
        match *self {
            MessageRegime::LogN { c } => c * crate::bits_for(n) as u64,
            MessageRegime::SqrtN => (n as f64).sqrt().ceil() as u64,
            MessageRegime::NOverLogN => n.div_ceil(crate::bits_for(n) as u64),
            MessageRegime::Linear => n,
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match *self {
            MessageRegime::LogN { c } => format!("{c}·log n"),
            MessageRegime::SqrtN => "√n".into(),
            MessageRegime::NOverLogN => "n/log n".into(),
            MessageRegime::Linear => "n".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binomial_small_table() {
        assert_eq!(binomial(0, 0).to_u64(), Some(1));
        assert_eq!(binomial(5, 2).to_u64(), Some(10));
        assert_eq!(binomial(10, 5).to_u64(), Some(252));
        assert_eq!(binomial(10, 11).to_u64(), Some(0));
        assert_eq!(binomial(52, 5).to_u64(), Some(2_598_960));
    }

    #[test]
    fn binomial_large_exact() {
        // C(100, 50) known value.
        assert_eq!(
            format!("{}", binomial(100, 50)),
            "100891344545564193334812497256"
        );
    }

    #[test]
    fn pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = &binomial(n - 1, k - 1) + &binomial(n - 1, k);
                assert_eq!(lhs, rhs, "C({n},{k})");
            }
        }
    }

    #[test]
    fn cayley_small() {
        assert_eq!(labeled_trees(1).to_u64(), Some(1));
        assert_eq!(labeled_trees(2).to_u64(), Some(1));
        assert_eq!(labeled_trees(3).to_u64(), Some(3));
        assert_eq!(labeled_trees(4).to_u64(), Some(16));
        assert_eq!(labeled_trees(5).to_u64(), Some(125));
    }

    #[test]
    fn lemma3_triangle_family_is_infeasible_at_log_n() {
        // Theorem 3: bipartite graphs with fixed halves need (n/2)² bits but a
        // log-n whiteboard holds only n·O(log n). (The asymptotics kick in once
        // n/4 > c·log n, i.e. n ≥ 256 for c = 4.)
        for n in [256u64, 1024, 4096] {
            let required = log2_bipartite_fixed(n / 2, n / 2);
            let verdict = lemma3(required, n, MessageRegime::LogN { c: 4 }.bits(n));
            assert!(verdict.impossible(), "n={n}: {verdict:?}");
        }
    }

    #[test]
    fn lemma3_forest_family_is_feasible_at_log_n() {
        // Forests carry ~n log n bits of information; a 4·log n whiteboard
        // suffices — consistent with the §3.1 protocol existing.
        for n in [64u64, 256, 1024, 4096] {
            let required = labeled_trees(n).bits();
            let verdict = lemma3(required, n, MessageRegime::LogN { c: 4 }.bits(n));
            assert!(!verdict.impossible(), "n={n}: {verdict:?}");
        }
    }

    #[test]
    fn lemma3_linear_messages_always_feasible_for_all_graphs() {
        for n in [8u64, 64, 512] {
            let verdict = lemma3(log2_all_graphs(n), n, MessageRegime::Linear.bits(n));
            assert!(!verdict.impossible(), "n={n}");
        }
    }

    #[test]
    fn eob_count_matches_fixed_parts() {
        // ⌈n/2⌉ odd IDs, ⌊n/2⌋ even IDs.
        assert_eq!(log2_even_odd_bipartite(6), 9);
        assert_eq!(log2_even_odd_bipartite(7), 12);
        assert_eq!(log2_even_odd_bipartite(2), 1);
    }

    #[test]
    fn regime_ordering_at_large_n() {
        let n = 1u64 << 20;
        let log = MessageRegime::LogN { c: 1 }.bits(n);
        let sqrt = MessageRegime::SqrtN.bits(n);
        let nlog = MessageRegime::NOverLogN.bits(n);
        let lin = MessageRegime::Linear.bits(n);
        assert!(log < sqrt && sqrt < nlog && nlog < lin);
    }

    proptest! {
        #[test]
        fn binomial_symmetry(n in 0u64..80, k in 0u64..80) {
            if k <= n {
                prop_assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }

        #[test]
        fn binomial_row_sums_to_pow2(n in 0u64..50) {
            let total: BigInt = (0..=n).map(|k| binomial(n, k)).sum();
            prop_assert_eq!(total, BigInt::pow_u64(2, n as u32));
        }
    }
}
