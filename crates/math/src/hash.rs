//! The 128-bit streaming digest behind configuration fingerprints and
//! exploration certificates.
//!
//! [`Digest128`] consumes a sequence of `u64` words and produces a 128-bit
//! value. The engine feeds it the canonical configuration encoding to get its
//! dedup fingerprints; certificates name configurations by the same value;
//! and the independent verifier (`wb-verify`) recomputes it from its own
//! re-implementation of the encoding. The construction is therefore part of
//! the certificate *format* (`docs/CERTIFICATES.md`), frozen at `wb-cert/v1`:
//!
//! - two independent 64-bit streams, seeded with the fractional parts of
//!   `sqrt(2)` and `sqrt(3)`;
//! - per word: `a = (a ^ w) * FNV64_PRIME`,
//!   `b = (b ^ rotl(w, 31)) * XXH64_PRIME2` — each step is a bijection of the
//!   stream state (odd multiplier, xor), and the rotated input keeps the
//!   streams from cancelling in lockstep;
//! - finalization: [`mix64`] (the splitmix64 finalizer) on each stream,
//!   high word `a`, low word `b`.
//!
//! Distinct inputs collide with probability ~`q²/2¹²⁹` after `q` digests
//! (birthday bound, treating the mixers as independent random functions).

/// The splitmix64 finalizer: a bijective 64-bit diffusion step.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 128-bit streaming word digest (see the module docs for the exact
/// construction — it is a frozen format, not an implementation detail).
#[derive(Clone, Copy, Debug)]
pub struct Digest128 {
    a: u64,
    b: u64,
}

impl Digest128 {
    /// A fresh digest.
    pub fn new() -> Self {
        Digest128 {
            a: 0x6A09_E667_F3BC_C908, // frac(sqrt(2)), frac(sqrt(3))
            b: 0xBB67_AE85_84CA_A73B,
        }
    }

    /// Absorb one word.
    #[inline]
    pub fn put(&mut self, word: u64) {
        self.a = (self.a ^ word).wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a 64 prime
        self.b = (self.b ^ word.rotate_left(31)).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        // xxh prime2
    }

    /// Absorb a byte string, length-framed so `finish` is injective over
    /// concatenations: the length in bytes, then the bytes packed
    /// little-endian 8 per word. This is how certificate *documents* are
    /// digested; configuration encodings feed [`Self::put`] directly.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.put(u64::from_le_bytes(w));
        }
    }

    /// Finalize: diffused `a` in the high 64 bits, diffused `b` in the low.
    pub fn finish(self) -> u128 {
        ((mix64(self.a) as u128) << 64) | mix64(self.b) as u128
    }
}

impl Default for Digest128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a digest the way certificates do: `0x` + 32 lower-case hex digits,
/// fixed width so the serialized form is canonical.
pub fn hex128(x: u128) -> String {
    format!("0x{x:032x}")
}

/// Parse the [`hex128`] rendering (strict: exactly 34 characters).
pub fn parse_hex128(s: &str) -> Option<u128> {
    let digits = s.strip_prefix("0x")?;
    if digits.len() != 32
        || digits
            .bytes()
            .any(|b| !b.is_ascii_hexdigit() || b.is_ascii_uppercase())
    {
        return None;
    }
    u128::from_str_radix(digits, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_word_sensitive() {
        let digest = |words: &[u64]| {
            let mut d = Digest128::new();
            for &w in words {
                d.put(w);
            }
            d.finish()
        };
        assert_eq!(digest(&[1, 2, 3]), digest(&[1, 2, 3]));
        assert_ne!(digest(&[1, 2, 3]), digest(&[1, 3, 2]));
        assert_ne!(digest(&[0]), digest(&[]));
        assert_ne!(digest(&[0]), digest(&[0, 0]));
    }

    #[test]
    fn byte_framing_is_injective_over_length() {
        let digest = |bytes: &[u8]| {
            let mut d = Digest128::new();
            d.put_bytes(bytes);
            d.finish()
        };
        assert_ne!(digest(b"ab"), digest(b"ab\0"));
        assert_ne!(digest(b""), digest(b"\0"));
        assert_eq!(digest(b"certificate"), digest(b"certificate"));
    }

    #[test]
    fn hex_round_trips_strictly() {
        let x = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        assert_eq!(parse_hex128(&hex128(x)), Some(x));
        assert_eq!(hex128(1).len(), 34);
        assert_eq!(parse_hex128(&hex128(1)), Some(1));
        assert_eq!(parse_hex128("0x1"), None, "not fixed-width");
        assert_eq!(parse_hex128(&hex128(1).to_uppercase()), None);
        assert_eq!(parse_hex128("1234"), None, "missing prefix");
    }
}
