//! Minimal JSON emit/parse for benchmark artifacts and certificates.
//!
//! The experiment binaries record machine-readable results
//! (`BENCH_explore.json`) that CI compares against checked-in baselines, and
//! exploration certificates (`docs/CERTIFICATES.md`) are serialized as
//! single-line JSON objects; no external JSON crate is on the approved
//! dependency list, so this module carries the tiny subset those need:
//! objects, arrays, strings (with escapes), numbers, booleans and null.
//!
//! Emission is **canonical**: object keys are sorted (`BTreeMap`), no
//! whitespace is produced, integral numbers below `10¹⁵` print without a
//! fraction, and strings escape exactly the characters [`escape`] escapes.
//! Certificates rely on this — `parse` followed by `Display` is the normal
//! form their digests are computed over.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value we emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys — deterministic emission).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

/// Escape a string into a JSON literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Json::Obj(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{}", escape(k), v)?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // UTF-16 surrogate pair: a high surrogate must be
                        // followed by `\uDC00..\uDFFF`, combining into one
                        // non-BMP scalar.
                        if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(format!("lone high surrogate \\u{code:04x}"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!("invalid low surrogate \\u{low:04x}"));
                            }
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            *pos += 6;
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err(format!("lone low surrogate \\u{code:04x}"));
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u scalar")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bench_shaped_documents() {
        let text = r#"{
            "schema": "wb-bench/explore-scaling/v1",
            "rows": [
                {"protocol": "BUILD(1)", "n": 7, "states_per_sec": 1234567.5, "truncated": false},
                {"protocol": "MIS(1)", "n": 7, "states_per_sec": 7e5, "truncated": true}
            ],
            "n7_reduction": 107.25,
            "note": null
        }"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("wb-bench/explore-scaling/v1")
        );
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("states_per_sec").and_then(Json::as_f64),
            Some(1234567.5)
        );
        assert_eq!(rows[1].get("truncated"), Some(&Json::Bool(true)));
        assert_eq!(v.get("note"), Some(&Json::Null));
        // Emit and reparse: identical value.
        let emitted = v.to_string();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let emitted = v.to_string();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // BMP escapes and literal non-BMP characters still round-trip.
        assert_eq!(Json::parse(r#""é 😀""#).unwrap(), Json::Str("é 😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
        assert!(
            Json::parse(r#""\ud83dA""#).is_err(),
            "high surrogate followed by non-surrogate"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} extra").is_err());
    }
}
