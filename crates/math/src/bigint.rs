//! Arbitrary-precision signed integers: sign + magnitude over little-endian `u64`
//! limbs.
//!
//! Scope is deliberately tight — exactly the operations the whiteboard protocols
//! and their decoders need: add/sub/mul, comparison, exponentiation by small
//! exponents, division by a machine-word divisor (Newton's identities divide by
//! `m ≤ k`, which is always exact), decimal conversion for reports, and bit-length
//! for the counting lower bounds. Everything is checked against `i128` references
//! and algebraic laws in the test suite.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Sign of a [`BigInt`]. Zero is canonically `Plus` with an empty magnitude.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Sign {
    Plus,
    Minus,
}

/// An arbitrary-precision signed integer.
///
/// ```
/// use wb_math::BigInt;
///
/// let a = BigInt::pow_u64(10, 30); // beyond u64
/// let b = &a * &a;                 // beyond u128
/// assert_eq!(format!("{b}"), format!("1{}", "0".repeat(60)));
/// assert!((&b - &b).is_zero());
/// // 10^60 mod 7 = (3^6)^10 mod 7 = 1 by Fermat's little theorem.
/// assert_eq!(b.div_rem_u64(7).1, 1);
/// ```
///
/// Invariants: `mag` has no trailing zero limbs; the zero value has an empty
/// magnitude and sign `Plus`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: Vec<u64>,
}

impl BigInt {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: Vec::new(),
        }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigInt::from(1u64)
    }

    /// Whether this is `0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether this is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Number of bits in the magnitude (`0` for zero). For `x > 0` this is
    /// `⌊log₂ x⌋ + 1`, the quantity the Lemma 3 capacity arguments compare
    /// against whiteboard budgets.
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u64 - 1) * 64 + (64 - top.leading_zeros()) as u64,
        }
    }

    /// `|self|` as a new value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: self.mag.clone(),
        }
    }

    /// Construct `base^exp` for machine-word `base`.
    pub fn pow_u64(base: u64, exp: u32) -> BigInt {
        let mut acc = BigInt::one();
        let b = BigInt::from(base);
        for _ in 0..exp {
            acc = &acc * &b;
        }
        acc
    }

    /// Raise `self` to a small power.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mut acc = BigInt::one();
        let mut b = self.clone();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &b;
            }
            e >>= 1;
            if e > 0 {
                b = &b * &b;
            }
        }
        acc
    }

    /// Divide by a machine-word divisor, returning `(quotient, remainder)`.
    ///
    /// The remainder carries the sign convention of Rust's `%` (same sign as the
    /// dividend). Panics if `div == 0`.
    pub fn div_rem_u64(&self, div: u64) -> (BigInt, i128) {
        assert!(div != 0, "division by zero");
        let mut q = vec![0u64; self.mag.len()];
        let mut rem: u128 = 0;
        for i in (0..self.mag.len()).rev() {
            let cur = (rem << 64) | self.mag[i] as u128;
            q[i] = (cur / div as u128) as u64;
            rem = cur % div as u128;
        }
        let quotient = BigInt {
            sign: self.sign,
            mag: q,
        }
        .normalized();
        let rem = rem as i128;
        let rem = if self.sign == Sign::Minus { -rem } else { rem };
        (quotient, rem)
    }

    /// Exact division by a machine-word divisor. Panics if the division leaves a
    /// remainder — Newton's identities guarantee exactness, and a panic here
    /// means the decoder was fed a vector that is not a power-sum image.
    pub fn div_exact_u64(&self, div: u64) -> BigInt {
        let (q, r) = self.div_rem_u64(div);
        assert_eq!(r, 0, "div_exact_u64: non-exact division by {div}");
        q
    }

    /// Checked conversion to `u64` (None if negative or too large).
    pub fn to_u64(&self) -> Option<u64> {
        if self.sign == Sign::Minus {
            return None;
        }
        match self.mag.len() {
            0 => Some(0),
            1 => Some(self.mag[0]),
            _ => None,
        }
    }

    /// Checked conversion to `u128` (None if negative or too large).
    pub fn to_u128(&self) -> Option<u128> {
        if self.sign == Sign::Minus {
            return None;
        }
        match self.mag.len() {
            0 => Some(0),
            1 => Some(self.mag[0] as u128),
            2 => Some((self.mag[1] as u128) << 64 | self.mag[0] as u128),
            _ => None,
        }
    }

    /// Checked conversion to `i128`.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = match self.mag.len() {
            0 => 0u128,
            1 => self.mag[0] as u128,
            2 => (self.mag[1] as u128) << 64 | self.mag[0] as u128,
            _ => return None,
        };
        match self.sign {
            Sign::Plus => i128::try_from(mag).ok(),
            Sign::Minus => {
                if mag == 1u128 << 127 {
                    Some(i128::MIN)
                } else {
                    i128::try_from(mag).ok().map(|v| -v)
                }
            }
        }
    }

    /// The little-endian limb view of the magnitude.
    pub fn limbs(&self) -> &[u64] {
        &self.mag
    }

    /// Build a non-negative value from little-endian limbs.
    pub fn from_limbs(limbs: Vec<u64>) -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: limbs,
        }
        .normalized()
    }

    fn normalized(mut self) -> Self {
        while self.mag.last() == Some(&0) {
            self.mag.pop();
        }
        if self.mag.is_empty() {
            self.sign = Sign::Plus;
        }
        self
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u128;
        for i in 0..long.len() {
            let s = long[i] as u128 + *short.get(i).unwrap_or(&0) as u128 + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        out
    }

    /// `a - b` for magnitudes, requires `a >= b`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for i in 0..a.len() {
            let d = a[i] as i128 - *b.get(i).unwrap_or(&0) as i128 - borrow;
            if d < 0 {
                out.push((d + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(d as u64);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + b.len();
            while carry != 0 {
                let cur = out[idx] as u128 + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        out
    }

    fn signed_sum(lhs: &BigInt, rhs: &BigInt, flip_rhs: bool) -> BigInt {
        let rhs_sign = if flip_rhs {
            match rhs.sign {
                Sign::Plus => Sign::Minus,
                Sign::Minus => Sign::Plus,
            }
        } else {
            rhs.sign
        };
        if lhs.sign == rhs_sign {
            BigInt {
                sign: lhs.sign,
                mag: Self::add_mag(&lhs.mag, &rhs.mag),
            }
            .normalized()
        } else {
            match Self::cmp_mag(&lhs.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    sign: lhs.sign,
                    mag: Self::sub_mag(&lhs.mag, &rhs.mag),
                }
                .normalized(),
                Ordering::Less => BigInt {
                    sign: rhs_sign,
                    mag: Self::sub_mag(&rhs.mag, &lhs.mag),
                }
                .normalized(),
            }
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: if v == 0 { Vec::new() } else { vec![v] },
        }
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> Self {
        BigInt::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt {
                sign: Sign::Minus,
                mag: vec![v.unsigned_abs()],
            }
        } else {
            BigInt::from(v as u64)
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let mag = v.unsigned_abs();
        let b = BigInt::from(mag);
        if v < 0 {
            -b
        } else {
            b
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        if !self.is_zero() {
            self.sign = match self.sign {
                Sign::Plus => Sign::Minus,
                Sign::Minus => Sign::Plus,
            };
        }
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        BigInt::signed_sum(self, rhs, false)
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        BigInt::signed_sum(self, rhs, true)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt {
            sign,
            mag: BigInt::mul_mag(&self.mag, &rhs.mag),
        }
        .normalized()
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, x| &acc + &x)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => Self::cmp_mag(&self.mag, &other.mag),
            (Sign::Minus, Sign::Minus) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeatedly divide by 10^19 (the largest power of ten in a u64) and
        // print 19-digit chunks.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.abs();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r as u64); // r ∈ [0, CHUNK) since cur ≥ 0
            cur = q;
        }
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for c in chunks.iter().rev().skip(1) {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_identity() {
        assert!(BigInt::zero().is_zero());
        assert_eq!(BigInt::zero(), BigInt::from(0u64));
        assert_eq!(&big(42) + &BigInt::zero(), big(42));
        assert_eq!(&big(-42) + &BigInt::zero(), big(-42));
        assert_eq!(BigInt::zero().to_i128(), Some(0));
        assert_eq!(format!("{}", BigInt::zero()), "0");
    }

    #[test]
    fn negation_of_zero_is_zero() {
        assert_eq!(-BigInt::zero(), BigInt::zero());
        assert!(!(-BigInt::zero()).is_negative());
    }

    #[test]
    fn display_multi_limb() {
        // 2^128 = 340282366920938463463374607431768211456
        let v = BigInt::pow_u64(2, 128);
        assert_eq!(format!("{v}"), "340282366920938463463374607431768211456");
        assert_eq!(
            format!("{}", -v),
            "-340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn bits_of_powers_of_two() {
        for e in 0..300u32 {
            let v = BigInt::pow_u64(2, e);
            assert_eq!(v.bits(), e as u64 + 1, "2^{e}");
        }
        assert_eq!(BigInt::zero().bits(), 0);
    }

    #[test]
    fn div_rem_small_matches_i128() {
        let v = big(1_000_000_007i128 * 998_244_353);
        let (q, r) = v.div_rem_u64(12345);
        assert_eq!(
            q.to_i128().unwrap(),
            (1_000_000_007i128 * 998_244_353) / 12345
        );
        assert_eq!(r, (1_000_000_007i128 * 998_244_353) % 12345);
    }

    #[test]
    fn div_rem_negative_dividend() {
        let v = big(-100);
        let (q, r) = v.div_rem_u64(7);
        // Rust semantics: -100 / 7 = -14 rem -2.
        assert_eq!(q.to_i128().unwrap(), -14);
        assert_eq!(r, -2);
    }

    #[test]
    #[should_panic(expected = "non-exact")]
    fn div_exact_panics_on_remainder() {
        big(10).div_exact_u64(3);
    }

    #[test]
    fn pow_u64_large() {
        // 10^40 needs 3 limbs; check against string.
        let v = BigInt::pow_u64(10, 40);
        assert_eq!(format!("{v}"), format!("1{}", "0".repeat(40)));
    }

    #[test]
    fn i128_round_trip_extremes() {
        for v in [
            i128::MAX,
            i128::MIN,
            0,
            1,
            -1,
            i64::MAX as i128,
            i64::MIN as i128,
        ] {
            assert_eq!(BigInt::from(v).to_i128(), Some(v), "{v}");
        }
    }

    #[test]
    fn ordering_mixed_signs() {
        assert!(big(-5) < big(3));
        assert!(big(-5) < big(-3));
        assert!(big(5) > big(3));
        assert!(BigInt::zero() > big(-1));
        assert!(BigInt::zero() < big(1));
    }

    proptest! {
        #[test]
        fn add_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((&big(a) + &big(b)).to_i128(), Some(a + b));
        }

        #[test]
        fn sub_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!((&big(a) - &big(b)).to_i128(), Some(a - b));
        }

        #[test]
        fn mul_matches_i128(a in -(1i128<<62)..(1i128<<62), b in -(1i128<<62)..(1i128<<62)) {
            prop_assert_eq!((&big(a) * &big(b)).to_i128(), Some(a * b));
        }

        #[test]
        fn div_rem_matches_i128(a in -(1i128<<100)..(1i128<<100), d in 1u64..u64::MAX) {
            let (q, r) = big(a).div_rem_u64(d);
            prop_assert_eq!(q.to_i128(), Some(a / d as i128));
            prop_assert_eq!(r, a % d as i128);
        }

        #[test]
        fn add_commutes(a in any::<i128>(), b in any::<i128>()) {
            let (a, b) = (a >> 1, b >> 1); // avoid i128 overflow in the reference
            prop_assert_eq!(&big(a) + &big(b), &big(b) + &big(a));
        }

        #[test]
        fn mul_distributes(a in -(1i128<<40)..(1i128<<40), b in -(1i128<<40)..(1i128<<40), c in -(1i128<<40)..(1i128<<40)) {
            let lhs = &big(a) * &(&big(b) + &big(c));
            let rhs = &(&big(a) * &big(b)) + &(&big(a) * &big(c));
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn sum_then_sub_round_trips(vals in proptest::collection::vec(-(1i128<<90)..(1i128<<90), 0..20)) {
            let total: BigInt = vals.iter().map(|&v| big(v)).sum();
            let mut back = total;
            for &v in &vals {
                back = &back - &big(v);
            }
            prop_assert!(back.is_zero());
        }

        #[test]
        fn display_matches_i128(a in any::<i128>()) {
            prop_assert_eq!(format!("{}", big(a)), format!("{}", a));
        }

        #[test]
        fn ord_matches_i128(a in any::<i128>(), b in any::<i128>()) {
            prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
        }

        #[test]
        fn pow_matches_u128(base in 1u64..1000, exp in 0u32..10) {
            let expect = (base as u128).checked_pow(exp);
            if let Some(e) = expect {
                prop_assert_eq!(BigInt::pow_u64(base, exp).to_u128(), Some(e));
            }
        }
    }
}
