//! Bit-exact message encoding.
//!
//! The whiteboard models charge each node for the *bits* it writes, so messages
//! are genuine bit strings. [`BitVec`] is a packed bit vector; [`BitWriter`] and
//! [`BitReader`] stream fixed-width unsigned fields (including multi-limb
//! [`BigInt`] fields for the power-sum codes of §3.3).

use crate::bigint::BigInt;
use std::fmt;

/// Backing storage for a [`BitVec`].
///
/// Messages in the whiteboard model are typically `O(log n)` bits — far less
/// than one machine word — so the common case is stored inline and never
/// touches the heap. The invariant tying the two variants together: a bit
/// string is `Inline` iff its length is at most 64 bits (growth is
/// append-only, so once spilled a vector never shrinks back). Because the
/// variant is a function of the length, the derived `PartialEq`/`Hash` remain
/// consistent: equal bit strings always occupy the same variant.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Store {
    /// Up to 64 bits packed into one word (unused high bits are zero).
    Inline(u64),
    /// Longer strings spill to a word vector (trailing bits of the last word
    /// are zero).
    Heap(Vec<u64>),
}

/// A packed, append-only bit string (LSB-first within `u64` words).
///
/// Strings of at most 64 bits — every ID field, every typical whiteboard
/// message — are stored inline in one machine word: cloning them is a copy
/// and building them performs no heap allocation. Longer strings spill to a
/// heap vector transparently.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    store: Store,
    len: usize,
}

impl Default for BitVec {
    fn default() -> Self {
        BitVec {
            store: Store::Inline(0),
            len: 0,
        }
    }
}

impl BitVec {
    /// The empty bit string (the paper's empty word `ε`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this is the empty word.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th backing word.
    #[inline]
    fn word(&self, i: usize) -> u64 {
        match &self.store {
            Store::Inline(w) => {
                debug_assert_eq!(i, 0);
                *w
            }
            Store::Heap(v) => v[i],
        }
    }

    /// Move an inline word onto the heap (no-op if already spilled).
    fn spill(&mut self) {
        if let Store::Inline(w) = self.store {
            let mut v = Vec::with_capacity(4);
            if self.len > 0 {
                v.push(w);
            }
            self.store = Store::Heap(v);
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        self.push_bits(bit as u64, 1);
    }

    /// Read bit `i` (panics out of range).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.word(i / 64) >> (i % 64)) & 1 == 1
    }

    /// Append `width` bits of `value`, LSB first. Bits of `value` above `width`
    /// must be zero.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64);
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        let off = self.len % 64;
        let new_len = self.len + width as usize;
        if new_len > 64 {
            self.spill();
        }
        match &mut self.store {
            Store::Inline(w) => {
                // new_len <= 64, so off + width <= 64: one shifted OR.
                *w |= value << off;
            }
            Store::Heap(v) => {
                if off == 0 {
                    v.push(value);
                } else {
                    *v.last_mut().expect("off > 0 implies a partial word") |= value << off;
                    if off + width as usize > 64 {
                        v.push(value >> (64 - off));
                    }
                }
            }
        }
        self.len = new_len;
    }

    /// Append every bit of `other` (used by protocol transformations that
    /// embed a simulated protocol's messages). Works a word at a time, not a
    /// bit at a time.
    pub fn extend_bits(&mut self, other: &BitVec) {
        let mut pos = 0;
        while pos < other.len {
            let width = (other.len - pos).min(64) as u32;
            self.push_bits(other.get_bits(pos, width), width);
            pos += width as usize;
        }
    }

    /// The packed backing words (LSB-first; trailing bits of the last word
    /// are zero). Exposed for cheap structural hashing/encoding of messages —
    /// together with [`Self::len`] this determines the bit string exactly.
    pub fn as_words(&self) -> &[u64] {
        match &self.store {
            Store::Inline(w) => {
                let words = std::slice::from_ref(w);
                &words[..usize::from(self.len > 0)]
            }
            Store::Heap(v) => v,
        }
    }

    /// Extract `width` bits starting at `pos` as a `u64`, LSB first.
    pub fn get_bits(&self, pos: usize, width: u32) -> u64 {
        assert!(width <= 64);
        if width == 0 {
            return 0;
        }
        assert!(
            pos + width as usize <= self.len,
            "bit index {} out of range (len {})",
            pos + width as usize - 1,
            self.len
        );
        let off = pos % 64;
        let lo = self.word(pos / 64) >> off;
        // off + width > 64 requires off > 0, so the shift below is in 1..=63.
        let out = if off + width as usize > 64 {
            lo | (self.word(pos / 64 + 1) << (64 - off))
        } else {
            lo
        };
        if width == 64 {
            out
        } else {
            out & ((1u64 << width) - 1)
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}b ", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

/// Streaming writer of fixed-width fields into a [`BitVec`].
#[derive(Default)]
pub struct BitWriter {
    bv: BitVec,
}

impl BitWriter {
    /// Start an empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `width` bits of `value`.
    pub fn write_bits(&mut self, value: u64, width: u32) -> &mut Self {
        self.bv.push_bits(value, width);
        self
    }

    /// Write a single flag bit.
    pub fn write_bool(&mut self, value: bool) -> &mut Self {
        self.bv.push(value);
        self
    }

    /// Append every bit of another bit string (used by protocol
    /// transformations that embed a simulated protocol's messages).
    pub fn write_bitvec(&mut self, bv: &BitVec) -> &mut Self {
        self.bv.extend_bits(bv);
        self
    }

    /// Write a non-negative [`BigInt`] in exactly `width` bits (panics if it does
    /// not fit — protocols size fields from Lemma 1's bound, so overflow is a bug).
    pub fn write_big(&mut self, value: &BigInt, width: u32) -> &mut Self {
        assert!(!value.is_negative(), "cannot encode negative field");
        assert!(
            value.bits() <= width as u64,
            "BigInt needs {} bits > field width {width}",
            value.bits()
        );
        let limbs = value.limbs();
        let mut remaining = width;
        let mut idx = 0;
        while remaining > 0 {
            let w = remaining.min(64);
            let limb = limbs.get(idx).copied().unwrap_or(0);
            let limb = if w == 64 {
                limb
            } else {
                limb & ((1u64 << w) - 1)
            };
            self.bv.push_bits(limb, w);
            remaining -= w;
            idx += 1;
        }
        self
    }

    /// Current length in bits.
    pub fn len(&self) -> usize {
        self.bv.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bv.is_empty()
    }

    /// Finish and return the message.
    pub fn finish(self) -> BitVec {
        self.bv
    }
}

/// Streaming reader of fixed-width fields from a [`BitVec`].
pub struct BitReader<'a> {
    bv: &'a BitVec,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bv`.
    pub fn new(bv: &'a BitVec) -> Self {
        BitReader { bv, pos: 0 }
    }

    /// Read starting at bit `pos` of `bv` (panics if past the end). The bulk
    /// tier stores many messages concatenated in one shard vector and hands
    /// out readers positioned at each message's offset.
    pub fn with_offset(bv: &'a BitVec, pos: usize) -> Self {
        assert!(
            pos <= bv.len(),
            "reader offset {pos} out of range (len {})",
            bv.len()
        );
        BitReader { bv, pos }
    }

    /// Read `width` bits as a `u64`.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        let v = self.bv.get_bits(self.pos, width);
        self.pos += width as usize;
        v
    }

    /// Read one flag bit.
    pub fn read_bool(&mut self) -> bool {
        let v = self.bv.get(self.pos);
        self.pos += 1;
        v
    }

    /// Read `len` bits out as a standalone bit string.
    pub fn read_bitvec(&mut self, len: usize) -> BitVec {
        let mut out = BitVec::new();
        let mut remaining = len;
        while remaining > 0 {
            let w = remaining.min(64) as u32;
            out.push_bits(self.read_bits(w), w);
            remaining -= w as usize;
        }
        out
    }

    /// Read a `width`-bit non-negative [`BigInt`].
    pub fn read_big(&mut self, width: u32) -> BigInt {
        let mut limbs = Vec::with_capacity((width as usize + 63) / 64);
        let mut remaining = width;
        while remaining > 0 {
            let w = remaining.min(64);
            limbs.push(self.read_bits(w));
            remaining -= w;
        }
        BigInt::from_limbs(limbs)
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bv.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_word() {
        let bv = BitVec::new();
        assert!(bv.is_empty());
        assert_eq!(bv.len(), 0);
        assert!(bv.as_words().is_empty());
    }

    #[test]
    fn push_and_get_across_word_boundary() {
        let mut bv = BitVec::new();
        for i in 0..130 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 130);
        for i in 0..130 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn inline_to_heap_spill_is_invisible() {
        // Build one bit at a time and via whole fields; contents must agree
        // across the 64-bit spill point, and word counts must stay minimal.
        let mut a = BitVec::new();
        let mut b = BitVec::new();
        let pattern = |i: usize| (i * 7 + 3) % 5 < 2;
        for i in 0..200 {
            a.push(pattern(i));
        }
        let mut i = 0;
        while i < 200 {
            let w = (200 - i).min(23) as u32; // misaligned chunks on purpose
            let mut field = 0u64;
            for j in 0..w as usize {
                if pattern(i + j) {
                    field |= 1 << j;
                }
            }
            b.push_bits(field, w);
            i += w as usize;
        }
        assert_eq!(a, b);
        assert_eq!(a.as_words(), b.as_words());
        assert_eq!(a.as_words().len(), 200usize.div_ceil(64));
        for i in 0..200 {
            assert_eq!(a.get(i), pattern(i), "bit {i}");
        }
    }

    #[test]
    fn small_messages_stay_in_one_word() {
        let mut bv = BitVec::new();
        bv.push_bits(u64::MAX, 64);
        assert_eq!(bv.len(), 64);
        assert_eq!(bv.as_words(), &[u64::MAX]);
        bv.push(true); // 65th bit spills
        assert_eq!(bv.len(), 65);
        assert_eq!(bv.as_words(), &[u64::MAX, 1]);
    }

    #[test]
    fn writer_reader_round_trip_fields() {
        let mut w = BitWriter::new();
        w.write_bits(5, 3)
            .write_bool(true)
            .write_bits(1023, 10)
            .write_bits(0, 1);
        let bv = w.finish();
        assert_eq!(bv.len(), 15);
        let mut r = BitReader::new(&bv);
        assert_eq!(r.read_bits(3), 5);
        assert!(r.read_bool());
        assert_eq!(r.read_bits(10), 1023);
        assert_eq!(r.read_bits(1), 0);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn offset_reader_starts_mid_stream() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3).write_bits(0x5A5A, 16);
        let bv = w.finish();
        let mut r = BitReader::with_offset(&bv, 3);
        assert_eq!(r.read_bits(16), 0x5A5A);
        assert_eq!(r.remaining(), 0);
        // Offset at the very end is allowed (an empty tail), past it is not.
        assert_eq!(BitReader::with_offset(&bv, bv.len()).remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn offset_reader_rejects_out_of_range() {
        let bv = BitVec::new();
        let _ = BitReader::with_offset(&bv, 1);
    }

    #[test]
    fn big_field_round_trip() {
        let v = BigInt::pow_u64(7, 31); // ~87 bits
        let mut w = BitWriter::new();
        w.write_big(&v, 100);
        let bv = w.finish();
        assert_eq!(bv.len(), 100);
        let mut r = BitReader::new(&bv);
        assert_eq!(r.read_big(100), v);
    }

    #[test]
    fn bitvec_embedding_round_trips() {
        // Protocol transformations embed whole messages inside messages.
        let mut inner = BitWriter::new();
        inner.write_bits(0b1011, 4).write_bool(true);
        let inner = inner.finish();
        let mut outer = BitWriter::new();
        outer.write_bits(7, 3).write_bitvec(&inner).write_bits(2, 2);
        let outer = outer.finish();
        assert_eq!(outer.len(), 3 + 5 + 2);
        let mut r = BitReader::new(&outer);
        assert_eq!(r.read_bits(3), 7);
        assert_eq!(r.read_bitvec(5), inner);
        assert_eq!(r.read_bits(2), 2);
    }

    #[test]
    fn empty_bitvec_embeds_as_nothing() {
        let mut w = BitWriter::new();
        w.write_bitvec(&BitVec::new());
        assert!(w.is_empty());
        let done = w.finish();
        let mut r = BitReader::new(&done);
        assert_eq!(r.read_bitvec(0), BitVec::new());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflowing_field_panics() {
        let mut w = BitWriter::new();
        w.write_bits(8, 3);
    }

    #[test]
    #[should_panic(expected = "field width")]
    fn overflowing_big_field_panics() {
        let mut w = BitWriter::new();
        w.write_big(&BigInt::pow_u64(2, 40), 40); // needs 41 bits
    }

    proptest! {
        #[test]
        fn bits_round_trip(value in any::<u64>(), width in 1u32..=64) {
            let value = if width == 64 { value } else { value & ((1u64 << width) - 1) };
            let mut w = BitWriter::new();
            w.write_bits(value, width);
            let bv = w.finish();
            prop_assert_eq!(bv.len(), width as usize);
            prop_assert_eq!(BitReader::new(&bv).read_bits(width), value);
        }

        #[test]
        fn mixed_sequence_round_trips(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..20)) {
            let mut w = BitWriter::new();
            let masked: Vec<(u64, u32)> = fields
                .iter()
                .map(|&(v, width)| (if width == 64 { v } else { v & ((1u64 << width) - 1) }, width))
                .collect();
            for &(v, width) in &masked {
                w.write_bits(v, width);
            }
            let bv = w.finish();
            let mut r = BitReader::new(&bv);
            for &(v, width) in &masked {
                prop_assert_eq!(r.read_bits(width), v);
            }
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn extend_bits_matches_bitwise_append(a in proptest::collection::vec(any::<bool>(), 0..150), b in proptest::collection::vec(any::<bool>(), 0..150)) {
            let mut left = BitVec::new();
            for &bit in &a { left.push(bit); }
            let mut right = BitVec::new();
            for &bit in &b { right.push(bit); }
            let mut joined = left.clone();
            joined.extend_bits(&right);
            prop_assert_eq!(joined.len(), a.len() + b.len());
            for (i, &bit) in a.iter().chain(b.iter()).enumerate() {
                prop_assert_eq!(joined.get(i), bit);
            }
        }

        #[test]
        fn big_round_trips(limbs in proptest::collection::vec(any::<u64>(), 0..5), pad in 0u32..70) {
            let v = BigInt::from_limbs(limbs);
            let width = v.bits() as u32 + pad;
            if width > 0 {
                let mut w = BitWriter::new();
                w.write_big(&v, width);
                let bv = w.finish();
                prop_assert_eq!(BitReader::new(&bv).read_big(width), v);
            }
        }
    }
}
