//! Exact arithmetic and information-theoretic machinery for the shared-whiteboard
//! models of Becker et al. (SPAA 2012).
//!
//! This crate is a *substrate*: the paper's positive results rest on exact integer
//! arithmetic (power-sum neighborhood codes, Newton's identities, Wright's theorem
//! on equal sums of like powers) and its negative results rest on counting
//! (`log₂ |family|` versus whiteboard capacity `n·f(n)`). Both are implemented here
//! from scratch:
//!
//! - [`bigint`] — arbitrary-precision signed integers (sign + magnitude over `u64`
//!   limbs). Required because decoding a degree-`k` neighborhood via Newton's
//!   identities produces intermediates of order `n^(2k)`, which overflows `u128`
//!   already at `n = 10⁴, k = 5`. No external bignum crate is on the approved
//!   dependency list, so this is hand-rolled and heavily tested.
//! - [`bitio`] — bit-exact message encoding ([`bitio::BitVec`], writers/readers).
//!   Message *size in bits* is the central resource of the paper, so messages are
//!   real bit strings, not structs; the runtime charges protocols per bit.
//! - [`powersum`] — the §3.3 neighborhood code `b_p(x) = Σ_{w∈N(x)} ID(w)^p` for
//!   `p = 1..k`, with two decoders: the paper's literal Lemma 2 lookup table and a
//!   production decoder via Newton's identities + integer root extraction.
//! - [`counting`] — exact binomials, graph-family cardinalities and the Lemma 3
//!   capacity check.
//! - [`hash`] — the 128-bit streaming digest of the canonical configuration
//!   encoding. It lives here (not in the runtime) because it is a *format*:
//!   the engine's fingerprint dedup and the independent certificate verifier
//!   (`wb-verify`) must compute bit-identical hashes without sharing engine
//!   code.
//! - [`json`] — minimal JSON emit/parse with deterministic (sorted-key,
//!   whitespace-free) emission, used by the benchmark artifacts and as the
//!   canonical serialization of exploration certificates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod bitio;
pub mod counting;
pub mod hash;
pub mod json;
pub mod powersum;

pub use bigint::BigInt;
pub use bitio::{BitReader, BitVec, BitWriter};

/// Number of bits needed to store any value in `0..=max` (at least 1).
///
/// This is the fixed-width field size used throughout the protocols: IDs in
/// `1..=n` are written with `bits_for(n)` bits, matching the paper's `log n`
/// accounting up to the usual ceiling.
#[inline]
pub fn bits_for(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

/// `⌈log₂(n+1)⌉`-style field width for node identifiers in `1..=n`.
#[inline]
pub fn id_bits(n: usize) -> u32 {
    bits_for(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn id_bits_matches_bits_for() {
        for n in 1..2000usize {
            assert_eq!(id_bits(n), bits_for(n as u64));
        }
    }
}
